//===- bench/ablation_source_drift.cpp - §III-A drift experiment --*- C++ -*-===//
//
// §III-A "source drifting": a source edit between profiling and the next
// build. Two tables:
//
// 1. Comment drift (legacy behavior): line numbers shift, CFG unchanged.
//    AutoFDO's line-offset keys silently mis-correlate below the shift;
//    the paper observed an 8% loss from minor drift on a server workload.
//    CSSPGO's probe ids are line-independent and its CFG checksum still
//    matches, so the profile applies cleanly. Stale-profile matching is
//    OFF here to reproduce the paper's numbers.
//
// 2. CFG drift, drop vs match: edits that change block structure
//    (insert-drift: never-taken guard + block split + callee rename;
//    delete-drift: the inverse guard removal), staling probe CFG
//    checksums. Each cell builds the drifted "next release" twice from
//    the same profile — once with stale profiles dropped (legacy,
//    RecoverStaleProfiles=false; for AutoFDO this means the mis-keyed
//    profile applies as-is) and once with the stale matcher recovering
//    them — and compares both against a plain build of the drifted
//    source.
//
// All cells are independent pipelines and fan out over runMany (-j N);
// any job count prints byte-identical tables. CSSPGO_DRIFT_CELLS=N
// limits table 2 to its first N cells and skips table 1 (CI smoke).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sim/Executor.h"
#include "store/ProfileStore.h"
#include "workload/DriftPlan.h"

using namespace csspgo;
using namespace csspgo::bench;

namespace {

void legacyCommentDriftTable(unsigned Jobs) {
  TextTable Table({"workload", "variant", "no-drift vs plain",
                   "drifted vs plain", "drift cost", "stale drops"});

  struct Cell {
    const char *Workload;
    PGOVariant Variant;
  };
  const Cell Cells[] = {{"AdRanker", PGOVariant::AutoFDO},
                        {"AdRanker", PGOVariant::CSSPGOFull},
                        {"HHVM", PGOVariant::AutoFDO},
                        {"HHVM", PGOVariant::CSSPGOFull}};
  auto Rows = runMany<std::vector<std::string>>(
      std::size(Cells), Jobs, [&](size_t Idx) {
        const Cell &C = Cells[Idx];
        ExperimentConfig Config = makeConfig(C.Workload);
        PGODriver Driver(Config);
        const VariantOutcome &Plain = Driver.baseline();

        // Drifted "next release" source.
        auto Drifted = Driver.source().clone();
        applySourceDrift(*Drifted, /*ShiftLines=*/3);

        VariantOutcome Out = Driver.run(C.Variant);

        BuildConfig BC = staleVariantBuildConfig(C.Variant, Config);
        BC.Loader.RecoverStaleProfiles = false; // Paper's legacy behavior.
        BuildResult DriftBuild = buildWithPGO(*Drifted, BC, &Out.Profile);

        double DriftMean = evalMeanCycles(DriftBuild, Config);
        double NoDrift = improvement(Out.EvalCyclesMean, Plain.EvalCyclesMean);
        double WithDrift = improvement(DriftMean, Plain.EvalCyclesMean);
        return std::vector<std::string>{
            C.Workload, variantName(C.Variant), formatSignedPercent(NoDrift),
            formatSignedPercent(WithDrift),
            formatSignedPercent(NoDrift - WithDrift),
            std::to_string(DriftBuild.Loader.StaleDropped)};
      });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: minor drift cost AutoFDO up to ~8%%; CSSPGO is\n"
              "unaffected (probe ids don't shift; CFG checksum matches).\n\n");
}

void cfgDriftDropVsMatchTable(unsigned Jobs, size_t CellLimit) {
  TextTable Table({"workload", "variant", "drift", "no-drift vs plain",
                   "drop vs plain", "match vs plain", "recovered",
                   "stale d/m", "anchors", "counts rec"});

  struct Cell {
    const char *Workload;
    PGOVariant Variant;
    bool DeleteDrift; ///< false = insert-drift, true = delete-drift.
  };
  const Cell Cells[] = {{"AdRanker", PGOVariant::AutoFDO, false},
                        {"AdRanker", PGOVariant::CSSPGOFull, false},
                        {"AdRanker", PGOVariant::AutoFDO, true},
                        {"AdRanker", PGOVariant::CSSPGOFull, true}};
  size_t Count = CellLimit ? std::min(CellLimit, std::size(Cells))
                           : std::size(Cells);
  auto Rows = runMany<std::vector<std::string>>(Count, Jobs, [&](size_t Idx) {
    const Cell &C = Cells[Idx];
    ExperimentConfig Config = makeConfig(C.Workload);

    // The profiled release: pristine source for insert-drift; for
    // delete-drift the guards must already exist when profiling, so the
    // driver runs over an externally drifted module.
    DriftPlan Plan = C.DeleteDrift ? deleteDriftPlan() : insertDriftPlan();
    std::unique_ptr<Module> V1 = generateProgram(Config.Workload);
    applyDriftSteps(*V1, Plan.PrepSteps);
    PGODriver Driver(Config, std::move(V1));
    const VariantOutcome &Plain = Driver.baseline();
    VariantOutcome Out = Driver.run(C.Variant);

    // The drifted "next release".
    auto V2 = Driver.source().clone();
    applyDriftSteps(*V2, Plan.Steps);

    // Plain build of the drifted source: the fair baseline for both
    // drifted PGO builds (the drift itself perturbs code layout).
    BuildConfig PlainBC;
    BuildResult PlainV2 = buildWithPGO(*V2, PlainBC, nullptr);
    double PlainV2Mean = evalMeanCycles(PlainV2, Config);

    // Drop build (legacy) vs match build (stale matcher on) from the
    // same stale profile.
    BuildConfig DropBC = staleVariantBuildConfig(C.Variant, Config);
    DropBC.Loader.RecoverStaleProfiles = false;
    BuildResult DropBuild = buildWithPGO(*V2, DropBC, &Out.Profile);
    double DropMean = evalMeanCycles(DropBuild, Config);

    BuildConfig MatchBC = staleVariantBuildConfig(C.Variant, Config);
    BuildResult MatchBuild = buildWithPGO(*V2, MatchBC, &Out.Profile);
    double MatchMean = evalMeanCycles(MatchBuild, Config);

    double NoDrift = improvement(Out.EvalCyclesMean, Plain.EvalCyclesMean);
    double Drop = improvement(DropMean, PlainV2Mean);
    double Match = improvement(MatchMean, PlainV2Mean);
    return std::vector<std::string>{
        C.Workload, variantName(C.Variant),
        C.DeleteDrift ? "delete" : "insert", formatSignedPercent(NoDrift),
        formatSignedPercent(Drop), formatSignedPercent(Match),
        formatSignedPercent(Match - Drop),
        std::to_string(DropBuild.Loader.StaleDropped) + "/" +
            std::to_string(MatchBuild.Loader.StaleMatched),
        std::to_string(MatchBuild.Loader.StaleAnchorsMatched),
        std::to_string(MatchBuild.Loader.StaleCountsRecovered)};
  });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  std::printf("stale d/m = functions dropped (drop build) / matched (match\n"
              "build); recovered = match-vs-drop delta. AutoFDO's drop\n"
              "column applies the mis-keyed line profile as-is.\n");
}

void continuousIngestTable(unsigned Jobs, size_t CellLimit) {
  TextTable Table({"workload", "variant", "stale v1 vs plain",
                   "merged store vs plain", "ingest gain", "verify"});

  struct Cell {
    const char *Workload;
    PGOVariant Variant;
  };
  const Cell Cells[] = {{"AdRanker", PGOVariant::AutoFDO},
                        {"AdRanker", PGOVariant::CSSPGOFull}};
  size_t Count = CellLimit ? std::min(CellLimit, std::size(Cells))
                           : std::size(Cells);
  auto Rows = runMany<std::vector<std::string>>(Count, Jobs, [&](size_t Idx) {
    const Cell &C = Cells[Idx];
    ExperimentConfig Config = makeConfig(C.Workload);

    // Release v1: profiled as deployed, its profile ingested as epoch 1.
    PGODriver DriverV1(Config);
    VariantOutcome OutV1 = DriverV1.run(C.Variant);

    // Release v2: CFG drift lands between the releases. v2 is deployed
    // and profiled too — epoch 2, folded in at decay 0.5.
    auto V2 = DriverV1.source().clone();
    applyDriftSteps(*V2, {{CFGDriftKind::GuardInsert, 1}});
    PGODriver DriverV2(Config, V2->clone());
    const VariantOutcome &PlainV2 = DriverV2.baseline();
    VariantOutcome OutV2 = DriverV2.run(C.Variant);

    std::string Bytes;
    IngestOptions IO;
    IO.Timestamp = 100;
    IngestResult R1 = OutV1.Profile.IsCS
                          ? ingestEpoch(Bytes, OutV1.Profile.CS, IO)
                          : ingestEpoch(Bytes, OutV1.Profile.Flat, IO);
    IO.Timestamp = 200;
    IO.DecayPermille = 500;
    IngestResult R2 = OutV2.Profile.IsCS
                          ? ingestEpoch(Bytes, OutV2.Profile.CS, IO)
                          : ingestEpoch(Bytes, OutV2.Profile.Flat, IO);
    if (!R1.Ok || !R2.Ok) {
      std::fprintf(stderr, "continuous ingest failed: %s\n",
                   (R1.Ok ? R2.Error : R1.Error).c_str());
      std::exit(1);
    }

    // The merged aggregate out of the store vs the stale v1 profile
    // alone, both applied to the next build of the v2 source.
    Expected<ProfileStore> Store = ProfileStore::openBorrowed(Bytes);
    if (!Store) {
      std::fprintf(stderr, "ingested store does not open: %s\n",
                   Store.status().message().c_str());
      std::exit(1);
    }
    ProfileBundle Merged;
    Merged.Has = true;
    Merged.IsCS = Store->isCS();
    Status Loaded;
    if (Merged.IsCS) {
      Expected<ContextProfile> CS = Store->loadContext();
      if (CS)
        Merged.CS = CS.take();
      else
        Loaded = CS.takeError();
    } else {
      Expected<FlatProfile> Flat = Store->loadFlat();
      if (Flat)
        Merged.Flat = Flat.take();
      else
        Loaded = Flat.takeError();
    }
    if (!Loaded.ok()) {
      std::fprintf(stderr, "ingested store does not load: %s\n",
                   Loaded.message().c_str());
      std::exit(1);
    }

    BuildConfig BC = staleVariantBuildConfig(C.Variant, Config);
    BuildResult StaleBuild = buildWithPGO(*V2, BC, &OutV1.Profile);
    BuildResult MergedBuild = buildWithPGO(*V2, BC, &Merged);
    double StaleMean = evalMeanCycles(StaleBuild, Config);
    double MergedMean = evalMeanCycles(MergedBuild, Config);

    double Stale = improvement(StaleMean, PlainV2.EvalCyclesMean);
    double MergedImp = improvement(MergedMean, PlainV2.EvalCyclesMean);
    return std::vector<std::string>{
        C.Workload, variantName(C.Variant), formatSignedPercent(Stale),
        formatSignedPercent(MergedImp),
        formatSignedPercent(MergedImp - Stale),
        R2.Verify.ok() ? "clean" : "VIOLATIONS"};
  });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  std::printf("stale v1 = build v2 from the v1 epoch alone (continuous\n"
              "collection off); merged store = two-epoch ingest at decay\n"
              "0.5, strict-verified on every fold. The fresh epoch keeps\n"
              "the aggregate aligned with the deployed CFG.\n");
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation", "source drift — §III-A + stale matching");

  size_t CellLimit = 0;
  bool Smoke = false;
  if (const char *Env = std::getenv("CSSPGO_DRIFT_CELLS")) {
    int N = std::atoi(Env);
    if (N > 0) {
      CellLimit = static_cast<size_t>(N);
      Smoke = true;
    }
  }

  if (!Smoke) {
    std::printf("-- comment drift (CFG preserved), stale matching off --\n");
    legacyCommentDriftTable(Jobs);
  }
  std::printf("-- CFG drift, drop vs match --\n");
  cfgDriftDropVsMatchTable(Jobs, CellLimit);
  std::printf("\n-- continuous ingestion across drift "
              "(two-epoch store vs stale single epoch) --\n");
  continuousIngestTable(Jobs, CellLimit);
  return 0;
}

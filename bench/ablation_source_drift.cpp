//===- bench/ablation_source_drift.cpp - §III-A drift experiment --*- C++ -*-===//
//
// §III-A "source drifting": a minor source edit (comment insertion — line
// numbers shift, CFG unchanged) between profiling and the next build.
// AutoFDO's line-offset keys silently mis-correlate below the shift; the
// paper observed an 8% performance loss from minor drift on a server
// workload. CSSPGO's probe ids are line-independent and its CFG checksum
// still matches, so the profile applies cleanly.
//
// Harness: collect profiles on the original source, then build the next
// release from the *drifted* source with those profiles, and compare
// against the no-drift builds. The four (workload, variant) cells are
// independent pipelines and fan out over runMany (-j N).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sim/Executor.h"

using namespace csspgo;
using namespace csspgo::bench;

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation", "source drift (comment insertion) — §III-A");

  TextTable Table({"workload", "variant", "no-drift vs plain",
                   "drifted vs plain", "drift cost", "stale drops"});

  struct Cell {
    const char *Workload;
    PGOVariant Variant;
  };
  const Cell Cells[] = {{"AdRanker", PGOVariant::AutoFDO},
                        {"AdRanker", PGOVariant::CSSPGOFull},
                        {"HHVM", PGOVariant::AutoFDO},
                        {"HHVM", PGOVariant::CSSPGOFull}};
  auto Rows = runMany<std::vector<std::string>>(
      std::size(Cells), Jobs, [&](size_t Idx) {
        const Cell &C = Cells[Idx];
        ExperimentConfig Config = makeConfig(C.Workload);
        PGODriver Driver(Config);
        const VariantOutcome &Plain = Driver.baseline();

        // Drifted "next release" source.
        auto Drifted = Driver.source().clone();
        applySourceDrift(*Drifted, /*ShiftLines=*/3);

        VariantOutcome Out = Driver.run(C.Variant);

        BuildConfig BC;
        BC.Variant = C.Variant;
        if (C.Variant == PGOVariant::CSSPGOFull && Config.RunPreInliner)
          BC.Loader.InlineHotContexts = false;
        BuildResult DriftBuild = buildWithPGO(*Drifted, BC, &Out.Profile);

        std::vector<uint64_t> Cycles;
        for (unsigned E = 0; E != Config.EvalRuns; ++E) {
          std::vector<int64_t> Mem = generateInput(
              Config.Workload, Config.EvalSeedBase + E, Config.EvalShift);
          Cycles.push_back(execute(*DriftBuild.Bin, "main", Mem, {}).Cycles);
        }
        double DriftMean = meanCI(Cycles).Mean;
        double NoDrift = improvement(Out.EvalCyclesMean, Plain.EvalCyclesMean);
        double WithDrift = improvement(DriftMean, Plain.EvalCyclesMean);
        return std::vector<std::string>{
            C.Workload, variantName(C.Variant), formatSignedPercent(NoDrift),
            formatSignedPercent(WithDrift),
            formatSignedPercent(NoDrift - WithDrift),
            std::to_string(DriftBuild.Loader.StaleDropped)};
      });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: minor drift cost AutoFDO up to ~8%%; CSSPGO is\n"
              "unaffected (probe ids don't shift; CFG checksum matches).\n");
  return 0;
}

//===- bench/ablation_tailcall.cpp - §III-B missing frames --------*- C++ -*-===//
//
// §III-B "Reliable stack sampling": tail-call elimination removes caller
// frames from sampled stacks; the missing-frame inferrer rebuilds them
// from a dynamic tail-call graph when a unique path exists. The paper
// reports more than two-thirds of missing tail-call frames recovered.
//
// Harness: the call-dense AdFinder preset (tail-call probability 0.5).
// Reports the inferrer's recovery statistics and the effect of disabling
// it on the context-sensitive profile and final performance. The two
// configurations fan out over runMany (-j N).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "profile/ProfileIO.h"

using namespace csspgo;
using namespace csspgo::bench;

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation", "missing-frame inference for tail calls — §III-B");

  TextTable Table({"config", "recovery rate", "attempts", "ambiguous",
                   "no path", "CS contexts", "vs plain"});
  const bool Configs[] = {true, false};
  auto Rows = runMany<std::vector<std::string>>(2, Jobs, [&](size_t Idx) {
    bool Infer = Configs[Idx];
    ExperimentConfig Config = makeConfig("AdFinder");
    Config.InferMissingFrames = Infer;
    PGODriver Driver(Config);
    const VariantOutcome &Plain = Driver.baseline();
    VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
    const auto &S = Full.ProfGen.TailCallStats;
    double Rate = S.Attempts ? 100.0 * S.Recovered / S.Attempts : 0;
    return std::vector<std::string>{
        Infer ? "inferrer on" : "inferrer off",
        Infer ? formatPercent(Rate) : "-", std::to_string(S.Attempts),
        std::to_string(S.AmbiguousPaths), std::to_string(S.NoPath),
        std::to_string(Full.Profile.CS.numProfiles()),
        formatSignedPercent(
            improvement(Full.EvalCyclesMean, Plain.EvalCyclesMean))};
  });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: more than two-thirds of missing tail-call frames\n"
              "recovered in practice.\n");
  return 0;
}

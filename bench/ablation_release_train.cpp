//===- bench/ablation_release_train.cpp - longitudinal staleness ----*- C++ -*-===//
//
// The longitudinal release-train ablation: the deployment scenario behind
// §III-A, extended from one stale release to an N-release train. Each
// workload's source evolves through N seeded drift plans; release r is
// built from release r-1's profile under three staleness policies (drop /
// match / ingest — see train/ReleaseTrain.h) and the whole trajectory is
// scored against per-release plain builds and fresh-profile oracles.
//
// The harness *gates by exit code*, so CI can run it as a regression
// check:
//   - over an N>=4 train the ingest policy's aggregate gain must strictly
//     beat drop's by more than CSSPGO_TRAIN_MIN_GAIN points,
//   - every (release, policy) build must pass Full profile verification
//     and preserve program semantics,
//   - with -j N the trajectory must be byte-identical to the serial run.
//
// Knobs: CSSPGO_TRAIN_RELEASES (train length, default 4),
// CSSPGO_TRAIN_CELLS (limit the workload matrix to its first N cells —
// CI smoke), CSSPGO_TRAIN_MIN_GAIN (points of ingest-over-drop margin
// demanded, default 0), plus the usual CSSPGO_SCALE / -j N.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "train/ReleaseTrain.h"

using namespace csspgo;
using namespace csspgo::bench;
using namespace csspgo::train;

namespace {

std::string fmtPct(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%+.2f%%", V);
  return Buf;
}

std::string fmtOverlap(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

struct WorkloadVerdict {
  double Drop = 0, Match = 0, Ingest = 0;
  bool Clean = false;
  bool Deterministic = true; ///< Only exercised when Jobs > 1.
};

WorkloadVerdict runWorkload(const char *Workload, unsigned Releases,
                            unsigned Jobs) {
  TrainConfig TC;
  TC.Exp = makeConfig(Workload);
  TC.Releases = Releases;
  TC.Jobs = Jobs;
  // The PGO+BOLT column: each release's oracle binary additionally goes
  // through the post-link rewriter fed with one-release-stale samples.
  TC.PostLink = true;

  TrainResult R = runTrain(TC);

  TextTable Table({"rel", "drift", "edits", "oracle", "drop", "match",
                   "ingest", "ovl d/m/i", "store", "bolt", "verify"});
  for (const ReleaseRow &Row : R.Rows) {
    const PolicyCell *D = R.cell(Row, StalePolicy::Drop);
    const PolicyCell *M = R.cell(Row, StalePolicy::Match);
    const PolicyCell *I = R.cell(Row, StalePolicy::Ingest);
    bool RowClean = Row.IngestFoldClean;
    for (const PolicyCell &C : Row.Cells)
      RowClean = RowClean && C.VerifyClean && C.ExitMatch;
    Table.addRow(
        {std::to_string(Row.Release), Row.DriftName,
         std::to_string(Row.DriftEdits), fmtPct(Row.OracleVsPlainPct),
         D ? fmtPct(D->VsPlainPct) : "-", M ? fmtPct(M->VsPlainPct) : "-",
         I ? fmtPct(I->VsPlainPct) : "-",
         (D ? fmtOverlap(D->Overlap) : "-") + "/" +
             (M ? fmtOverlap(M->Overlap) : "-") + "/" +
             (I ? fmtOverlap(I->Overlap) : "-"),
         std::to_string(Row.StoreEpochs) + "@" +
             std::to_string(Row.StoreTimestamp),
         Row.HasPostLink
             ? (Row.RewriteKept ? fmtPct(Row.PostLinkVsOraclePct) : "plain")
             : "-",
         RowClean ? "clean" : "VIOLATIONS"});
  }
  std::printf("%s\n", Table.render().c_str());

  WorkloadVerdict V;
  V.Drop = R.aggregate(StalePolicy::Drop);
  V.Match = R.aggregate(StalePolicy::Match);
  V.Ingest = R.aggregate(StalePolicy::Ingest);
  V.Clean = R.allClean();

  if (Jobs > 1) {
    // The determinism gate: the sharded trajectory above must be
    // byte-identical to a serial re-run.
    TrainConfig Serial = TC;
    Serial.Jobs = 1;
    V.Deterministic = runTrain(Serial).toJSON() == R.toJSON();
    if (!V.Deterministic)
      std::printf("DETERMINISM VIOLATION: -j %u trajectory differs from "
                  "the serial run\n\n",
                  Jobs);
  }
  return V;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation", "release train — longitudinal staleness");

  unsigned Releases = 4;
  if (const char *Env = std::getenv("CSSPGO_TRAIN_RELEASES")) {
    int N = std::atoi(Env);
    if (N > 0)
      Releases = static_cast<unsigned>(N);
  }
  size_t CellLimit = 0;
  if (const char *Env = std::getenv("CSSPGO_TRAIN_CELLS")) {
    int N = std::atoi(Env);
    if (N > 0)
      CellLimit = static_cast<size_t>(N);
  }
  double MinGain = 0.0;
  if (const char *Env = std::getenv("CSSPGO_TRAIN_MIN_GAIN"))
    MinGain = std::atof(Env);

  // The server preset plus the three archetypes the train introduced:
  // RPC fan-out, interpreter dispatch, cold-start boot.
  const char *Workloads[] = {"AdRanker", "RpcFanout", "InterpLoop",
                             "ColdBoot"};
  size_t Count = CellLimit ? std::min(CellLimit, std::size(Workloads))
                           : std::size(Workloads);

  TextTable Agg({"workload", "releases", "drop", "match", "ingest",
                 "ingest-drop", "clean", "-j det"});
  std::vector<WorkloadVerdict> Verdicts;
  for (size_t I = 0; I != Count; ++I) {
    std::printf("-- %s, %u releases --\n", Workloads[I], Releases);
    WorkloadVerdict V = runWorkload(Workloads[I], Releases, Jobs);
    Agg.addRow({Workloads[I], std::to_string(Releases), fmtPct(V.Drop),
                fmtPct(V.Match), fmtPct(V.Ingest),
                fmtPct(V.Ingest - V.Drop), V.Clean ? "yes" : "NO",
                Jobs > 1 ? (V.Deterministic ? "yes" : "NO") : "n/a"});
    Verdicts.push_back(V);
  }
  std::printf("-- trajectory aggregates (mean vs-plain gain over the "
              "train) --\n%s\n",
              Agg.render().c_str());
  std::printf("drop = stale profiles discarded each release; match = stale\n"
              "matcher recovers them; ingest = decayed multi-epoch store\n"
              "aggregate. The longer the train, the further drop decays\n"
              "while ingest tracks the drifting CFG.\n");

  // Gates. The perf gate compares matrix means (a single archetype may
  // sit inside run-to-run noise at smoke scale; the matrix mean is the
  // stable signal) and is only meaningful over a train of >= 4 releases.
  double MeanDrop = 0, MeanIngest = 0;
  bool AllClean = true, AllDet = true;
  for (const WorkloadVerdict &V : Verdicts) {
    MeanDrop += V.Drop;
    MeanIngest += V.Ingest;
    AllClean = AllClean && V.Clean;
    AllDet = AllDet && V.Deterministic;
  }
  MeanDrop /= Verdicts.size();
  MeanIngest /= Verdicts.size();

  bool GateGain =
      Releases < 4 || MeanIngest > MeanDrop + MinGain;
  printBenchJson("ablation_release_train",
                 {{"releases", double(Releases)},
                  {"workloads", double(Count)},
                  {"drop_agg", MeanDrop},
                  {"ingest_agg", MeanIngest},
                  {"ingest_minus_drop", MeanIngest - MeanDrop},
                  {"all_clean", AllClean ? 1.0 : 0.0},
                  {"deterministic", AllDet ? 1.0 : 0.0},
                  {"gate_pass", (GateGain && AllClean && AllDet) ? 1.0 : 0.0}});

  if (!GateGain)
    std::fprintf(stderr,
                 "GATE: ingest aggregate %+.4f does not beat drop %+.4f "
                 "by > %.2f points\n",
                 MeanIngest, MeanDrop, MinGain);
  if (!AllClean)
    std::fprintf(stderr, "GATE: a release failed Full profile "
                         "verification or changed semantics\n");
  if (!AllDet)
    std::fprintf(stderr, "GATE: sharded run not byte-identical to serial\n");
  return (GateGain && AllClean && AllDet) ? 0 : 1;
}

//===- bench/fig8_probe_overhead.cpp - Fig. 8 reproduction --------*- C++ -*-===//
//
// Fig. 8: run-time overhead of pseudo-instrumentation. The paper compares
// each workload built with and without pseudo-probes (no PGO profile in
// either) and finds the delta within the P95 confidence interval — and one
// workload (AdRetriever) slightly *faster* with probes, which can happen
// when a probe blocks an unprofitable transformation.
//
// Here: "probes off" = plain build; "probes on" = same pipeline with
// pseudo-probe insertion (the CSSPGO profiling binary). Several evaluation
// inputs give the error bars.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "codegen/Linker.h"
#include "probe/ProbeInserter.h"
#include "sim/Executor.h"

using namespace csspgo;
using namespace csspgo::bench;

int main() {
  printHeader("Fig 8", "pseudo-instrumentation run-time overhead");

  TextTable Table({"workload", "plain cycles", "probed cycles", "overhead",
                   "CI(95%) +/-", "within noise?"});

  for (const std::string &W : serverWorkloadNames()) {
    ExperimentConfig Config = makeConfig(W);
    PGODriver Driver(Config);

    BuildConfig Plain;
    Plain.Variant = PGOVariant::None;
    BuildResult PlainBuild = buildWithPGO(Driver.source(), Plain, nullptr);
    BuildConfig Probed;
    Probed.Variant = PGOVariant::CSSPGOFull; // Probes inserted, no profile.
    BuildResult ProbedBuild = buildWithPGO(Driver.source(), Probed, nullptr);

    std::vector<uint64_t> PlainCycles, ProbedCycles;
    for (unsigned E = 0; E != 5; ++E) {
      std::vector<int64_t> Mem = generateInput(
          Config.Workload, Config.EvalSeedBase + E, Config.EvalShift);
      std::vector<int64_t> Mem2 = Mem;
      PlainCycles.push_back(
          execute(*PlainBuild.Bin, "main", Mem, {}).Cycles);
      ProbedCycles.push_back(
          execute(*ProbedBuild.Bin, "main", Mem2, {}).Cycles);
    }
    MeanCI P = meanCI(PlainCycles), Q = meanCI(ProbedCycles);
    double OverheadPct = 100.0 * (Q.Mean - P.Mean) / P.Mean;
    double CIPct = 100.0 * (P.HalfWidth95 + Q.HalfWidth95) / P.Mean;
    Table.addRow({W, std::to_string(static_cast<uint64_t>(P.Mean)),
                  std::to_string(static_cast<uint64_t>(Q.Mean)),
                  formatSignedPercent(OverheadPct),
                  formatPercent(CIPct),
                  std::abs(OverheadPct) <= CIPct + 0.5 ? "yes" : "no"});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: probe overhead within the P95 interval for all\n"
              "workloads (near-zero); contrast with 73%% for counters\n"
              "(Table I bench).\n");
  return 0;
}

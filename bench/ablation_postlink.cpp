//===- bench/ablation_postlink.cpp - PGO / BOLT / PGO+BOLT ------*- C++ -*-===//
//
// The post-link ablation: for every workload, the three-way comparison
// between PGO alone (full CSSPGO), the post-link optimizer alone on the
// plain binary (the BOLT-only configuration), and the two stacked —
// post-link rewriting the already-PGO'd binary using samples collected
// from it. This is the experiment the BOLT paper runs against
// FDO-compiled binaries: the stacked configuration must not lose to PGO
// alone in aggregate.
//
// Every cell re-validates the optimizer's own hard gate (the output
// binary must survive another disassemble->reassemble identity round
// trip) and the semantics check (identical exit values across all four
// binaries of a workload). The workload cells fan out over runMany
// (-j N); any job count prints byte-identical output.
//
// Environment:
//   CSSPGO_POSTLINK_CELLS        limit to the first N workloads (CI smoke)
//   CSSPGO_POSTLINK_MIN_SPEEDUP  minimum aggregate PGO+BOLT-over-PGO ratio
//                                (geomean; default 1.0) or exit 1
//   CSSPGO_SCALE                 request-count multiplier (BenchCommon)
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "pgo/ProfilePipeline.h"
#include "postlink/BinaryCFG.h"

#include <cmath>
#include <cstring>

using namespace csspgo;
using namespace csspgo::bench;

namespace {

struct Row {
  std::string Workload;
  double PlainCycles = 0;
  double PGOCycles = 0;
  double BoltOnlyCycles = 0;
  double StackedCycles = 0;
  double StackedMappedRate = 0;
  unsigned StackedReordered = 0;
  unsigned StackedSplit = 0;
  bool StackedKept = false;
  bool SemanticsOk = false;
  bool RoundTripOk = false;
};

/// The rewritten binary must itself be reconstructible and reassemble to
/// identity — the same gate the optimizer applies to its input, applied
/// to its output.
bool outputRoundTrips(const Binary &Bin) {
  Expected<postlink::BinaryCFG> CFG = postlink::reconstructBinaryCFG(Bin);
  if (!CFG)
    return false;
  std::unique_ptr<Binary> Again =
      postlink::reassemble(*CFG, postlink::identityLayout(*CFG));
  return postlink::binariesIdentical(Bin, *Again);
}

Row runWorkload(const std::string &Workload) {
  Row R;
  R.Workload = Workload;
  ExperimentConfig Config = makeConfig(Workload);
  PGODriver Driver(Config);

  const VariantOutcome &Plain = Driver.baseline();
  PostLinkOutcome BoltOnly = Driver.runPostLink(PGOVariant::None);
  PostLinkOutcome Stacked = Driver.runPostLink(PGOVariant::CSSPGOFull);

  R.PlainCycles = Plain.EvalCyclesMean;
  R.PGOCycles = Stacked.Base.EvalCyclesMean;
  R.BoltOnlyCycles = BoltOnly.EvalCyclesMean;
  R.StackedCycles = Stacked.EvalCyclesMean;
  R.StackedMappedRate = Stacked.Stats.Map.MappedSampleRate;
  R.StackedReordered = Stacked.Stats.FuncsReordered;
  R.StackedSplit = Stacked.Stats.FuncsSplit;
  R.StackedKept = Stacked.RewriteKept;
  R.SemanticsOk = BoltOnly.ExitValue == Plain.ExitValue &&
                  Stacked.ExitValue == Plain.ExitValue &&
                  Stacked.Base.ExitValue == Plain.ExitValue;
  R.RoundTripOk = outputRoundTrips(*BoltOnly.Bin) &&
                  outputRoundTrips(*Stacked.Bin);
  return R;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation", "post-link optimizer: PGO vs BOLT vs PGO+BOLT");

  std::vector<std::string> Workloads = serverWorkloadNames();
  Workloads.push_back("ClangProxy");
  if (const char *Env = std::getenv("CSSPGO_POSTLINK_CELLS")) {
    unsigned N = static_cast<unsigned>(std::atoi(Env));
    if (N > 0 && N < Workloads.size())
      Workloads.resize(N);
  }

  auto Rows = runMany<Row>(Workloads.size(), Jobs, [&](size_t I) {
    return runWorkload(Workloads[I]);
  });

  TextTable Table({"workload", "pgo", "bolt", "pgo+bolt", "stack vs pgo",
                   "mapped", "ship", "checks"});
  bool AllOk = true;
  double LogRatioSum = 0;
  for (const Row &R : Rows) {
    double StackVsPGO =
        R.StackedCycles > 0 ? R.PGOCycles / R.StackedCycles : 0;
    LogRatioSum += std::log(StackVsPGO > 0 ? StackVsPGO : 1e-9);
    AllOk &= R.SemanticsOk && R.RoundTripOk;
    char Mapped[32];
    std::snprintf(Mapped, sizeof(Mapped), "%.1f%%",
                  R.StackedMappedRate * 100.0);
    char StackCol[32];
    std::snprintf(StackCol, sizeof(StackCol), "%.3fx", StackVsPGO);
    Table.addRow(
        {R.Workload,
         formatSignedPercent(improvement(R.PGOCycles, R.PlainCycles)),
         formatSignedPercent(improvement(R.BoltOnlyCycles, R.PlainCycles)),
         formatSignedPercent(improvement(R.StackedCycles, R.PlainCycles)),
         StackCol, Mapped, R.StackedKept ? "rewrite" : "variant",
         R.SemanticsOk && R.RoundTripOk ? "ok"
         : !R.SemanticsOk              ? "EXIT MISMATCH"
                                       : "ROUND-TRIP FAIL"});
  }
  std::printf("%s\n", Table.render().c_str());

  double Geomean = std::exp(LogRatioSum / Rows.size());
  std::printf("aggregate PGO+BOLT over PGO-only: %.4fx (geomean of %zu "
              "workloads)\n\n",
              Geomean, Rows.size());
  printBenchJson("ablation_postlink",
                 {{"workloads", static_cast<double>(Rows.size())},
                  {"stacked_over_pgo_geomean", Geomean},
                  {"all_checks_ok", AllOk ? 1.0 : 0.0}});

  if (!AllOk) {
    std::fprintf(stderr, "FAIL: a semantics or round-trip check failed "
                         "(see the checks column)\n");
    return 1;
  }
  double MinSpeedup = 1.0;
  if (const char *Env = std::getenv("CSSPGO_POSTLINK_MIN_SPEEDUP"))
    MinSpeedup = std::atof(Env);
  if (Geomean < MinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: stacked PGO+BOLT is only %.4fx PGO-only in "
                 "aggregate (minimum %.4fx)\n",
                 Geomean, MinSpeedup);
    return 1;
  }
  return 0;
}

//===- bench/table1_profile_quality.cpp - Table I reproduction ----*- C++ -*-===//
//
// Table I: HHVM profile quality (block-overlap degree against the
// instrumentation ground truth) and profiling overhead:
//
//            | AutoFDO | CSSPGO | Instr PGO
//   overlap  |  88.2%  |  92.3% |  100%
//   overhead |   0%    |  0.04% |  73.06%
//
// Overlap is computed with the paper's D(V)/D(P) formulas over profiles
// correlated onto identical pristine IR; overhead compares the profiling
// binary against the plain binary on the training input.
//
// The three variant pipelines are independent and deterministic, so they
// fan out over runMany (-j N) — each task owns its PGODriver and the
// printed numbers are identical to a serial run.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "quality/BlockOverlap.h"

#include <memory>

using namespace csspgo;
using namespace csspgo::bench;

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Table I", "HHVM profile quality and profiling overhead");

  ExperimentConfig Config = makeConfig("HHVM");
  // The pristine source for quality annotation; generation is
  // deterministic, so this matches every task-local driver's source.
  std::unique_ptr<Module> Source = generateProgram(Config.Workload);

  const PGOVariant Variants[] = {PGOVariant::Instr, PGOVariant::AutoFDO,
                                 PGOVariant::CSSPGOFull};
  auto Outcomes = runMany<std::shared_ptr<VariantOutcome>>(
      3, Jobs, [&](size_t Idx) {
        PGODriver Driver(Config);
        return std::make_shared<VariantOutcome>(Driver.run(Variants[Idx]));
      });
  const VariantOutcome &Instr = *Outcomes[0];
  const VariantOutcome &Auto = *Outcomes[1];
  const VariantOutcome &Full = *Outcomes[2];

  auto GroundTruth = annotateForQuality(*Source, Instr.Profile);
  auto OverlapOf = [&](const ProfileBundle &P) {
    auto Annotated = annotateForQuality(*Source, P);
    return computeBlockOverlap(*Annotated, *GroundTruth).ProgramOverlap;
  };

  TextTable Table({"", "AutoFDO", "CSSPGO", "Instr PGO"});
  Table.addRow({"Block overlap", formatPercent(100 * OverlapOf(Auto.Profile)),
                formatPercent(100 * OverlapOf(Full.Profile)),
                formatPercent(100 * OverlapOf(Instr.Profile))});
  Table.addRow({"Profiling overhead",
                formatPercent(std::max(0.0, Auto.ProfilingOverheadPct)),
                formatPercent(std::max(0.0, Full.ProfilingOverheadPct)),
                formatPercent(Instr.ProfilingOverheadPct)});
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: overlap 88.2%% / 92.3%% / 100%%; overhead 0%% / "
              "0.04%% / 73.06%%\n");
  return 0;
}

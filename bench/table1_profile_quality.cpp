//===- bench/table1_profile_quality.cpp - Table I reproduction ----*- C++ -*-===//
//
// Table I: HHVM profile quality (block-overlap degree against the
// instrumentation ground truth) and profiling overhead:
//
//            | AutoFDO | CSSPGO | Instr PGO
//   overlap  |  88.2%  |  92.3% |  100%
//   overhead |   0%    |  0.04% |  73.06%
//
// Overlap is computed with the paper's D(V)/D(P) formulas over profiles
// correlated onto identical pristine IR; overhead compares the profiling
// binary against the plain binary on the training input.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "quality/BlockOverlap.h"

using namespace csspgo;
using namespace csspgo::bench;

int main() {
  printHeader("Table I", "HHVM profile quality and profiling overhead");

  PGODriver Driver(makeConfig("HHVM"));
  Driver.baseline();

  VariantOutcome Instr = Driver.run(PGOVariant::Instr);
  VariantOutcome Auto = Driver.run(PGOVariant::AutoFDO);
  VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);

  auto GroundTruth = annotateForQuality(Driver.source(), Instr.Profile);
  auto OverlapOf = [&](const ProfileBundle &P) {
    auto Annotated = annotateForQuality(Driver.source(), P);
    return computeBlockOverlap(*Annotated, *GroundTruth).ProgramOverlap;
  };

  TextTable Table({"", "AutoFDO", "CSSPGO", "Instr PGO"});
  Table.addRow({"Block overlap", formatPercent(100 * OverlapOf(Auto.Profile)),
                formatPercent(100 * OverlapOf(Full.Profile)),
                formatPercent(100 * OverlapOf(Instr.Profile))});
  Table.addRow({"Profiling overhead",
                formatPercent(std::max(0.0, Auto.ProfilingOverheadPct)),
                formatPercent(std::max(0.0, Full.ProfilingOverheadPct)),
                formatPercent(Instr.ProfilingOverheadPct)});
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: overlap 88.2%% / 92.3%% / 100%%; overhead 0%% / "
              "0.04%% / 73.06%%\n");
  return 0;
}

//===- bench/fig7_codesize.cpp - Fig. 7 reproduction --------------*- C++ -*-===//
//
// Fig. 7: code size of probe-only CSSPGO and full CSSPGO relative to
// AutoFDO. The paper reports full CSSPGO producing noticeably smaller
// code on 4 of the 5 workloads (probe-only bigger than full), with HaaS
// changes within 1% — the effect of the pre-inliner's more selective,
// globally-budgeted inlining.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace csspgo;
using namespace csspgo::bench;

int main() {
  printHeader("Fig 7", "CSSPGO code size vs AutoFDO (server workloads)");

  TextTable Table({"workload", "AutoFDO text", "probe-only vs AutoFDO",
                   "CSSPGO vs AutoFDO", "probe-only > full?"});

  for (const std::string &W : serverWorkloadNames()) {
    PGODriver Driver(makeConfig(W));
    VariantOutcome Auto = Driver.run(PGOVariant::AutoFDO);
    VariantOutcome Probe = Driver.run(PGOVariant::CSSPGOProbeOnly);
    VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);

    auto Delta = [&](uint64_t Size) {
      return 100.0 * (static_cast<double>(Size) - Auto.CodeSizeBytes) /
             Auto.CodeSizeBytes;
    };
    Table.addRow({W, formatBytes(Auto.CodeSizeBytes),
                  formatSignedPercent(Delta(Probe.CodeSizeBytes)),
                  formatSignedPercent(Delta(Full.CodeSizeBytes)),
                  Probe.CodeSizeBytes > Full.CodeSizeBytes ? "yes" : "no"});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: full CSSPGO noticeably smaller on 4/5 workloads;\n"
              "probe-only bigger than full (selective inlining only exists\n"
              "with context-sensitivity + pre-inliner).\n");
  return 0;
}

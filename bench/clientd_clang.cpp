//===- bench/clientd_clang.cpp - §IV-D client workload ------------*- C++ -*-===//
//
// §IV-D: the client workload (Clang bootstrap in the paper; our
// ClangProxy preset: many functions, short run, flat service mix — so
// sampling covers a smaller share of the executed code than on long
// steady-state servers). Paper results vs the AutoFDO baseline:
//   CSSPGO:    +2.8% performance, -5.5% code size
//   Instr PGO: +6.6% performance, -34%  code size
// with the sampling-vs-instrumentation gap *larger* than on servers due
// to the coverage limitation of sampling.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace csspgo;
using namespace csspgo::bench;

int main() {
  printHeader("Section IV-D", "client workload (ClangProxy)");

  PGODriver Driver(makeConfig("ClangProxy"));
  const VariantOutcome &Plain = Driver.baseline();
  VariantOutcome Auto = Driver.run(PGOVariant::AutoFDO);
  VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
  VariantOutcome Instr = Driver.run(PGOVariant::Instr);

  auto SizeDelta = [&](uint64_t S) {
    return 100.0 * (static_cast<double>(S) - Auto.CodeSizeBytes) /
           Auto.CodeSizeBytes;
  };

  TextTable Table({"variant", "perf vs AutoFDO", "code size vs AutoFDO"});
  Table.addRow({"CSSPGO",
                formatSignedPercent(
                    improvement(Full.EvalCyclesMean, Auto.EvalCyclesMean)),
                formatSignedPercent(SizeDelta(Full.CodeSizeBytes))});
  Table.addRow({"Instr PGO",
                formatSignedPercent(
                    improvement(Instr.EvalCyclesMean, Auto.EvalCyclesMean)),
                formatSignedPercent(SizeDelta(Instr.CodeSizeBytes))});
  std::printf("%s\n", Table.render().c_str());

  // Coverage: fraction of functions the sampled profile saw at all,
  // vs the exact instrumentation view.
  unsigned Sampled = 0, Executed = 0;
  for (const auto &[Name, P] : Auto.Profile.Flat.Functions)
    Sampled += P.TotalSamples > 0;
  for (const auto &[Name, P] : Instr.Profile.Flat.Functions)
    Executed += P.TotalSamples > 0;
  std::printf("sampling coverage: %u functions sampled vs %u executed "
              "(%.1f%%)\n",
              Sampled, Executed,
              Executed ? 100.0 * Sampled / Executed : 0.0);
  std::printf("AutoFDO vs plain: %s (client gains exist but sampling\n"
              "coverage caps them; paper notes the larger gap to Instr)\n",
              formatSignedPercent(
                  improvement(Auto.EvalCyclesMean, Plain.EvalCyclesMean))
                  .c_str());
  return 0;
}

//===- bench/ablation_inference.cpp - profi inference -------------*- C++ -*-===//
//
// §IV-A notes that CSSPGO uses Profi (MCF-based profile inference, ref
// [10]) by default and that the paper's AutoFDO baseline enables it too
// for fairness. Ablation: both variants with and without inference.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace csspgo;
using namespace csspgo::bench;

int main() {
  printHeader("Ablation", "MCF profile inference (profi) on/off");

  TextTable Table({"workload", "variant", "inference", "vs plain"});
  for (const std::string &W : {std::string("HHVM"), std::string("AdRanker")}) {
    for (PGOVariant V : {PGOVariant::AutoFDO, PGOVariant::CSSPGOFull}) {
      for (bool Inference : {true, false}) {
        ExperimentConfig Config = makeConfig(W);
        Config.EnableInference = Inference;
        PGODriver Driver(Config);
        const VariantOutcome &Plain = Driver.baseline();
        VariantOutcome Out = Driver.run(V);
        Table.addRow({W, variantName(V), Inference ? "on" : "off",
                      formatSignedPercent(improvement(
                          Out.EvalCyclesMean, Plain.EvalCyclesMean))});
      }
    }
  }
  std::printf("%s\n", Table.render().c_str());
  return 0;
}

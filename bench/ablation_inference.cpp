//===- bench/ablation_inference.cpp - profi inference -------------*- C++ -*-===//
//
// §IV-A notes that CSSPGO uses Profi (MCF-based profile inference, ref
// [10]) by default and that the paper's AutoFDO baseline enables it too
// for fairness. Ablation: both variants with and without inference. The
// eight (workload, variant, inference) cells fan out over runMany (-j N).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace csspgo;
using namespace csspgo::bench;

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation", "MCF profile inference (profi) on/off");

  TextTable Table({"workload", "variant", "inference", "vs plain"});
  struct Cell {
    const char *Workload;
    PGOVariant Variant;
    bool Inference;
  };
  std::vector<Cell> Cells;
  for (const char *W : {"HHVM", "AdRanker"})
    for (PGOVariant V : {PGOVariant::AutoFDO, PGOVariant::CSSPGOFull})
      for (bool Inference : {true, false})
        Cells.push_back({W, V, Inference});

  auto Rows = runMany<std::vector<std::string>>(
      Cells.size(), Jobs, [&](size_t Idx) {
        const Cell &C = Cells[Idx];
        ExperimentConfig Config = makeConfig(C.Workload);
        Config.EnableInference = C.Inference;
        PGODriver Driver(Config);
        const VariantOutcome &Plain = Driver.baseline();
        VariantOutcome Out = Driver.run(C.Variant);
        return std::vector<std::string>{
            C.Workload, variantName(C.Variant), C.Inference ? "on" : "off",
            formatSignedPercent(
                improvement(Out.EvalCyclesMean, Plain.EvalCyclesMean))};
      });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  return 0;
}

//===- bench/ablation_trace.cpp - collection-mode ablation --------*- C++ -*-===//
//
// Overhead-vs-quality across the three profile collection modes behind
// the same CSSPGO pipeline: instrumentation counters, PMU sampling and
// the core-instruction trace (TNT/TIP packets with delta-compressed
// timestamps, à la hardware branch trace). Each mode's modeled runtime
// perturbation (counter increments, sample interrupts, trace-byte
// writes) is charged to its training run, so the overhead column is the
// real price of the profile it buys.
//
// The harness also pins the two trace-mode acceptance properties:
//  - the trace-derived context profile is bit-identical to the sampling
//    path's (frequencies carry over exactly; the trace only *adds*
//    measured per-block timing), and
//  - on the training input, trace-guided compilation (timing-gated
//    unroll / if-convert) never loses to frequency-only CSSPGO.
// Exits nonzero when either property fails.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "profile/ProfileIO.h"

using namespace csspgo;
using namespace csspgo::bench;

namespace {

struct ModeResult {
  std::vector<std::string> Row;
  std::string CSText;   ///< Serialized context profile ("" for instr).
  double OverheadPct = 0;
  double EvalMean = 0;
  double PlainMean = 0;
};

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation",
              "profile collection modes: counters vs sampling vs trace");

  struct Mode {
    const char *Name;
    PGOVariant Variant;
  };
  const Mode Modes[] = {
      {"instrumentation", PGOVariant::Instr},
      {"PMU sampling", PGOVariant::CSSPGOFull},
      {"instruction trace", PGOVariant::Trace},
  };

  TextTable Table({"collection mode", "profiling overhead", "profile",
                   "vs plain"});
  auto Results = runMany<ModeResult>(3, Jobs, [&](size_t Idx) {
    const Mode &M = Modes[Idx];
    ExperimentConfig Config = makeConfig("AdRanker");
    // Evaluate on the training distribution: the timing gates are
    // calibrated from the training run, so this is the input the
    // "trace-guided never loses" property is stated over.
    Config.EvalShift = 0.0;
    // A nonzero interrupt cost makes the sampling column honest too;
    // counter and trace-byte costs keep their CostModel defaults.
    Config.Costs.SampleInterruptCost = 200;

    PGODriver Driver(Config);
    const VariantOutcome &Plain = Driver.baseline();
    VariantOutcome Out = Driver.run(M.Variant);

    ModeResult R;
    R.OverheadPct = Out.ProfilingOverheadPct;
    R.EvalMean = Out.EvalCyclesMean;
    R.PlainMean = Plain.EvalCyclesMean;
    if (Out.Profile.IsCS)
      R.CSText = serializeContextProfile(Out.Profile.CS);

    std::string What;
    if (M.Variant == PGOVariant::Instr) {
      What = std::to_string(Out.Profile.Flat.Functions.size()) + " funcs";
    } else {
      What = std::to_string(Out.Profile.CS.numProfiles()) + " contexts";
      if (M.Variant == PGOVariant::Trace) {
        char Buf[64];
        std::snprintf(Buf, sizeof(Buf), " + timing (%llu KiB trace)",
                      static_cast<unsigned long long>(Out.TraceBytes /
                                                      1024));
        What += Buf;
      }
    }
    R.Row = {M.Name, formatSignedPercent(Out.ProfilingOverheadPct),
             What,
             formatSignedPercent(
                 improvement(Out.EvalCyclesMean, Plain.EvalCyclesMean))};
    return R;
  });
  for (const auto &R : Results)
    Table.addRow(R.Row);
  std::printf("%s\n", Table.render().c_str());

  const ModeResult &Sampling = Results[1];
  const ModeResult &Trace = Results[2];
  bool Identical =
      !Sampling.CSText.empty() && Sampling.CSText == Trace.CSText;
  std::printf("frequency profiles:  %s\n",
              Identical ? "trace bit-identical to sampling"
                        : "DIVERGED between trace and sampling");
  bool NeverLoses = Trace.EvalMean <= Sampling.EvalMean;
  std::printf("trace-guided vs frequency-only: %s (%.0f vs %.0f cycles)\n",
              NeverLoses ? "no loss" : "REGRESSION", Trace.EvalMean,
              Sampling.EvalMean);
  std::printf("\npaper: pseudo-instrumentation keeps profiling cheap while\n"
              "context-sensitivity recovers instrumentation-grade quality;\n"
              "the trace mode buys measured per-block timing on top for a\n"
              "bounded, modeled write cost.\n");

  printBenchJson(
      "ablation_trace",
      {{"instr_overhead_pct", Results[0].OverheadPct},
       {"sampling_overhead_pct", Sampling.OverheadPct},
       {"trace_overhead_pct", Trace.OverheadPct},
       {"trace_identical", Identical ? 1 : 0},
       {"trace_no_loss", NeverLoses ? 1 : 0},
       {"sampling_eval_cycles", Sampling.EvalMean},
       {"trace_eval_cycles", Trace.EvalMean}});
  return Identical && NeverLoses ? 0 : 1;
}

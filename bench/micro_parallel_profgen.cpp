//===- bench/micro_parallel_profgen.cpp - sharded profgen benchmark --------===//
//
// Throughput benchmark of the sharded profile-generation pipeline
// (ShardedProfGen): partitions a large LBR sample set into K shards,
// unwinds and builds context tries on a thread pool, and reduces with
// mergeContextProfiles. The production workflow aggregates samples from
// many hosts (§IV-A), so generation throughput is the operational
// bottleneck this pipeline attacks.
//
// The harness replicates one profiled run's samples up to a target count
// (default 1,000,000; argv[1] or CSSPGO_PARBENCH_SAMPLES overrides) and
// times serial vs sharded generation for K in {2, 4, 8}, verifying every
// sharded dump is bit-identical to the serial one. Expect >=2x at 4
// threads on a machine with >=4 cores; on a single-core host every K
// degenerates to ~1x (the determinism check still runs).
//
// It then isolates the reduction itself at fleet scale: K host shards of
// the same fleet-sized database (the serial profile cloned under
// per-module name suffixes — one binary profiled on K hosts), each plane
// starting from its native representation. The map plane folds the K
// part tries sequentially with mergeContextProfiles (the pre-arena
// reducer); the flat plane k-way merges the K arena views over sorted
// slices (mergeContextViews — what ShardedProfGen phase 3 and the store
// ingest folds run; views arrive for free from the workers' parallel
// flatten or the store's zero-copy loader, and the one-time flatten cost
// is reported separately as flatten_ms). Both reductions must be
// bit-identical with identical MergeStats, and the flat plane must clear
// a minimum speedup (CSSPGO_MERGE_MIN_SPEEDUP, default 3x) or the bench
// exits 1.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "codegen/Linker.h"
#include "probe/ProbeInserter.h"
#include "probe/ProbeTable.h"
#include "profgen/ShardedProfGen.h"
#include "profile/ProfileArena.h"
#include "profile/ProfileIO.h"
#include "profile/ProfileMerge.h"
#include "sim/Executor.h"
#include "support/SourceText.h"
#include "support/ThreadPool.h"
#include "workload/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace csspgo;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::string fmt(double Value, int Digits) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

size_t targetSampleCount(int argc, char **argv) {
  if (argc > 1)
    return std::strtoull(argv[1], nullptr, 10);
  if (const char *Env = std::getenv("CSSPGO_PARBENCH_SAMPLES"))
    return std::strtoull(Env, nullptr, 10);
  return 1000000;
}

/// Deep-renames a function profile under a per-module \p Suffix — every
/// name the record mentions (own, call targets, inlinees) moves with it,
/// so the clones stay internally consistent.
FunctionProfile renameProfile(const FunctionProfile &P,
                              const std::string &Suffix) {
  FunctionProfile Out;
  Out.Name = P.Name + Suffix;
  Out.Guid = P.Guid;
  Out.Checksum = P.Checksum;
  Out.TotalSamples = P.TotalSamples;
  Out.HeadSamples = P.HeadSamples;
  Out.Body = P.Body;
  for (const auto &[K, Targets] : P.Calls)
    for (const auto &[Callee, N] : Targets)
      Out.Calls[K].emplace(Callee + Suffix, N);
  for (const auto &[K, Map] : P.Inlinees)
    for (const auto &[Callee, Sub] : Map)
      Out.Inlinees[K].emplace(Callee + Suffix, renameProfile(Sub, Suffix));
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  size_t Target = targetSampleCount(argc, argv);

  // One real profiled run supplies the sample shapes; replication scales
  // the volume to datacenter-aggregation size without hours of simulation.
  WorkloadConfig WC = workloadPreset("AdRanker", 0.5);
  auto M = generateProgram(WC);
  insertProbes(*M, AnchorKind::PseudoProbe);
  ProbeTable Probes = ProbeTable::fromModule(*M);
  auto Bin = compileToBinary(*M);
  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = 499; // Dense sampling for a rich seed set.
  std::vector<int64_t> Mem = generateInput(WC, 7);
  std::vector<PerfSample> Seed = execute(*Bin, "main", Mem, EC).Samples;
  if (Seed.empty()) {
    std::fprintf(stderr, "no samples collected from the seed run\n");
    return 1;
  }

  std::vector<PerfSample> Samples;
  Samples.reserve(Target);
  while (Samples.size() < Target)
    Samples.push_back(Seed[Samples.size() % Seed.size()]);

  std::printf("sharded profile generation: %zu samples (%zu-sample seed), "
              "%u hardware threads\n\n",
              Samples.size(), Seed.size(), ThreadPool::defaultConcurrency());

  CSProfileOptions Opts;

  auto Start = std::chrono::steady_clock::now();
  CSProfileGenStats SerialStats;
  ContextProfile Serial = generateCSProfileSharded(
      *Bin, Probes, Samples, Opts, /*Parallelism=*/1, &SerialStats);
  double SerialSec = secondsSince(Start);
  std::string SerialDump = serializeContextProfile(Serial);

  TextTable Table({"shards", "wall s", "speedup", "Msamples/s", "reduce",
                   "identical"});
  Table.addRow({"1 (serial)", fmt(SerialSec, 2), "1.00x",
                fmt(Samples.size() / SerialSec / 1e6, 2), "-",
                "ref"});

  bool AllIdentical = true;
  double SpeedupAt4 = 0;
  for (unsigned K : {2u, 4u, 8u}) {
    Start = std::chrono::steady_clock::now();
    CSProfileGenStats Stats;
    MergeStats Reduce;
    ContextProfile Sharded = generateCSProfileSharded(*Bin, Probes, Samples,
                                                      Opts, K, &Stats,
                                                      &Reduce);
    double Sec = secondsSince(Start);
    bool Identical = serializeContextProfile(Sharded) == SerialDump &&
                     Stats.Samples == SerialStats.Samples &&
                     Stats.RangesProcessed == SerialStats.RangesProcessed;
    AllIdentical &= Identical;
    double Speedup = SerialSec / Sec;
    if (K == 4)
      SpeedupAt4 = Speedup;
    Table.addRow({std::to_string(K), fmt(Sec, 2),
                  fmt(Speedup, 2) + "x",
                  fmt(Samples.size() / Sec / 1e6, 2),
                  std::to_string(Reduce.ContextsAdded) + "+" +
                      std::to_string(Reduce.ContextsMerged) + " ctx",
                  Identical ? "yes" : "NO"});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("4-thread speedup: %.2fx (target >=2x on >=4 cores)\n\n",
              SpeedupAt4);

  // Reduction-plane comparison at fleet scale (see the file header). The
  // K host shards share one context set — the serial profile cloned
  // under per-module suffixes — which also exercises the identical-name-
  // table fast path the fleet case hits in buildRemaps.
  const unsigned MergeShards = 16;
  const unsigned MergeClones = 16;
  ContextProfile FleetDB;
  FleetDB.Kind = Serial.Kind;
  for (unsigned M = 0; M != MergeClones; ++M) {
    std::string Suffix = ".m" + std::to_string(M);
    Serial.forEachNode(
        [&](const SampleContext &Ctx, const ContextTrieNode &N) {
          SampleContext RCtx = Ctx;
          for (ContextFrame &Fr : RCtx)
            Fr.Func += Suffix;
          ContextTrieNode &Node = FleetDB.getOrCreateNode(RCtx);
          Node.Profile = renameProfile(N.Profile, Suffix);
          Node.HasProfile = true;
          Node.ShouldBeInlined = N.ShouldBeInlined;
        });
  }
  std::vector<ContextProfile> Parts(MergeShards, FleetDB);

  double FlattenSec = 1e30;
  std::vector<ContextProfileView> Views;
  std::vector<const ContextProfileView *> Ptrs;
  const int MergeReps = 5;
  for (int R = 0; R != MergeReps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    std::vector<ContextProfileView> V;
    V.reserve(Parts.size());
    for (const ContextProfile &P : Parts)
      V.push_back(contextViewOf(P));
    FlattenSec = std::min(FlattenSec, secondsSince(T0));
    Views = std::move(V);
  }
  for (const ContextProfileView &V : Views)
    Ptrs.push_back(&V);

  double MapSec = 1e30, FlatSec = 1e30;
  MergeStats MapStats, FlatStats;
  std::string MapDump, FlatDump;
  for (int R = 0; R != MergeReps; ++R) {
    ContextProfile Dst;
    MergeStats S;
    auto T0 = std::chrono::steady_clock::now();
    for (const ContextProfile &P : Parts)
      S += mergeContextProfiles(Dst, P);
    MapSec = std::min(MapSec, secondsSince(T0));
    MapStats = S;
    if (R == 0)
      MapDump = serializeContextProfile(Dst);
  }
  for (int R = 0; R != MergeReps; ++R) {
    MergeStats S;
    auto T0 = std::chrono::steady_clock::now();
    ContextProfileView Merged =
        mergeContextViews(Ptrs, S, /*IntoEmptyDst=*/true);
    FlatSec = std::min(FlatSec, secondsSince(T0));
    FlatStats = S;
    if (R == 0)
      FlatDump = serializeContextProfile(contextProfileOf(Merged));
  }
  bool MergeIdentical = FlatDump == MapDump &&
                        FlatStats.ContextsAdded == MapStats.ContextsAdded &&
                        FlatStats.ContextsMerged == MapStats.ContextsMerged &&
                        FlatStats.CountsSummed == MapStats.CountsSummed &&
                        FlatStats.SaturatedCounts == MapStats.SaturatedCounts;
  AllIdentical &= MergeIdentical;
  double MergeSpeedup = FlatSec > 0 ? MapSec / FlatSec : 0;
  std::printf("%u-way fleet reduce: map plane %.2f ms, flat slices %.2f ms "
              "(%.2fx; one-time flatten %.2f ms; identical: %s)\n\n",
              MergeShards, MapSec * 1e3, FlatSec * 1e3, MergeSpeedup,
              FlattenSec * 1e3, MergeIdentical ? "yes" : "NO");

  csspgo::bench::printBenchJson(
      "micro_parallel_profgen",
      {{"samples", static_cast<double>(Samples.size())},
       {"serial_msamples_per_sec", Samples.size() / SerialSec / 1e6},
       {"speedup_4", SpeedupAt4},
       {"merge_map_ms", MapSec * 1e3},
       {"merge_flat_ms", FlatSec * 1e3},
       {"flatten_ms", FlattenSec * 1e3},
       {"merge_speedup", MergeSpeedup},
       {"identical", AllIdentical ? 1 : 0}});

  if (!AllIdentical) {
    std::fprintf(stderr,
                 "FAIL: sharded profile differs from the serial profile\n");
    return 1;
  }
  double MinMergeSpeedup = 3.0;
  if (const char *Env = std::getenv("CSSPGO_MERGE_MIN_SPEEDUP"))
    MinMergeSpeedup = std::atof(Env);
  if (MergeSpeedup < MinMergeSpeedup) {
    std::fprintf(stderr,
                 "FAIL: flat-slice reduce is only %.2fx the map-plane "
                 "reduce (minimum %.2fx)\n",
                 MergeSpeedup, MinMergeSpeedup);
    return 1;
  }
  return 0;
}

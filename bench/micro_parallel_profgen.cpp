//===- bench/micro_parallel_profgen.cpp - sharded profgen benchmark --------===//
//
// Throughput benchmark of the sharded profile-generation pipeline
// (ShardedProfGen): partitions a large LBR sample set into K shards,
// unwinds and builds context tries on a thread pool, and reduces with
// mergeContextProfiles. The production workflow aggregates samples from
// many hosts (§IV-A), so generation throughput is the operational
// bottleneck this pipeline attacks.
//
// The harness replicates one profiled run's samples up to a target count
// (default 1,000,000; argv[1] or CSSPGO_PARBENCH_SAMPLES overrides) and
// times serial vs sharded generation for K in {2, 4, 8}, verifying every
// sharded dump is bit-identical to the serial one. Expect >=2x at 4
// threads on a machine with >=4 cores; on a single-core host every K
// degenerates to ~1x (the determinism check still runs).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "codegen/Linker.h"
#include "probe/ProbeInserter.h"
#include "probe/ProbeTable.h"
#include "profgen/ShardedProfGen.h"
#include "profile/ProfileIO.h"
#include "sim/Executor.h"
#include "support/SourceText.h"
#include "support/ThreadPool.h"
#include "workload/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace csspgo;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::string fmt(double Value, int Digits) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

size_t targetSampleCount(int argc, char **argv) {
  if (argc > 1)
    return std::strtoull(argv[1], nullptr, 10);
  if (const char *Env = std::getenv("CSSPGO_PARBENCH_SAMPLES"))
    return std::strtoull(Env, nullptr, 10);
  return 1000000;
}

} // namespace

int main(int argc, char **argv) {
  size_t Target = targetSampleCount(argc, argv);

  // One real profiled run supplies the sample shapes; replication scales
  // the volume to datacenter-aggregation size without hours of simulation.
  WorkloadConfig WC = workloadPreset("AdRanker", 0.5);
  auto M = generateProgram(WC);
  insertProbes(*M, AnchorKind::PseudoProbe);
  ProbeTable Probes = ProbeTable::fromModule(*M);
  auto Bin = compileToBinary(*M);
  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = 499; // Dense sampling for a rich seed set.
  std::vector<int64_t> Mem = generateInput(WC, 7);
  std::vector<PerfSample> Seed = execute(*Bin, "main", Mem, EC).Samples;
  if (Seed.empty()) {
    std::fprintf(stderr, "no samples collected from the seed run\n");
    return 1;
  }

  std::vector<PerfSample> Samples;
  Samples.reserve(Target);
  while (Samples.size() < Target)
    Samples.push_back(Seed[Samples.size() % Seed.size()]);

  std::printf("sharded profile generation: %zu samples (%zu-sample seed), "
              "%u hardware threads\n\n",
              Samples.size(), Seed.size(), ThreadPool::defaultConcurrency());

  CSProfileOptions Opts;

  auto Start = std::chrono::steady_clock::now();
  CSProfileGenStats SerialStats;
  ContextProfile Serial = generateCSProfileSharded(
      *Bin, Probes, Samples, Opts, /*Parallelism=*/1, &SerialStats);
  double SerialSec = secondsSince(Start);
  std::string SerialDump = serializeContextProfile(Serial);

  TextTable Table({"shards", "wall s", "speedup", "Msamples/s", "reduce",
                   "identical"});
  Table.addRow({"1 (serial)", fmt(SerialSec, 2), "1.00x",
                fmt(Samples.size() / SerialSec / 1e6, 2), "-",
                "ref"});

  bool AllIdentical = true;
  double SpeedupAt4 = 0;
  for (unsigned K : {2u, 4u, 8u}) {
    Start = std::chrono::steady_clock::now();
    CSProfileGenStats Stats;
    MergeStats Reduce;
    ContextProfile Sharded = generateCSProfileSharded(*Bin, Probes, Samples,
                                                      Opts, K, &Stats,
                                                      &Reduce);
    double Sec = secondsSince(Start);
    bool Identical = serializeContextProfile(Sharded) == SerialDump &&
                     Stats.Samples == SerialStats.Samples &&
                     Stats.RangesProcessed == SerialStats.RangesProcessed;
    AllIdentical &= Identical;
    double Speedup = SerialSec / Sec;
    if (K == 4)
      SpeedupAt4 = Speedup;
    Table.addRow({std::to_string(K), fmt(Sec, 2),
                  fmt(Speedup, 2) + "x",
                  fmt(Samples.size() / Sec / 1e6, 2),
                  std::to_string(Reduce.ContextsAdded) + "+" +
                      std::to_string(Reduce.ContextsMerged) + " ctx",
                  Identical ? "yes" : "NO"});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("4-thread speedup: %.2fx (target >=2x on >=4 cores)\n\n",
              SpeedupAt4);

  csspgo::bench::printBenchJson(
      "micro_parallel_profgen",
      {{"samples", static_cast<double>(Samples.size())},
       {"serial_msamples_per_sec", Samples.size() / SerialSec / 1e6},
       {"speedup_4", SpeedupAt4},
       {"identical", AllIdentical ? 1 : 0}});

  if (!AllIdentical) {
    std::fprintf(stderr,
                 "FAIL: sharded profile differs from the serial profile\n");
    return 1;
  }
  return 0;
}

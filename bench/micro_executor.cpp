//===- bench/micro_executor.cpp - executor fast-path benchmark ------------===//
//
// Throughput benchmark of the Machine inner loop: the predecoded fast
// path (contiguous register-file stack, dense BTB/value-profile slots,
// allocation-free sampling) against the reference interpreter it
// replaced, on a profiling-shaped run (probed HHVM binary, sampling
// enabled). Both paths produce bit-identical RunResults — verified here
// on the first repetition and exhaustively by the ExecutorEquivalence
// property suite.
//
// Reports simulated MIPS (retired simulated instructions per wall-clock
// second) and samples/second for each path, plus the fast/reference
// speedup. Scale the workload with CSSPGO_SCALE; repetitions with
// CSSPGO_MICRO_REPS (default 3). Emits the same one-line JSON summary
// shape as micro_parallel_profgen. CSSPGO_EXEC_MIN_SPEEDUP turns the
// fast-over-reference ratio into a gate (exit 1 below it; default 0 =
// off, since wall-clock gates only make sense on quiet dedicated hosts).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "codegen/Linker.h"
#include "probe/ProbeInserter.h"
#include "sim/Executor.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>

using namespace csspgo;
using namespace csspgo::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

std::string fmt(double Value, int Digits) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

struct Throughput {
  /// Best (minimum) wall time over the repetitions — the standard
  /// noise-rejecting estimator on shared hosts.
  double BestSeconds = 1e30;
  double TotalSeconds = 0;
  uint64_t InstructionsPerRep = 0;
  uint64_t SamplesPerRep = 0;
  double mips() const { return InstructionsPerRep / BestSeconds / 1e6; }
  double samplesPerSec() const { return SamplesPerRep / BestSeconds; }
};

bool sameResult(const RunResult &A, const RunResult &B) {
  if (A.Completed != B.Completed || A.Error != B.Error ||
      A.ExitValue != B.ExitValue || A.Cycles != B.Cycles ||
      A.Instructions != B.Instructions || A.Counters != B.Counters ||
      A.Samples.size() != B.Samples.size())
    return false;
  for (size_t I = 0; I != A.Samples.size(); ++I) {
    const PerfSample &SA = A.Samples[I], &SB = B.Samples[I];
    if (SA.Stack != SB.Stack || SA.LBR.size() != SB.LBR.size())
      return false;
    for (size_t J = 0; J != SA.LBR.size(); ++J)
      if (SA.LBR[J].Src != SB.LBR[J].Src || SA.LBR[J].Dst != SB.LBR[J].Dst)
        return false;
  }
  return true;
}

} // namespace

int main() {
  printHeader("Micro", "executor fast path vs reference interpreter");

  unsigned Reps = 3;
  if (const char *Env = std::getenv("CSSPGO_MICRO_REPS"))
    Reps = std::max(1, std::atoi(Env));

  // A profiling-shaped run: probed binary, sampling on. This is the
  // executor's hot configuration in the PGO pipeline.
  WorkloadConfig WC = workloadPreset("HHVM", scaleFromEnv());
  auto M = generateProgram(WC);
  insertProbes(*M, AnchorKind::PseudoProbe);
  auto Bin = compileToBinary(*M);
  ExecConfig EC;
  EC.Sampler.Enabled = true; // Default (production) sampling period.
  std::vector<int64_t> Input = generateInput(WC, 7);

  auto runOnce = [&](bool Reference, Throughput &T, RunResult *FirstOut) {
    ExecConfig Config = EC;
    Config.ReferenceMode = Reference;
    std::vector<int64_t> Mem = Input; // execute() mutates memory.
    auto Start = std::chrono::steady_clock::now();
    RunResult Result = execute(*Bin, "main", Mem, Config);
    double Sec = secondsSince(Start);
    if (FirstOut) { // Warmup rep: untimed, supplies the identity check.
      *FirstOut = std::move(Result);
      return;
    }
    T.BestSeconds = std::min(T.BestSeconds, Sec);
    T.TotalSeconds += Sec;
    T.InstructionsPerRep = Result.Instructions;
    T.SamplesPerRep = Result.Samples.size();
  };

  // One untimed warmup per path (touches all pages, warms the
  // allocator), then interleaved timed reps so transient system load
  // hits both paths alike; best-rep time is the reported estimate.
  RunResult RefResult, FastResult;
  Throughput Ref, Fast;
  runOnce(/*Reference=*/true, Ref, &RefResult);
  runOnce(/*Reference=*/false, Fast, &FastResult);
  for (unsigned R = 0; R != Reps; ++R) {
    runOnce(/*Reference=*/true, Ref, nullptr);
    runOnce(/*Reference=*/false, Fast, nullptr);
  }
  bool Identical = sameResult(RefResult, FastResult);
  double Speedup = Ref.mips() > 0 ? Fast.mips() / Ref.mips() : 0;

  TextTable Table({"path", "best s", "sim MIPS", "samples/s", "speedup",
                   "identical"});
  Table.addRow({"reference", fmt(Ref.BestSeconds, 3), fmt(Ref.mips(), 2),
                fmt(Ref.samplesPerSec(), 0), "1.00x", "ref"});
  Table.addRow({"fast", fmt(Fast.BestSeconds, 3), fmt(Fast.mips(), 2),
                fmt(Fast.samplesPerSec(), 0), fmt(Speedup, 2) + "x",
                Identical ? "yes" : "NO"});
  std::printf("%s\n", Table.render().c_str());
  std::printf("%u reps, %" PRIu64 " simulated instructions per rep, "
              "target >=2x\n\n",
              Reps, FastResult.Instructions);

  printBenchJson("micro_executor",
                 {{"ref_mips", Ref.mips()},
                  {"fast_mips", Fast.mips()},
                  {"speedup", Speedup},
                  {"fast_samples_per_sec", Fast.samplesPerSec()},
                  {"identical", Identical ? 1 : 0}});

  if (!Identical) {
    std::fprintf(stderr,
                 "FAIL: fast path diverged from the reference interpreter\n");
    return 1;
  }
  double MinSpeedup = 0; // Off unless the environment opts in.
  if (const char *Env = std::getenv("CSSPGO_EXEC_MIN_SPEEDUP"))
    MinSpeedup = std::atof(Env);
  if (Speedup < MinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: fast path is only %.2fx the reference "
                 "interpreter (minimum %.2fx)\n",
                 Speedup, MinSpeedup);
    return 1;
  }
  return 0;
}

//===- bench/ablation_probe_strength.cpp - §III-A flexibility -----*- C++ -*-===//
//
// §III-A: pseudo-instrumentation is a *flexible* framework — an
// implementation "can choose to make pseudo-probe a stronger optimization
// barrier to better preserve original control flow and vice versa". The
// paper's production tuning unblocks if-conversion/code motion (Weak);
// Strong blocks them for higher profile fidelity at some run-time cost.
//
// Harness: build the probed (no-PGO) binary at both strengths, measure
// the run-time overhead vs a plain build, then run the full CSSPGO
// pipeline at both strengths and measure profile quality (block overlap
// against instrumentation ground truth). The instrumentation ground
// truth is shared, so it runs first; the two barrier pipelines then fan
// out over runMany (-j N).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "quality/BlockOverlap.h"
#include "sim/Executor.h"

using namespace csspgo;
using namespace csspgo::bench;

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation", "probe barrier strength — §III-A flexibility");

  TextTable Table({"barrier", "probed-binary overhead", "overlap",
                   "CSSPGO vs plain"});
  ExperimentConfig Base = makeConfig("HHVM");
  PGODriver BaseDriver(Base);
  VariantOutcome Instr = BaseDriver.run(PGOVariant::Instr);
  auto GroundTruth = annotateForQuality(BaseDriver.source(), Instr.Profile);

  const ProbeBarrier Barriers[] = {ProbeBarrier::Weak, ProbeBarrier::Strong};
  auto Rows = runMany<std::vector<std::string>>(2, Jobs, [&](size_t Idx) {
    ProbeBarrier Barrier = Barriers[Idx];
    ExperimentConfig Config = makeConfig("HHVM");
    Config.Opt.Barrier = Barrier;
    PGODriver Driver(Config);
    const VariantOutcome &Plain = Driver.baseline();
    VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);

    auto Annotated = annotateForQuality(Driver.source(), Full.Profile);
    double Overlap =
        computeBlockOverlap(*Annotated, *GroundTruth).ProgramOverlap;

    return std::vector<std::string>{
        Barrier == ProbeBarrier::Weak ? "weak (production)" : "strong",
        formatSignedPercent(Full.ProfilingOverheadPct),
        formatPercent(100 * Overlap),
        formatSignedPercent(
            improvement(Full.EvalCyclesMean, Plain.EvalCyclesMean))};
  });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: the weak setting trades a little profile fidelity\n"
              "for near-zero overhead; strong preserves control flow at\n"
              "some run-time cost.\n");
  return 0;
}

//===- bench/micro_service_ingest.cpp - fleet ingestion benchmark ----------===//
//
// Throughput benchmark of the continuous-profiling service's sharded
// ingestion front: a fixed fleet streams epoch batches through the
// bounded queue into K profiling shards, and every epoch folds into the
// per-service binary stores under decay. Reports host-epochs/s and
// samples/s for K in {1, 2, 4}, verifying every sharded pass produces
// stores bit-identical to the serial pass (the service's determinism
// contract), and exits nonzero if throughput is zero or the stores
// diverge — the CI smoke asserts both.
//
// CSSPGO_SCALE scales the per-host workload; CSSPGO_FLEET_HOSTS and
// CSSPGO_FLEET_EPOCHS override the fleet shape. CSSPGO_INGEST_MIN_SPEEDUP
// additionally gates the best sharded-over-serial throughput ratio (exit
// 1 below it; default 0 = off — wall-clock gates are opt-in, for quiet
// dedicated hosts).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "service/ProfileService.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace csspgo;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

unsigned envUnsigned(const char *Name, unsigned Default) {
  const char *Env = std::getenv(Name);
  if (!Env)
    return Default;
  unsigned long long V = std::strtoull(Env, nullptr, 10);
  return V ? static_cast<unsigned>(V) : Default;
}

} // namespace

int main() {
  ServiceConfig SC;
  SC.Fleet.Hosts = envUnsigned("CSSPGO_FLEET_HOSTS", 12);
  SC.Fleet.Services = 3;
  SC.Fleet.RequestScale = 0.05 * bench::scaleFromEnv();
  SC.DecayPermille = 900;
  SC.QueueBound = 8;
  const unsigned Epochs = envUnsigned("CSSPGO_FLEET_EPOCHS", 4);

  std::printf("fleet ingestion: %u hosts x %u services, %u epochs, "
              "queue bound %zu\n\n",
              SC.Fleet.Hosts, SC.Fleet.Services, Epochs, SC.QueueBound);

  TextTable Table({"shards", "time (s)", "host-epochs/s", "samples/s",
                   "queue hw", "identical"});
  std::vector<std::string> Serial;
  bool AllIdentical = true;
  double SerialRate = 0;
  double BestShardedRate = 0;
  for (unsigned K : {1u, 2u, 4u}) {
    ServiceConfig Run = SC;
    Run.Shards = K;
    ProfileService Svc(Run);
    auto Start = std::chrono::steady_clock::now();
    Status St = Svc.run(Epochs);
    double Secs = secondsSince(Start);
    if (!St.ok()) {
      std::fprintf(stderr, "service run failed at K=%u: %s\n", K,
                   St.message().c_str());
      return 1;
    }
    FleetSnapshot Snap = Svc.snapshot();
    uint64_t Samples = 0;
    for (const ServiceSnapshot &S : Snap.Services)
      Samples += S.SamplesIngested;
    double HostEpochRate = Secs > 0 ? Snap.TasksExecuted / Secs : 0;
    double SampleRate = Secs > 0 ? Samples / Secs : 0;

    bool Identical = true;
    std::vector<std::string> Stores;
    for (unsigned S = 0; S != SC.Fleet.Services; ++S)
      Stores.push_back(Svc.store(S));
    if (K == 1) {
      Serial = Stores;
      SerialRate = HostEpochRate;
    } else {
      Identical = Stores == Serial;
      BestShardedRate = std::max(BestShardedRate, HostEpochRate);
    }
    AllIdentical &= Identical;

    char TimeBuf[32], HeBuf[32], SBuf[32];
    std::snprintf(TimeBuf, sizeof(TimeBuf), "%.3f", Secs);
    std::snprintf(HeBuf, sizeof(HeBuf), "%.1f", HostEpochRate);
    std::snprintf(SBuf, sizeof(SBuf), "%.0f", SampleRate);
    Table.addRow({std::to_string(K), TimeBuf, HeBuf, SBuf,
                  std::to_string(Snap.QueueHighWater),
                  Identical ? "yes" : "NO"});
  }
  std::printf("%s\n", Table.render().c_str());

  if (!AllIdentical) {
    std::fprintf(stderr, "FAIL: sharded stores diverged from serial\n");
    return 1;
  }
  if (SerialRate <= 0) {
    std::fprintf(stderr, "FAIL: zero ingestion throughput reported\n");
    return 1;
  }
  double ShardSpeedup = BestShardedRate / SerialRate;
  std::printf("serial ingestion throughput: %.1f host-epochs/s "
              "(nonzero, sharded passes bit-identical); best sharded "
              "speedup %.2fx\n",
              SerialRate, ShardSpeedup);
  double MinSpeedup = 0; // Off unless the environment opts in.
  if (const char *Env = std::getenv("CSSPGO_INGEST_MIN_SPEEDUP"))
    MinSpeedup = std::atof(Env);
  if (ShardSpeedup < MinSpeedup) {
    std::fprintf(stderr,
                 "FAIL: best sharded ingestion is only %.2fx serial "
                 "(minimum %.2fx)\n",
                 ShardSpeedup, MinSpeedup);
    return 1;
  }
  return 0;
}

//===- bench/ablation_preinliner.cpp - §III-B pre-inliner ---------*- C++ -*-===//
//
// §III-B-b: the context-sensitive pre-inliner makes global, top-down
// inline decisions offline with binary-measured sizes, persists them in
// the profile, and merges not-inlined context profiles back into base
// profiles. Ablation: full CSSPGO with the pre-inliner vs the same
// pipeline relying on the loader's local hot-context heuristic. The six
// (workload, config) cells fan out over runMany (-j N).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace csspgo;
using namespace csspgo::bench;

int main(int argc, char **argv) {
  unsigned Jobs = benchJobs(argc, argv);
  printHeader("Ablation", "context-sensitive pre-inliner — §III-B");

  TextTable Table({"workload", "config", "vs plain", "code size",
                   "topdown inlines"});
  struct Cell {
    const char *Workload;
    bool Pre;
  };
  const Cell Cells[] = {{"HHVM", true},     {"HHVM", false},
                        {"AdRanker", true}, {"AdRanker", false},
                        {"HaaS", true},     {"HaaS", false}};
  auto Rows = runMany<std::vector<std::string>>(
      std::size(Cells), Jobs, [&](size_t Idx) {
        const Cell &C = Cells[Idx];
        ExperimentConfig Config = makeConfig(C.Workload);
        Config.RunPreInliner = C.Pre;
        PGODriver Driver(Config);
        const VariantOutcome &Plain = Driver.baseline();
        VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
        return std::vector<std::string>{
            C.Workload, C.Pre ? "pre-inliner" : "loader heuristic",
            formatSignedPercent(
                improvement(Full.EvalCyclesMean, Plain.EvalCyclesMean)),
            formatBytes(Full.CodeSizeBytes),
            std::to_string(Full.Build->Loader.InlinedCallsites)};
      });
  for (const auto &Row : Rows)
    Table.addRow(Row);
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: the pre-inliner's global budgeted decisions with\n"
              "measured sizes give more selective inlining (smaller code)\n"
              "and better post-inline profiles under ThinLTO-style\n"
              "isolation.\n");
  return 0;
}

//===- bench/ablation_preinliner.cpp - §III-B pre-inliner ---------*- C++ -*-===//
//
// §III-B-b: the context-sensitive pre-inliner makes global, top-down
// inline decisions offline with binary-measured sizes, persists them in
// the profile, and merges not-inlined context profiles back into base
// profiles. Ablation: full CSSPGO with the pre-inliner vs the same
// pipeline relying on the loader's local hot-context heuristic.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace csspgo;
using namespace csspgo::bench;

int main() {
  printHeader("Ablation", "context-sensitive pre-inliner — §III-B");

  TextTable Table({"workload", "config", "vs plain", "code size",
                   "topdown inlines"});
  for (const std::string &W : {std::string("HHVM"), std::string("AdRanker"),
                               std::string("HaaS")}) {
    for (bool Pre : {true, false}) {
      ExperimentConfig Config = makeConfig(W);
      Config.RunPreInliner = Pre;
      PGODriver Driver(Config);
      const VariantOutcome &Plain = Driver.baseline();
      VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
      Table.addRow({W, Pre ? "pre-inliner" : "loader heuristic",
                    formatSignedPercent(improvement(Full.EvalCyclesMean,
                                                    Plain.EvalCyclesMean)),
                    formatBytes(Full.CodeSizeBytes),
                    std::to_string(Full.Build->Loader.InlinedCallsites)});
    }
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper: the pre-inliner's global budgeted decisions with\n"
              "measured sizes give more selective inlining (smaller code)\n"
              "and better post-inline profiles under ThinLTO-style\n"
              "isolation.\n");
  return 0;
}

//===- bench/micro_components.cpp - component micro-benchmarks ----*- C++ -*-===//
//
// Google-benchmark microbenchmarks of the toolkit's hot components: the
// machine simulator, the LBR/stack unwinder (Algorithm 1), AutoFDO and
// CSSPGO profile generation, MCF inference, and Ext-TSP layout. These
// bound the cost of each pipeline stage (the sampling-PGO pitch is that
// profile generation is cheap enough to run continuously).
//
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "codegen/Linker.h"
#include "inference/ProfileInference.h"
#include "opt/PassManager.h"
#include "pgo/BuildPipeline.h"
#include "probe/ProbeInserter.h"
#include "profgen/AutoFDOGenerator.h"
#include "profgen/CSProfileGenerator.h"
#include "sim/Executor.h"
#include "workload/Workloads.h"

using namespace csspgo;

namespace {

WorkloadConfig smallConfig() {
  WorkloadConfig C = workloadPreset("AdRanker", 0.25);
  return C;
}

struct Fixture {
  std::unique_ptr<Module> M;
  std::unique_ptr<Binary> Bin;
  ProbeTable Probes;
  std::vector<PerfSample> Samples;
  std::vector<int64_t> Memory;

  Fixture() {
    WorkloadConfig C = smallConfig();
    M = generateProgram(C);
    insertProbes(*M, AnchorKind::PseudoProbe);
    Probes = ProbeTable::fromModule(*M);
    Bin = compileToBinary(*M);
    Memory = generateInput(C, 7);
    ExecConfig EC;
    EC.Sampler.Enabled = true;
    EC.Sampler.PeriodCycles = 2003;
    std::vector<int64_t> Mem = Memory;
    Samples = execute(*Bin, "main", Mem, EC).Samples;
  }
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_Executor(benchmark::State &State) {
  Fixture &F = fixture();
  uint64_t Insts = 0;
  for (auto _ : State) {
    std::vector<int64_t> Mem = F.Memory;
    RunResult R = execute(*F.Bin, "main", Mem, {});
    benchmark::DoNotOptimize(R.Cycles);
    Insts += R.Instructions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Insts));
}
BENCHMARK(BM_Executor)->Unit(benchmark::kMillisecond);

void BM_ExecutorWithSampling(benchmark::State &State) {
  Fixture &F = fixture();
  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = 4001;
  for (auto _ : State) {
    std::vector<int64_t> Mem = F.Memory;
    RunResult R = execute(*F.Bin, "main", Mem, EC);
    benchmark::DoNotOptimize(R.Samples.size());
  }
}
BENCHMARK(BM_ExecutorWithSampling)->Unit(benchmark::kMillisecond);

void BM_AutoFDOProfileGen(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    FlatProfile P = generateAutoFDOProfile(*F.Bin, F.Samples);
    benchmark::DoNotOptimize(P.totalSamples());
  }
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations() * F.Samples.size()));
}
BENCHMARK(BM_AutoFDOProfileGen)->Unit(benchmark::kMillisecond);

void BM_CSProfileGen(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    ContextProfile P = generateCSProfile(*F.Bin, F.Probes, F.Samples);
    benchmark::DoNotOptimize(P.totalSamples());
  }
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations() * F.Samples.size()));
}
BENCHMARK(BM_CSProfileGen)->Unit(benchmark::kMillisecond);

void BM_MCFInference(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    State.PauseTiming();
    auto M2 = F.M->clone();
    // Raw pseudo-counts to smooth.
    uint64_t Seed = 1;
    for (auto &Fn : M2->Functions)
      for (auto &BB : Fn->Blocks)
        BB->setCount((Seed = Seed * 6364136223846793005ULL + 1) % 1000);
    State.ResumeTiming();
    inferModuleProfile(*M2);
    benchmark::DoNotOptimize(M2->Functions.size());
  }
}
BENCHMARK(BM_MCFInference)->Unit(benchmark::kMillisecond);

void BM_ExtTSPLayout(benchmark::State &State) {
  Fixture &F = fixture();
  OptOptions Opts;
  for (auto _ : State) {
    State.PauseTiming();
    auto M2 = F.M->clone();
    uint64_t Seed = 99;
    for (auto &Fn : M2->Functions)
      for (auto &BB : Fn->Blocks) {
        BB->setCount((Seed = Seed * 2862933555777941757ULL + 3) % 5000);
        BB->SuccWeights.clear();
      }
    State.ResumeTiming();
    for (auto &Fn : M2->Functions)
      runExtTSPLayout(*Fn, Opts);
    benchmark::DoNotOptimize(M2->Functions.size());
  }
}
BENCHMARK(BM_ExtTSPLayout)->Unit(benchmark::kMillisecond);

void BM_FullPGOPipeline(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    BuildConfig BC;
    BC.Variant = PGOVariant::CSSPGOFull;
    BuildResult R = buildWithPGO(*F.M, BC, nullptr);
    benchmark::DoNotOptimize(R.Bin->textSize());
  }
}
BENCHMARK(BM_FullPGOPipeline)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

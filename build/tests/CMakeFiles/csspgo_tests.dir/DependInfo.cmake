
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CodegenTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/CodegenTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/CodegenTest.cpp.o.d"
  "/root/repo/tests/ExecutorTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/ExecutorTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/ExecutorTest.cpp.o.d"
  "/root/repo/tests/IRTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/IRTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/IRTest.cpp.o.d"
  "/root/repo/tests/IndirectCallTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/IndirectCallTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/IndirectCallTest.cpp.o.d"
  "/root/repo/tests/InferenceTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/InferenceTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/InferenceTest.cpp.o.d"
  "/root/repo/tests/LoaderTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/LoaderTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/LoaderTest.cpp.o.d"
  "/root/repo/tests/OptTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/OptTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/OptTest.cpp.o.d"
  "/root/repo/tests/PGOEndToEndTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/PGOEndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/PGOEndToEndTest.cpp.o.d"
  "/root/repo/tests/ParserTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/PreInlinerTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/PreInlinerTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/PreInlinerTest.cpp.o.d"
  "/root/repo/tests/ProbeTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/ProbeTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/ProbeTest.cpp.o.d"
  "/root/repo/tests/ProfgenTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/ProfgenTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/ProfgenTest.cpp.o.d"
  "/root/repo/tests/ProfileTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/ProfileTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/ProfileTest.cpp.o.d"
  "/root/repo/tests/PropertyTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/PropertyTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/PropertyTest.cpp.o.d"
  "/root/repo/tests/QualityTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/QualityTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/QualityTest.cpp.o.d"
  "/root/repo/tests/SimModelTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/SimModelTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/SimModelTest.cpp.o.d"
  "/root/repo/tests/SupportTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/SupportTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/SupportTest.cpp.o.d"
  "/root/repo/tests/WorkloadTest.cpp" "tests/CMakeFiles/csspgo_tests.dir/WorkloadTest.cpp.o" "gcc" "tests/CMakeFiles/csspgo_tests.dir/WorkloadTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csspgo_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_pgo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_loader.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_preinline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_profgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

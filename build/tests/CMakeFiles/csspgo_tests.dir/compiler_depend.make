# Empty compiler generated dependencies file for csspgo_tests.
# This may be replaced when dependencies are built.

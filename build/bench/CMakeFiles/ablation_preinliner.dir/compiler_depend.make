# Empty compiler generated dependencies file for ablation_preinliner.
# This may be replaced when dependencies are built.

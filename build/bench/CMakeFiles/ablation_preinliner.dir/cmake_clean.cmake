file(REMOVE_RECURSE
  "CMakeFiles/ablation_preinliner.dir/ablation_preinliner.cpp.o"
  "CMakeFiles/ablation_preinliner.dir/ablation_preinliner.cpp.o.d"
  "ablation_preinliner"
  "ablation_preinliner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preinliner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_trimming.dir/ablation_trimming.cpp.o"
  "CMakeFiles/ablation_trimming.dir/ablation_trimming.cpp.o.d"
  "ablation_trimming"
  "ablation_trimming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trimming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

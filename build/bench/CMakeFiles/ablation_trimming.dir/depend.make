# Empty dependencies file for ablation_trimming.
# This may be replaced when dependencies are built.

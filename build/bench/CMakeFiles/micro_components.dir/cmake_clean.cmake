file(REMOVE_RECURSE
  "CMakeFiles/micro_components.dir/micro_components.cpp.o"
  "CMakeFiles/micro_components.dir/micro_components.cpp.o.d"
  "micro_components"
  "micro_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_tailcall.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_tailcall.dir/ablation_tailcall.cpp.o"
  "CMakeFiles/ablation_tailcall.dir/ablation_tailcall.cpp.o.d"
  "ablation_tailcall"
  "ablation_tailcall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tailcall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

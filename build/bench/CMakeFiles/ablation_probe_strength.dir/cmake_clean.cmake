file(REMOVE_RECURSE
  "CMakeFiles/ablation_probe_strength.dir/ablation_probe_strength.cpp.o"
  "CMakeFiles/ablation_probe_strength.dir/ablation_probe_strength.cpp.o.d"
  "ablation_probe_strength"
  "ablation_probe_strength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probe_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_probe_strength.
# This may be replaced when dependencies are built.

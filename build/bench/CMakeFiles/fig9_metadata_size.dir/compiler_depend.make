# Empty compiler generated dependencies file for fig9_metadata_size.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig9_metadata_size.dir/fig9_metadata_size.cpp.o"
  "CMakeFiles/fig9_metadata_size.dir/fig9_metadata_size.cpp.o.d"
  "fig9_metadata_size"
  "fig9_metadata_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_metadata_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_inference.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_inference.dir/ablation_inference.cpp.o"
  "CMakeFiles/ablation_inference.dir/ablation_inference.cpp.o.d"
  "ablation_inference"
  "ablation_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for clientd_clang.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/clientd_clang.dir/clientd_clang.cpp.o"
  "CMakeFiles/clientd_clang.dir/clientd_clang.cpp.o.d"
  "clientd_clang"
  "clientd_clang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clientd_clang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_source_drift.dir/ablation_source_drift.cpp.o"
  "CMakeFiles/ablation_source_drift.dir/ablation_source_drift.cpp.o.d"
  "ablation_source_drift"
  "ablation_source_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_source_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_source_drift.
# This may be replaced when dependencies are built.

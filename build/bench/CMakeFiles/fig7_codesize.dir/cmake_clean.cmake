file(REMOVE_RECURSE
  "CMakeFiles/fig7_codesize.dir/fig7_codesize.cpp.o"
  "CMakeFiles/fig7_codesize.dir/fig7_codesize.cpp.o.d"
  "fig7_codesize"
  "fig7_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig7_codesize.
# This may be replaced when dependencies are built.

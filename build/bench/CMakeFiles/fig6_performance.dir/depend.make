# Empty dependencies file for fig6_performance.
# This may be replaced when dependencies are built.

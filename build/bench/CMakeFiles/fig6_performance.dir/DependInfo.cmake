
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_performance.cpp" "bench/CMakeFiles/fig6_performance.dir/fig6_performance.cpp.o" "gcc" "bench/CMakeFiles/fig6_performance.dir/fig6_performance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csspgo_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_pgo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_loader.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_inference.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_preinline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_profgen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

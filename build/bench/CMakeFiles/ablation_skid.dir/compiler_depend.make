# Empty compiler generated dependencies file for ablation_skid.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_skid.dir/ablation_skid.cpp.o"
  "CMakeFiles/ablation_skid.dir/ablation_skid.cpp.o.d"
  "ablation_skid"
  "ablation_skid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/table1_profile_quality.dir/table1_profile_quality.cpp.o"
  "CMakeFiles/table1_profile_quality.dir/table1_profile_quality.cpp.o.d"
  "table1_profile_quality"
  "table1_profile_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_profile_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

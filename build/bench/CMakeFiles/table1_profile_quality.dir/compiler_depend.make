# Empty compiler generated dependencies file for table1_profile_quality.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig8_probe_overhead.dir/fig8_probe_overhead.cpp.o"
  "CMakeFiles/fig8_probe_overhead.dir/fig8_probe_overhead.cpp.o.d"
  "fig8_probe_overhead"
  "fig8_probe_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_probe_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

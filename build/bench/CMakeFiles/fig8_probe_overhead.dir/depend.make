# Empty dependencies file for fig8_probe_overhead.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcsspgo_sim.a"
)

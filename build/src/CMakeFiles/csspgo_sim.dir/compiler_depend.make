# Empty compiler generated dependencies file for csspgo_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/csspgo_sim.dir/sim/CostModel.cpp.o"
  "CMakeFiles/csspgo_sim.dir/sim/CostModel.cpp.o.d"
  "CMakeFiles/csspgo_sim.dir/sim/Executor.cpp.o"
  "CMakeFiles/csspgo_sim.dir/sim/Executor.cpp.o.d"
  "CMakeFiles/csspgo_sim.dir/sim/InstrRuntime.cpp.o"
  "CMakeFiles/csspgo_sim.dir/sim/InstrRuntime.cpp.o.d"
  "CMakeFiles/csspgo_sim.dir/sim/Sampler.cpp.o"
  "CMakeFiles/csspgo_sim.dir/sim/Sampler.cpp.o.d"
  "libcsspgo_sim.a"
  "libcsspgo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/csspgo_ir.dir/ir/BasicBlock.cpp.o"
  "CMakeFiles/csspgo_ir.dir/ir/BasicBlock.cpp.o.d"
  "CMakeFiles/csspgo_ir.dir/ir/Builder.cpp.o"
  "CMakeFiles/csspgo_ir.dir/ir/Builder.cpp.o.d"
  "CMakeFiles/csspgo_ir.dir/ir/CFG.cpp.o"
  "CMakeFiles/csspgo_ir.dir/ir/CFG.cpp.o.d"
  "CMakeFiles/csspgo_ir.dir/ir/Checksum.cpp.o"
  "CMakeFiles/csspgo_ir.dir/ir/Checksum.cpp.o.d"
  "CMakeFiles/csspgo_ir.dir/ir/Function.cpp.o"
  "CMakeFiles/csspgo_ir.dir/ir/Function.cpp.o.d"
  "CMakeFiles/csspgo_ir.dir/ir/Instruction.cpp.o"
  "CMakeFiles/csspgo_ir.dir/ir/Instruction.cpp.o.d"
  "CMakeFiles/csspgo_ir.dir/ir/Module.cpp.o"
  "CMakeFiles/csspgo_ir.dir/ir/Module.cpp.o.d"
  "CMakeFiles/csspgo_ir.dir/ir/Parser.cpp.o"
  "CMakeFiles/csspgo_ir.dir/ir/Parser.cpp.o.d"
  "CMakeFiles/csspgo_ir.dir/ir/Printer.cpp.o"
  "CMakeFiles/csspgo_ir.dir/ir/Printer.cpp.o.d"
  "CMakeFiles/csspgo_ir.dir/ir/Verifier.cpp.o"
  "CMakeFiles/csspgo_ir.dir/ir/Verifier.cpp.o.d"
  "libcsspgo_ir.a"
  "libcsspgo_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

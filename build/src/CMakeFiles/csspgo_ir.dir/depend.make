# Empty dependencies file for csspgo_ir.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/BasicBlock.cpp" "src/CMakeFiles/csspgo_ir.dir/ir/BasicBlock.cpp.o" "gcc" "src/CMakeFiles/csspgo_ir.dir/ir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/Builder.cpp" "src/CMakeFiles/csspgo_ir.dir/ir/Builder.cpp.o" "gcc" "src/CMakeFiles/csspgo_ir.dir/ir/Builder.cpp.o.d"
  "/root/repo/src/ir/CFG.cpp" "src/CMakeFiles/csspgo_ir.dir/ir/CFG.cpp.o" "gcc" "src/CMakeFiles/csspgo_ir.dir/ir/CFG.cpp.o.d"
  "/root/repo/src/ir/Checksum.cpp" "src/CMakeFiles/csspgo_ir.dir/ir/Checksum.cpp.o" "gcc" "src/CMakeFiles/csspgo_ir.dir/ir/Checksum.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/csspgo_ir.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/csspgo_ir.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/Instruction.cpp" "src/CMakeFiles/csspgo_ir.dir/ir/Instruction.cpp.o" "gcc" "src/CMakeFiles/csspgo_ir.dir/ir/Instruction.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/CMakeFiles/csspgo_ir.dir/ir/Module.cpp.o" "gcc" "src/CMakeFiles/csspgo_ir.dir/ir/Module.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/CMakeFiles/csspgo_ir.dir/ir/Parser.cpp.o" "gcc" "src/CMakeFiles/csspgo_ir.dir/ir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/csspgo_ir.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/csspgo_ir.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/CMakeFiles/csspgo_ir.dir/ir/Verifier.cpp.o" "gcc" "src/CMakeFiles/csspgo_ir.dir/ir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csspgo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

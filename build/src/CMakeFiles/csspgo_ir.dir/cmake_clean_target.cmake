file(REMOVE_RECURSE
  "libcsspgo_ir.a"
)

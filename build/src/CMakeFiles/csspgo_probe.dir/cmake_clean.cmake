file(REMOVE_RECURSE
  "CMakeFiles/csspgo_probe.dir/probe/ProbeInserter.cpp.o"
  "CMakeFiles/csspgo_probe.dir/probe/ProbeInserter.cpp.o.d"
  "CMakeFiles/csspgo_probe.dir/probe/ProbeTable.cpp.o"
  "CMakeFiles/csspgo_probe.dir/probe/ProbeTable.cpp.o.d"
  "libcsspgo_probe.a"
  "libcsspgo_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for csspgo_probe.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcsspgo_probe.a"
)

# Empty compiler generated dependencies file for csspgo_pgo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcsspgo_pgo.a"
)

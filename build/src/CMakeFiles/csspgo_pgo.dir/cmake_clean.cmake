file(REMOVE_RECURSE
  "CMakeFiles/csspgo_pgo.dir/pgo/BuildPipeline.cpp.o"
  "CMakeFiles/csspgo_pgo.dir/pgo/BuildPipeline.cpp.o.d"
  "CMakeFiles/csspgo_pgo.dir/pgo/PGODriver.cpp.o"
  "CMakeFiles/csspgo_pgo.dir/pgo/PGODriver.cpp.o.d"
  "libcsspgo_pgo.a"
  "libcsspgo_pgo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_pgo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/ContextTrie.cpp" "src/CMakeFiles/csspgo_profile.dir/profile/ContextTrie.cpp.o" "gcc" "src/CMakeFiles/csspgo_profile.dir/profile/ContextTrie.cpp.o.d"
  "/root/repo/src/profile/FunctionProfile.cpp" "src/CMakeFiles/csspgo_profile.dir/profile/FunctionProfile.cpp.o" "gcc" "src/CMakeFiles/csspgo_profile.dir/profile/FunctionProfile.cpp.o.d"
  "/root/repo/src/profile/ProfileIO.cpp" "src/CMakeFiles/csspgo_profile.dir/profile/ProfileIO.cpp.o" "gcc" "src/CMakeFiles/csspgo_profile.dir/profile/ProfileIO.cpp.o.d"
  "/root/repo/src/profile/ProfileMerge.cpp" "src/CMakeFiles/csspgo_profile.dir/profile/ProfileMerge.cpp.o" "gcc" "src/CMakeFiles/csspgo_profile.dir/profile/ProfileMerge.cpp.o.d"
  "/root/repo/src/profile/ProfileSummary.cpp" "src/CMakeFiles/csspgo_profile.dir/profile/ProfileSummary.cpp.o" "gcc" "src/CMakeFiles/csspgo_profile.dir/profile/ProfileSummary.cpp.o.d"
  "/root/repo/src/profile/Trimmer.cpp" "src/CMakeFiles/csspgo_profile.dir/profile/Trimmer.cpp.o" "gcc" "src/CMakeFiles/csspgo_profile.dir/profile/Trimmer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csspgo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

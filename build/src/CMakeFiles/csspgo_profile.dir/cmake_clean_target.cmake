file(REMOVE_RECURSE
  "libcsspgo_profile.a"
)

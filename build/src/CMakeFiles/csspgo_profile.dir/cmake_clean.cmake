file(REMOVE_RECURSE
  "CMakeFiles/csspgo_profile.dir/profile/ContextTrie.cpp.o"
  "CMakeFiles/csspgo_profile.dir/profile/ContextTrie.cpp.o.d"
  "CMakeFiles/csspgo_profile.dir/profile/FunctionProfile.cpp.o"
  "CMakeFiles/csspgo_profile.dir/profile/FunctionProfile.cpp.o.d"
  "CMakeFiles/csspgo_profile.dir/profile/ProfileIO.cpp.o"
  "CMakeFiles/csspgo_profile.dir/profile/ProfileIO.cpp.o.d"
  "CMakeFiles/csspgo_profile.dir/profile/ProfileMerge.cpp.o"
  "CMakeFiles/csspgo_profile.dir/profile/ProfileMerge.cpp.o.d"
  "CMakeFiles/csspgo_profile.dir/profile/ProfileSummary.cpp.o"
  "CMakeFiles/csspgo_profile.dir/profile/ProfileSummary.cpp.o.d"
  "CMakeFiles/csspgo_profile.dir/profile/Trimmer.cpp.o"
  "CMakeFiles/csspgo_profile.dir/profile/Trimmer.cpp.o.d"
  "libcsspgo_profile.a"
  "libcsspgo_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

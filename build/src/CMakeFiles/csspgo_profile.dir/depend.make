# Empty dependencies file for csspgo_profile.
# This may be replaced when dependencies are built.

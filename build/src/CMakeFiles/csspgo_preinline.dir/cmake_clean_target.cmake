file(REMOVE_RECURSE
  "libcsspgo_preinline.a"
)

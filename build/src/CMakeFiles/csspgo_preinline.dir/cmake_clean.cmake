file(REMOVE_RECURSE
  "CMakeFiles/csspgo_preinline.dir/preinline/PreInliner.cpp.o"
  "CMakeFiles/csspgo_preinline.dir/preinline/PreInliner.cpp.o.d"
  "CMakeFiles/csspgo_preinline.dir/preinline/ProfiledCallGraph.cpp.o"
  "CMakeFiles/csspgo_preinline.dir/preinline/ProfiledCallGraph.cpp.o.d"
  "libcsspgo_preinline.a"
  "libcsspgo_preinline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_preinline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for csspgo_preinline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcsspgo_support.a"
)

# Empty compiler generated dependencies file for csspgo_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/csspgo_support.dir/support/Hashing.cpp.o"
  "CMakeFiles/csspgo_support.dir/support/Hashing.cpp.o.d"
  "CMakeFiles/csspgo_support.dir/support/Random.cpp.o"
  "CMakeFiles/csspgo_support.dir/support/Random.cpp.o.d"
  "CMakeFiles/csspgo_support.dir/support/SourceText.cpp.o"
  "CMakeFiles/csspgo_support.dir/support/SourceText.cpp.o.d"
  "libcsspgo_support.a"
  "libcsspgo_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

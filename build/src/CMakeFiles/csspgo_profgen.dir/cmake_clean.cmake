file(REMOVE_RECURSE
  "CMakeFiles/csspgo_profgen.dir/profgen/AutoFDOGenerator.cpp.o"
  "CMakeFiles/csspgo_profgen.dir/profgen/AutoFDOGenerator.cpp.o.d"
  "CMakeFiles/csspgo_profgen.dir/profgen/BinarySizeExtractor.cpp.o"
  "CMakeFiles/csspgo_profgen.dir/profgen/BinarySizeExtractor.cpp.o.d"
  "CMakeFiles/csspgo_profgen.dir/profgen/CSProfileGenerator.cpp.o"
  "CMakeFiles/csspgo_profgen.dir/profgen/CSProfileGenerator.cpp.o.d"
  "CMakeFiles/csspgo_profgen.dir/profgen/ContextUnwinder.cpp.o"
  "CMakeFiles/csspgo_profgen.dir/profgen/ContextUnwinder.cpp.o.d"
  "CMakeFiles/csspgo_profgen.dir/profgen/InstrProfileGenerator.cpp.o"
  "CMakeFiles/csspgo_profgen.dir/profgen/InstrProfileGenerator.cpp.o.d"
  "CMakeFiles/csspgo_profgen.dir/profgen/MissingFrameInferrer.cpp.o"
  "CMakeFiles/csspgo_profgen.dir/profgen/MissingFrameInferrer.cpp.o.d"
  "CMakeFiles/csspgo_profgen.dir/profgen/Symbolizer.cpp.o"
  "CMakeFiles/csspgo_profgen.dir/profgen/Symbolizer.cpp.o.d"
  "libcsspgo_profgen.a"
  "libcsspgo_profgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_profgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

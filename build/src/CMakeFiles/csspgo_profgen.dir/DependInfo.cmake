
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profgen/AutoFDOGenerator.cpp" "src/CMakeFiles/csspgo_profgen.dir/profgen/AutoFDOGenerator.cpp.o" "gcc" "src/CMakeFiles/csspgo_profgen.dir/profgen/AutoFDOGenerator.cpp.o.d"
  "/root/repo/src/profgen/BinarySizeExtractor.cpp" "src/CMakeFiles/csspgo_profgen.dir/profgen/BinarySizeExtractor.cpp.o" "gcc" "src/CMakeFiles/csspgo_profgen.dir/profgen/BinarySizeExtractor.cpp.o.d"
  "/root/repo/src/profgen/CSProfileGenerator.cpp" "src/CMakeFiles/csspgo_profgen.dir/profgen/CSProfileGenerator.cpp.o" "gcc" "src/CMakeFiles/csspgo_profgen.dir/profgen/CSProfileGenerator.cpp.o.d"
  "/root/repo/src/profgen/ContextUnwinder.cpp" "src/CMakeFiles/csspgo_profgen.dir/profgen/ContextUnwinder.cpp.o" "gcc" "src/CMakeFiles/csspgo_profgen.dir/profgen/ContextUnwinder.cpp.o.d"
  "/root/repo/src/profgen/InstrProfileGenerator.cpp" "src/CMakeFiles/csspgo_profgen.dir/profgen/InstrProfileGenerator.cpp.o" "gcc" "src/CMakeFiles/csspgo_profgen.dir/profgen/InstrProfileGenerator.cpp.o.d"
  "/root/repo/src/profgen/MissingFrameInferrer.cpp" "src/CMakeFiles/csspgo_profgen.dir/profgen/MissingFrameInferrer.cpp.o" "gcc" "src/CMakeFiles/csspgo_profgen.dir/profgen/MissingFrameInferrer.cpp.o.d"
  "/root/repo/src/profgen/Symbolizer.cpp" "src/CMakeFiles/csspgo_profgen.dir/profgen/Symbolizer.cpp.o" "gcc" "src/CMakeFiles/csspgo_profgen.dir/profgen/Symbolizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csspgo_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

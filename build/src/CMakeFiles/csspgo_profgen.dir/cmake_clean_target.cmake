file(REMOVE_RECURSE
  "libcsspgo_profgen.a"
)

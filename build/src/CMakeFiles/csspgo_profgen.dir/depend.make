# Empty dependencies file for csspgo_profgen.
# This may be replaced when dependencies are built.

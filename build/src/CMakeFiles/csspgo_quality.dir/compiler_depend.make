# Empty compiler generated dependencies file for csspgo_quality.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/csspgo_quality.dir/quality/BlockOverlap.cpp.o"
  "CMakeFiles/csspgo_quality.dir/quality/BlockOverlap.cpp.o.d"
  "libcsspgo_quality.a"
  "libcsspgo_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcsspgo_quality.a"
)

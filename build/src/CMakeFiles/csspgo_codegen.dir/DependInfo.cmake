
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/DebugInfo.cpp" "src/CMakeFiles/csspgo_codegen.dir/codegen/DebugInfo.cpp.o" "gcc" "src/CMakeFiles/csspgo_codegen.dir/codegen/DebugInfo.cpp.o.d"
  "/root/repo/src/codegen/Linker.cpp" "src/CMakeFiles/csspgo_codegen.dir/codegen/Linker.cpp.o" "gcc" "src/CMakeFiles/csspgo_codegen.dir/codegen/Linker.cpp.o.d"
  "/root/repo/src/codegen/Lowering.cpp" "src/CMakeFiles/csspgo_codegen.dir/codegen/Lowering.cpp.o" "gcc" "src/CMakeFiles/csspgo_codegen.dir/codegen/Lowering.cpp.o.d"
  "/root/repo/src/codegen/MachineModule.cpp" "src/CMakeFiles/csspgo_codegen.dir/codegen/MachineModule.cpp.o" "gcc" "src/CMakeFiles/csspgo_codegen.dir/codegen/MachineModule.cpp.o.d"
  "/root/repo/src/codegen/ProbeMetadata.cpp" "src/CMakeFiles/csspgo_codegen.dir/codegen/ProbeMetadata.cpp.o" "gcc" "src/CMakeFiles/csspgo_codegen.dir/codegen/ProbeMetadata.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csspgo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

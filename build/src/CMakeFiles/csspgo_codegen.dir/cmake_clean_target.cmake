file(REMOVE_RECURSE
  "libcsspgo_codegen.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/csspgo_codegen.dir/codegen/DebugInfo.cpp.o"
  "CMakeFiles/csspgo_codegen.dir/codegen/DebugInfo.cpp.o.d"
  "CMakeFiles/csspgo_codegen.dir/codegen/Linker.cpp.o"
  "CMakeFiles/csspgo_codegen.dir/codegen/Linker.cpp.o.d"
  "CMakeFiles/csspgo_codegen.dir/codegen/Lowering.cpp.o"
  "CMakeFiles/csspgo_codegen.dir/codegen/Lowering.cpp.o.d"
  "CMakeFiles/csspgo_codegen.dir/codegen/MachineModule.cpp.o"
  "CMakeFiles/csspgo_codegen.dir/codegen/MachineModule.cpp.o.d"
  "CMakeFiles/csspgo_codegen.dir/codegen/ProbeMetadata.cpp.o"
  "CMakeFiles/csspgo_codegen.dir/codegen/ProbeMetadata.cpp.o.d"
  "libcsspgo_codegen.a"
  "libcsspgo_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

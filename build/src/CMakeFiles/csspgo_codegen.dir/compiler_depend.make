# Empty compiler generated dependencies file for csspgo_codegen.
# This may be replaced when dependencies are built.

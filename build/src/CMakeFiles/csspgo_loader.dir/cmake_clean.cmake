file(REMOVE_RECURSE
  "CMakeFiles/csspgo_loader.dir/loader/DebugInfoCorrelator.cpp.o"
  "CMakeFiles/csspgo_loader.dir/loader/DebugInfoCorrelator.cpp.o.d"
  "CMakeFiles/csspgo_loader.dir/loader/ProbeCorrelator.cpp.o"
  "CMakeFiles/csspgo_loader.dir/loader/ProbeCorrelator.cpp.o.d"
  "CMakeFiles/csspgo_loader.dir/loader/ProfileLoader.cpp.o"
  "CMakeFiles/csspgo_loader.dir/loader/ProfileLoader.cpp.o.d"
  "libcsspgo_loader.a"
  "libcsspgo_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for csspgo_loader.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcsspgo_loader.a"
)

# Empty compiler generated dependencies file for csspgo_inference.
# This may be replaced when dependencies are built.

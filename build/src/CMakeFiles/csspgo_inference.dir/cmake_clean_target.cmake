file(REMOVE_RECURSE
  "libcsspgo_inference.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inference/MinCostFlow.cpp" "src/CMakeFiles/csspgo_inference.dir/inference/MinCostFlow.cpp.o" "gcc" "src/CMakeFiles/csspgo_inference.dir/inference/MinCostFlow.cpp.o.d"
  "/root/repo/src/inference/ProfileInference.cpp" "src/CMakeFiles/csspgo_inference.dir/inference/ProfileInference.cpp.o" "gcc" "src/CMakeFiles/csspgo_inference.dir/inference/ProfileInference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csspgo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/csspgo_inference.dir/inference/MinCostFlow.cpp.o"
  "CMakeFiles/csspgo_inference.dir/inference/MinCostFlow.cpp.o.d"
  "CMakeFiles/csspgo_inference.dir/inference/ProfileInference.cpp.o"
  "CMakeFiles/csspgo_inference.dir/inference/ProfileInference.cpp.o.d"
  "libcsspgo_inference.a"
  "libcsspgo_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

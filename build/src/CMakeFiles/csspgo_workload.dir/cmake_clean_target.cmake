file(REMOVE_RECURSE
  "libcsspgo_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/csspgo_workload.dir/workload/ProgramGenerator.cpp.o"
  "CMakeFiles/csspgo_workload.dir/workload/ProgramGenerator.cpp.o.d"
  "CMakeFiles/csspgo_workload.dir/workload/Workloads.cpp.o"
  "CMakeFiles/csspgo_workload.dir/workload/Workloads.cpp.o.d"
  "libcsspgo_workload.a"
  "libcsspgo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

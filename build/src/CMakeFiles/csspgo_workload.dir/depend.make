# Empty dependencies file for csspgo_workload.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/CodeMotion.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/CodeMotion.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/CodeMotion.cpp.o.d"
  "/root/repo/src/opt/ConstantFold.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/ConstantFold.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/ConstantFold.cpp.o.d"
  "/root/repo/src/opt/DCE.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/DCE.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/DCE.cpp.o.d"
  "/root/repo/src/opt/ExtTSPLayout.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/ExtTSPLayout.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/ExtTSPLayout.cpp.o.d"
  "/root/repo/src/opt/FunctionSplit.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/FunctionSplit.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/FunctionSplit.cpp.o.d"
  "/root/repo/src/opt/IfConvert.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/IfConvert.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/IfConvert.cpp.o.d"
  "/root/repo/src/opt/InlineCost.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/InlineCost.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/InlineCost.cpp.o.d"
  "/root/repo/src/opt/Inliner.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/Inliner.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/Inliner.cpp.o.d"
  "/root/repo/src/opt/JumpThreading.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/JumpThreading.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/JumpThreading.cpp.o.d"
  "/root/repo/src/opt/LoopUnroll.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/LoopUnroll.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/LoopUnroll.cpp.o.d"
  "/root/repo/src/opt/PassManager.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/PassManager.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/PassManager.cpp.o.d"
  "/root/repo/src/opt/SimplifyCFG.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/SimplifyCFG.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/SimplifyCFG.cpp.o.d"
  "/root/repo/src/opt/TailMerge.cpp" "src/CMakeFiles/csspgo_opt.dir/opt/TailMerge.cpp.o" "gcc" "src/CMakeFiles/csspgo_opt.dir/opt/TailMerge.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/csspgo_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/csspgo_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

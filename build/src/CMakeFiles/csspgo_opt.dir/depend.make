# Empty dependencies file for csspgo_opt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcsspgo_opt.a"
)

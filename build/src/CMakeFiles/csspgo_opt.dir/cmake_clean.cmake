file(REMOVE_RECURSE
  "CMakeFiles/csspgo_opt.dir/opt/CodeMotion.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/CodeMotion.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/ConstantFold.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/ConstantFold.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/DCE.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/DCE.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/ExtTSPLayout.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/ExtTSPLayout.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/FunctionSplit.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/FunctionSplit.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/IfConvert.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/IfConvert.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/InlineCost.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/InlineCost.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/Inliner.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/Inliner.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/JumpThreading.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/JumpThreading.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/LoopUnroll.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/LoopUnroll.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/PassManager.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/PassManager.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/SimplifyCFG.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/SimplifyCFG.cpp.o.d"
  "CMakeFiles/csspgo_opt.dir/opt/TailMerge.cpp.o"
  "CMakeFiles/csspgo_opt.dir/opt/TailMerge.cpp.o.d"
  "libcsspgo_opt.a"
  "libcsspgo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for context_profiler_demo.
# This may be replaced when dependencies are built.

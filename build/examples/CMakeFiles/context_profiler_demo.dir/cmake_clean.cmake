file(REMOVE_RECURSE
  "CMakeFiles/context_profiler_demo.dir/context_profiler_demo.cpp.o"
  "CMakeFiles/context_profiler_demo.dir/context_profiler_demo.cpp.o.d"
  "context_profiler_demo"
  "context_profiler_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_profiler_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

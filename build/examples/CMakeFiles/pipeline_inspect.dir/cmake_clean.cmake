file(REMOVE_RECURSE
  "CMakeFiles/pipeline_inspect.dir/pipeline_inspect.cpp.o"
  "CMakeFiles/pipeline_inspect.dir/pipeline_inspect.cpp.o.d"
  "pipeline_inspect"
  "pipeline_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for pipeline_inspect.
# This may be replaced when dependencies are built.

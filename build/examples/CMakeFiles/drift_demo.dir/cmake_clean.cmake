file(REMOVE_RECURSE
  "CMakeFiles/drift_demo.dir/drift_demo.cpp.o"
  "CMakeFiles/drift_demo.dir/drift_demo.cpp.o.d"
  "drift_demo"
  "drift_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for drift_demo.
# This may be replaced when dependencies are built.

# Empty dependencies file for csspgo_exp.
# This may be replaced when dependencies are built.

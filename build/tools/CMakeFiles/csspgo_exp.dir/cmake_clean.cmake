file(REMOVE_RECURSE
  "CMakeFiles/csspgo_exp.dir/csspgo_exp.cpp.o"
  "CMakeFiles/csspgo_exp.dir/csspgo_exp.cpp.o.d"
  "csspgo_exp"
  "csspgo_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csspgo_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

//===- tests/SupportTest.cpp - support library tests ------------*- C++ -*-===//

#include "support/Hashing.h"
#include "support/Random.h"
#include "support/SourceText.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>

using namespace csspgo;

TEST(Hashing, Deterministic) {
  EXPECT_EQ(hashBytes("hello"), hashBytes("hello"));
  EXPECT_NE(hashBytes("hello"), hashBytes("hellp"));
  EXPECT_EQ(computeFunctionGuid("foo"), computeFunctionGuid("foo"));
}

TEST(Hashing, GuidNeverZero) {
  EXPECT_NE(computeFunctionGuid(""), 0u);
  EXPECT_NE(computeFunctionGuid("a"), 0u);
}

TEST(Hashing, CombineOrderSensitive) {
  uint64_t A = hashCombine(hashCombine(0, 1), 2);
  uint64_t B = hashCombine(hashCombine(0, 2), 1);
  EXPECT_NE(A, B);
}

TEST(Random, Reproducible) {
  Rng R1(42), R2(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(R1.next(), R2.next());
}

TEST(Random, DifferentSeedsDiffer) {
  Rng R1(1), R2(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += R1.next() == R2.next();
  EXPECT_LT(Same, 4);
}

TEST(Random, BelowRespectsBound) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
}

TEST(Random, RangeInclusive) {
  Rng R(9);
  std::set<int64_t> Seen;
  for (int I = 0; I != 200; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Random, DoubleInUnitInterval) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, BoolProbabilityExtremes) {
  Rng R(13);
  for (int I = 0; I != 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(Random, BoolProbabilityRoughlyCorrect) {
  Rng R(17);
  int Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += R.nextBool(0.3);
  EXPECT_NEAR(Hits / 10000.0, 0.3, 0.03);
}

TEST(Random, PickWeightedSkew) {
  Rng R(19);
  std::vector<double> W = {1.0, 9.0};
  int Second = 0;
  for (int I = 0; I != 10000; ++I)
    Second += R.pickWeighted(W) == 1;
  EXPECT_NEAR(Second / 10000.0, 0.9, 0.03);
}

TEST(Random, PickWeightedIgnoresNegativeAndZero) {
  Rng R(23);
  std::vector<double> W = {0.0, -5.0, 2.0};
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(R.pickWeighted(W), 2u);
}

TEST(SourceText, Percent) {
  EXPECT_EQ(formatSignedPercent(3.417), "+3.42%");
  EXPECT_EQ(formatSignedPercent(-1.0), "-1.00%");
  EXPECT_EQ(formatPercent(12.34), "12.3%");
}

TEST(SourceText, Bytes) {
  EXPECT_EQ(formatBytes(100), "100 B");
  EXPECT_EQ(formatBytes(2048), "2.0 KiB");
  EXPECT_EQ(formatBytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(SourceText, Pad) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

TEST(SourceText, Split) {
  auto P = splitString("a:b::c", ':');
  ASSERT_EQ(P.size(), 4u);
  EXPECT_EQ(P[0], "a");
  EXPECT_EQ(P[2], "");
  EXPECT_EQ(P[3], "c");
}

TEST(SourceText, TableRenders) {
  TextTable T({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22"});
  std::string S = T.render();
  EXPECT_NE(S.find("alpha"), std::string::npos);
  EXPECT_NE(S.find("-----"), std::string::npos);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool Pool(3);
  EXPECT_EQ(Pool.concurrency(), 3u);
  std::atomic<int> Counter{0};
  std::vector<std::future<void>> Futures;
  for (int I = 0; I != 32; ++I)
    Futures.push_back(Pool.async([&Counter] { ++Counter; }));
  for (auto &F : Futures)
    F.get();
  EXPECT_EQ(Counter.load(), 32);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(100);
  Pool.parallelFor(Hits.size(), [&Hits](size_t I) { ++Hits[I]; });
  for (const auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPool, TaskExceptionsPropagateToCaller) {
  ThreadPool Pool(2);
  EXPECT_THROW(
      Pool.parallelFor(4,
                       [](size_t I) {
                         if (I == 2)
                           throw std::runtime_error("shard failed");
                       }),
      std::runtime_error);
  // The pool stays usable after a failed batch.
  std::atomic<int> Counter{0};
  Pool.parallelFor(8, [&Counter](size_t) { ++Counter; });
  EXPECT_EQ(Counter.load(), 8);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> Counter{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I != 16; ++I)
      Pool.async([&Counter] { ++Counter; });
  } // Destructor joins after draining.
  EXPECT_EQ(Counter.load(), 16);
}

TEST(ThreadPool, DefaultConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
}

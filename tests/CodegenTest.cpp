//===- tests/CodegenTest.cpp - lowering/linking tests -----------*- C++ -*-===//

#include "codegen/DebugInfo.h"
#include "codegen/Linker.h"
#include "codegen/Lowering.h"
#include "codegen/ProbeMetadata.h"
#include "opt/Inliner.h"
#include "probe/ProbeInserter.h"
#include "sim/InstrRuntime.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace csspgo;
using namespace csspgo::testing;

TEST(Codegen, ProbesEmitNoMachineCode) {
  auto M1 = makeCallerModule(5);
  auto M2 = makeCallerModule(5);
  insertProbes(*M2, AnchorKind::PseudoProbe);
  auto B1 = compileToBinary(*M1);
  auto B2 = compileToBinary(*M2);
  EXPECT_EQ(B1->Code.size(), B2->Code.size());
  EXPECT_EQ(B1->textSize(), B2->textSize());
  EXPECT_TRUE(B1->Probes.empty());
  EXPECT_FALSE(B2->Probes.empty());
}

TEST(Codegen, CountersEmitMachineCode) {
  auto M1 = makeCallerModule(5);
  auto M2 = makeCallerModule(5);
  insertProbes(*M2, AnchorKind::InstrCounter);
  auto B1 = compileToBinary(*M1);
  auto B2 = compileToBinary(*M2);
  EXPECT_GT(B2->Code.size(), B1->Code.size());
  EXPECT_GT(B2->textSize(), B1->textSize());
  EXPECT_EQ(B2->NumCounters, 8u); // 4 blocks per function x 2 functions.
}

TEST(Codegen, AddressesMonotonicAndAligned) {
  auto M = makeCallerModule(5);
  auto Bin = compileToBinary(*M);
  uint64_t Prev = 0;
  for (const MInst &I : Bin->Code) {
    EXPECT_GE(I.Addr, Prev);
    Prev = I.Addr + I.Size;
  }
  for (const MachineFunction &F : Bin->Funcs)
    EXPECT_EQ(Bin->Code[F.HotBegin].Addr % 16, 0u)
        << "function " << F.Name << " not aligned";
}

TEST(Codegen, BranchTargetsResolved) {
  auto M = makeCallerModule(5);
  auto Bin = compileToBinary(*M);
  for (const MInst &I : Bin->Code) {
    if (I.Op == Opcode::Br || I.Op == Opcode::CondBr) {
      ASSERT_GE(I.Target, 0);
      ASSERT_LT(static_cast<size_t>(I.Target), Bin->Code.size());
    }
    if (I.Op == Opcode::Call)
      ASSERT_LT(I.CalleeIdx, Bin->Funcs.size());
  }
}

TEST(Codegen, FallthroughElidesBranches) {
  // A straight-line chain of blocks should produce zero Br instructions.
  Module M("m");
  Function *F = M.createFunction("f", 0);
  Builder B(F);
  BasicBlock *B1 = F->createBlock("a");
  BasicBlock *B2 = F->createBlock("b");
  BasicBlock *B3 = F->createBlock("c");
  B.setInsertBlock(B1);
  B.emitConst(1);
  B.emitBr(B2);
  B.setInsertBlock(B2);
  B.emitConst(2);
  B.emitBr(B3);
  B.setInsertBlock(B3);
  B.emitRet(Operand::imm(0));
  M.EntryFunction = "f";

  auto Bin = compileToBinary(M);
  for (const MInst &I : Bin->Code)
    EXPECT_NE(I.Op, Opcode::Br);
}

TEST(Codegen, CondBrInvertsWhenTakenTargetIsNext) {
  // condbr c, next, far  =>  inverted branch to far, fallthrough to next.
  Module M("m");
  Function *F = M.createFunction("f", 1);
  Builder B(F);
  BasicBlock *Entry = F->createBlock("e");
  BasicBlock *Next = F->createBlock("n");
  BasicBlock *Far = F->createBlock("f");
  B.setInsertBlock(Entry);
  B.emitCondBr(Operand::reg(0), Next, Far);
  B.setInsertBlock(Next);
  B.emitRet(Operand::imm(1));
  B.setInsertBlock(Far);
  B.emitRet(Operand::imm(2));
  M.EntryFunction = "f";

  auto Bin = compileToBinary(M);
  ASSERT_EQ(Bin->Code[0].Op, Opcode::CondBr);
  EXPECT_TRUE(Bin->Code[0].InvertCond);

  // Semantics preserved under both conditions.
  std::vector<int64_t> Mem(16, 0);
  // Entry has one param; execute by poking the argument through a wrapper
  // is overkill — check both paths via direct frame semantics instead:
  // reg0 = 0 initially -> cond false -> inverted => taken -> Far -> 2.
  auto R = execute(*Bin, "f", Mem, {});
  EXPECT_EQ(R.ExitValue, 2);
}

TEST(Codegen, ColdBlocksPlacedAfterAllHotCode) {
  auto M = makeCallerModule(5);
  // Mark leaf's 'else' block cold.
  Function *Leaf = M->getFunction("leaf");
  Leaf->Blocks[2]->IsColdSection = true;
  auto Bin = compileToBinary(*M);
  const MachineFunction &MF = Bin->Funcs[Bin->funcIndexByName("leaf")];
  EXPECT_GT(MF.ColdEnd, MF.ColdBegin);
  // Cold code of leaf sits after the hot code of every function.
  for (const MachineFunction &Other : Bin->Funcs)
    EXPECT_GE(MF.ColdBegin, Other.HotEnd);
  // Execution still correct.
  std::vector<int64_t> Mem(16, 0);
  auto R = execute(*Bin, "main", Mem, {});
  ASSERT_TRUE(R.Completed);
}

TEST(Codegen, SymbolizeLeafFrame) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  auto Bin = compileToBinary(*M);
  uint32_t LeafIdx = Bin->funcIndexByName("leaf");
  const MachineFunction &MF = Bin->Funcs[LeafIdx];
  auto Frames = Bin->symbolize(MF.HotBegin);
  ASSERT_EQ(Frames.size(), 1u);
  EXPECT_EQ(Frames[0].Guid, MF.Guid);
}

TEST(Codegen, ProbeRecordsCoverAllBlocksAndCalls) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  auto Bin = compileToBinary(*M);
  size_t BlockProbes = 0, CallProbes = 0;
  for (const ProbeRecord &P : Bin->Probes) {
    EXPECT_LT(P.InstIdx, Bin->Code.size());
    P.IsCallProbe ? ++CallProbes : ++BlockProbes;
  }
  EXPECT_EQ(BlockProbes, 8u); // 4 blocks x 2 functions.
  EXPECT_EQ(CallProbes, 1u);  // One call site in main.
}

TEST(Codegen, IndexOfAddrRoundTrip) {
  auto M = makeCallerModule(5);
  auto Bin = compileToBinary(*M);
  for (size_t I = 0; I != Bin->Code.size(); ++I)
    EXPECT_EQ(Bin->indexOfAddr(Bin->Code[I].Addr), I);
  EXPECT_EQ(Bin->indexOfAddr(1), SIZE_MAX);
}

TEST(Codegen, DebugInfoSizeNonTrivial) {
  auto M = makeCallerModule(5);
  auto Bin = compileToBinary(*M);
  DebugInfoStats S = computeDebugInfoStats(*Bin);
  EXPECT_GT(S.LineTableRows, 0u);
  EXPECT_GT(S.SizeBytes, 0u);
}

TEST(Codegen, ProbeMetadataSizeScalesWithProbes) {
  auto MSmall = makeCallerModule(5);
  insertProbes(*MSmall, AnchorKind::PseudoProbe);
  auto BinSmall = compileToBinary(*MSmall);

  auto MBig = makeCallerModule(5);
  for (int I = 0; I != 8; ++I)
    addBranchyFunction(*MBig, "extra" + std::to_string(I));
  insertProbes(*MBig, AnchorKind::PseudoProbe);
  auto BinBig = compileToBinary(*MBig);

  auto SSmall = computeProbeMetadataStats(*BinSmall);
  auto SBig = computeProbeMetadataStats(*BinBig);
  EXPECT_GT(SBig.SizeBytes, SSmall.SizeBytes);
  EXPECT_EQ(SSmall.FunctionDescriptors, 2u);
  EXPECT_EQ(SBig.FunctionDescriptors, 10u);
}

TEST(Codegen, ProfileGuidedFunctionOrdering) {
  // Hot functions are placed before cold ones in the linked image.
  auto M = makeCallerModule(5);
  for (auto &BB : M->getFunction("leaf")->Blocks)
    BB->setCount(10000);
  for (auto &BB : M->getFunction("main")->Blocks)
    BB->setCount(10);
  auto Bin = compileToBinary(*M);
  uint32_t LeafIdx = Bin->funcIndexByName("leaf");
  uint32_t MainIdx = Bin->funcIndexByName("main");
  EXPECT_LT(Bin->Funcs[LeafIdx].HotBegin, Bin->Funcs[MainIdx].HotBegin)
      << "hotter function must come first";
  // Calls still resolve after the permutation.
  std::vector<int64_t> Mem(64, 0);
  auto R = execute(*Bin, "main", Mem, {});
  ASSERT_TRUE(R.Completed);
}

TEST(Codegen, FullyColdFunctionEntryInColdSection) {
  auto M = makeCallerModule(5);
  Function *Leaf = M->getFunction("leaf");
  for (auto &BB : Leaf->Blocks) {
    BB->setCount(0);
    BB->IsColdSection = true;
  }
  for (auto &BB : M->getFunction("main")->Blocks)
    BB->setCount(5);
  auto Bin = compileToBinary(*M);
  const MachineFunction &MF = Bin->Funcs[Bin->funcIndexByName("leaf")];
  EXPECT_EQ(MF.HotBegin, MF.HotEnd) << "no hot code";
  EXPECT_EQ(MF.EntryIdx, MF.ColdBegin);
  std::vector<int64_t> Mem(64, 0);
  auto R = execute(*Bin, "main", Mem, {});
  ASSERT_TRUE(R.Completed);
  EXPECT_NE(R.ExitValue, 0);
}

TEST(Codegen, CounterOwnersSurviveInlining) {
  // A counter cloned into another function still increments its origin's
  // counter range (the correlation invariant of instrumentation PGO).
  auto M = makeCallerModule(10);
  insertProbes(*M, AnchorKind::InstrCounter);
  Function *Main = M->getFunction("main");
  Function *Leaf = M->getFunction("leaf");
  for (auto &BB : Main->Blocks)
    for (size_t I = 0; I != BB->Insts.size(); ++I)
      if (BB->Insts[I].isCall() && BB->Insts[I].Callee == "leaf") {
        ASSERT_TRUE(inlineCallSite(*Main, BB.get(), I, *Leaf).Success);
        goto inlined;
      }
inlined:
  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(64, 0);
  auto R = execute(*Bin, "main", Mem, {});
  ASSERT_TRUE(R.Completed);
  CounterDump Dump = dumpCounters(*Bin, R);
  ASSERT_TRUE(Dump.Functions.count("leaf"));
  // Leaf's entry counter fired once per iteration through the inlined
  // copy AND the out-of-line copy combined.
  EXPECT_EQ(Dump.Functions["leaf"][1], 10u);
}

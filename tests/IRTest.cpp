//===- tests/IRTest.cpp - IR library tests ----------------------*- C++ -*-===//

#include "ir/Builder.h"
#include "ir/CFG.h"
#include "ir/Checksum.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Hashing.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace csspgo;
using namespace csspgo::testing;

TEST(IR, FunctionGuidStable) {
  Module M("m");
  Function *F = M.createFunction("foo", 2);
  EXPECT_EQ(F->getGuid(), computeFunctionGuid("foo"));
  EXPECT_EQ(M.getFunctionByGuid(F->getGuid()), F);
}

TEST(IR, BuilderAssignsIncreasingLines) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  uint32_t Prev = 0;
  for (auto &BB : F->Blocks)
    for (auto &I : BB->Insts) {
      EXPECT_GT(I.DL.Line, Prev);
      Prev = I.DL.Line;
    }
}

TEST(IR, SuccessorsAndPredecessors) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  BasicBlock *Entry = F->Blocks[0].get();
  BasicBlock *Then = F->Blocks[1].get();
  BasicBlock *Else = F->Blocks[2].get();
  BasicBlock *Join = F->Blocks[3].get();

  auto Succs = Entry->successors();
  ASSERT_EQ(Succs.size(), 2u);
  EXPECT_EQ(Succs[0], Then);
  EXPECT_EQ(Succs[1], Else);

  auto Preds = computePredecessors(*F);
  ASSERT_EQ(Preds[Join].size(), 2u);
  EXPECT_EQ(Preds[Entry].size(), 0u);
}

TEST(IR, ReplaceSuccessor) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  BasicBlock *Entry = F->Blocks[0].get();
  BasicBlock *Else = F->Blocks[2].get();
  BasicBlock *Join = F->Blocks[3].get();
  Entry->replaceSuccessor(Else, Join);
  EXPECT_EQ(Entry->successors()[1], Join);
}

TEST(IR, VerifierAcceptsWellFormed) {
  auto M = makeCallerModule(10);
  EXPECT_TRUE(verifyModule(*M).empty());
}

TEST(IR, VerifierCatchesMissingTerminator) {
  Module M("m");
  Function *F = M.createFunction("f", 0);
  BasicBlock *B = F->createBlock("entry");
  Builder Bld(F);
  Bld.setInsertBlock(B);
  Bld.emitConst(1); // No terminator.
  EXPECT_FALSE(verifyFunction(*F).empty());
}

TEST(IR, VerifierCatchesUnknownCallee) {
  Module M("m");
  Function *F = M.createFunction("f", 0);
  Builder Bld(F);
  BasicBlock *B = F->createBlock("entry");
  Bld.setInsertBlock(B);
  Bld.emitCall("nonexistent", {});
  Bld.emitRet(Operand::imm(0));
  EXPECT_FALSE(verifyFunction(*F).empty());
}

TEST(IR, VerifierCatchesDanglingSuccessor) {
  Module M("m");
  Function *F = M.createFunction("f", 0);
  Function *G = M.createFunction("g", 0);
  BasicBlock *GB = G->createBlock("entry");
  Builder BldG(G);
  BldG.setInsertBlock(GB);
  BldG.emitRet(Operand::imm(0));

  Builder Bld(F);
  BasicBlock *B = F->createBlock("entry");
  Bld.setInsertBlock(B);
  Bld.emitBr(GB); // Branch into another function.
  EXPECT_FALSE(verifyFunction(*F).empty());
}

TEST(IR, ReversePostOrderStartsAtEntry) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  auto RPO = reversePostOrder(*F);
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), F->getEntry());
  EXPECT_EQ(RPO.back()->getLabel(), F->Blocks[3]->getLabel());
}

TEST(IR, DominatorsOfDiamond) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  auto Dom = computeDominators(*F);
  BasicBlock *Entry = F->Blocks[0].get();
  BasicBlock *Then = F->Blocks[1].get();
  BasicBlock *Join = F->Blocks[3].get();
  EXPECT_TRUE(Dom[Join].count(Entry));
  EXPECT_FALSE(Dom[Join].count(Then));
  EXPECT_TRUE(Dom[Then].count(Entry));
}

TEST(IR, FindLoopsDetectsNaturalLoop) {
  Module M("m");
  Function *F = addLoopFunction(M, "f");
  auto Loops = findLoops(*F);
  ASSERT_EQ(Loops.size(), 1u);
  EXPECT_EQ(Loops[0].Header->getLabel(), F->Blocks[1]->getLabel());
  EXPECT_EQ(Loops[0].Blocks.size(), 2u); // header + body
  ASSERT_EQ(Loops[0].Latches.size(), 1u);
}

TEST(IR, RemoveUnreachableBlocks) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  BasicBlock *Dead = F->createBlock("dead");
  Builder Bld(F);
  Bld.setInsertBlock(Dead);
  Bld.emitRet(Operand::imm(0));
  EXPECT_EQ(F->Blocks.size(), 5u);
  EXPECT_TRUE(removeUnreachableBlocks(*F));
  EXPECT_EQ(F->Blocks.size(), 4u);
  EXPECT_FALSE(removeUnreachableBlocks(*F));
}

TEST(IR, CloneIsDeepAndEquivalent) {
  auto M = makeCallerModule(5);
  M->getFunction("leaf")->Blocks[0]->setCount(123);
  auto C = M->clone();
  EXPECT_TRUE(verifyModule(*C).empty());
  EXPECT_EQ(C->Functions.size(), M->Functions.size());
  EXPECT_EQ(C->getFunction("leaf")->Blocks[0]->Count, 123u);
  // Mutating the clone must not affect the original.
  C->getFunction("leaf")->Blocks[0]->setCount(7);
  EXPECT_EQ(M->getFunction("leaf")->Blocks[0]->Count, 123u);
  // Successor pointers must point into the clone.
  BasicBlock *CloneEntry = C->getFunction("leaf")->getEntry();
  for (BasicBlock *S : CloneEntry->successors()) {
    bool Owned = false;
    for (auto &BB : C->getFunction("leaf")->Blocks)
      Owned |= BB.get() == S;
    EXPECT_TRUE(Owned);
  }
}

TEST(IR, ChecksumInsensitiveToLineChanges) {
  Module M1("m"), M2("m");
  Function *F1 = addBranchyFunction(M1, "f");
  Function *F2 = addBranchyFunction(M2, "f");
  // Shift every line in F2 (simulates adding a comment above the code).
  for (auto &BB : F2->Blocks)
    for (auto &I : BB->Insts)
      I.DL.Line += 3;
  EXPECT_EQ(computeCFGChecksum(*F1), computeCFGChecksum(*F2));
}

TEST(IR, ChecksumSensitiveToCFGChanges) {
  Module M1("m"), M2("m");
  Function *F1 = addBranchyFunction(M1, "f");
  Function *F2 = addLoopFunction(M2, "f");
  EXPECT_NE(computeCFGChecksum(*F1), computeCFGChecksum(*F2));
}

TEST(IR, PrinterOutputsLabelsAndOpcodes) {
  auto M = makeCallerModule(3);
  std::string S = printModule(*M);
  EXPECT_NE(S.find("func main"), std::string::npos);
  EXPECT_NE(S.find("call leaf"), std::string::npos);
  EXPECT_NE(S.find("condbr"), std::string::npos);
  EXPECT_NE(S.find("ret"), std::string::npos);
}

TEST(IR, InstructionIdenticalIgnoresDebugLoc) {
  Instruction A, B;
  A.Op = B.Op = Opcode::Add;
  A.Dst = B.Dst = 3;
  A.A = B.A = Operand::reg(1);
  A.B = B.B = Operand::imm(5);
  A.DL.Line = 10;
  B.DL.Line = 99;
  EXPECT_TRUE(A.isIdenticalTo(B));
}

TEST(IR, ProbesCompareByIdentity) {
  Instruction A, B;
  A.Op = B.Op = Opcode::PseudoProbe;
  A.ProbeId = 1;
  B.ProbeId = 2;
  A.OriginGuid = B.OriginGuid = 42;
  EXPECT_FALSE(A.isIdenticalTo(B));
  B.ProbeId = 1;
  EXPECT_TRUE(A.isIdenticalTo(B));
}

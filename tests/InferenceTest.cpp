//===- tests/InferenceTest.cpp - profile inference tests --------*- C++ -*-===//

#include "inference/MinCostFlow.h"
#include "inference/ProfileInference.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace csspgo;
using namespace csspgo::testing;

TEST(MinCostFlow, FindsRewardingCirculation) {
  // Triangle a->b->c->a with one rewarded edge of capacity 10.
  MinCostFlowSolver S;
  int A = S.addNode(), B = S.addNode(), C = S.addNode();
  int Rewarded = S.addEdge(A, B, 10, -5);
  S.addEdge(B, C, 100, 1);
  S.addEdge(C, A, 100, 1);
  S.solve();
  EXPECT_EQ(S.flowOn(Rewarded), 10);
}

TEST(MinCostFlow, NoNegativeCycleNoFlow) {
  MinCostFlowSolver S;
  int A = S.addNode(), B = S.addNode();
  int E1 = S.addEdge(A, B, 10, 1);
  int E2 = S.addEdge(B, A, 10, 1);
  S.solve();
  EXPECT_EQ(S.flowOn(E1), 0);
  EXPECT_EQ(S.flowOn(E2), 0);
}

TEST(MinCostFlow, PicksCheaperOfTwoPaths) {
  // a->b reward; two return paths b->a with costs 1 and 3.
  MinCostFlowSolver S;
  int A = S.addNode(), B = S.addNode();
  S.addEdge(A, B, 10, -10);
  int Cheap = S.addEdge(B, A, 6, 1);
  int Pricey = S.addEdge(B, A, 10, 3);
  S.solve();
  EXPECT_EQ(S.flowOn(Cheap), 6);
  EXPECT_EQ(S.flowOn(Pricey), 4);
}

TEST(Inference, MakesDiamondConsistent) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  // Inconsistent raw counts: entry 100, arms 60+70 (=130), join 90.
  F->Blocks[0]->setCount(100);
  F->Blocks[1]->setCount(60);
  F->Blocks[2]->setCount(70);
  F->Blocks[3]->setCount(90);
  inferFunctionProfile(*F);
  EXPECT_TRUE(isProfileConsistent(*F, 1));
  // Total arm flow equals entry flow.
  EXPECT_EQ(F->Blocks[1]->Count + F->Blocks[2]->Count, F->Blocks[0]->Count);
  EXPECT_EQ(F->Blocks[3]->Count, F->Blocks[0]->Count);
}

TEST(Inference, DerivesEdgeWeights) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  F->Blocks[0]->setCount(100);
  F->Blocks[1]->setCount(90);
  F->Blocks[2]->setCount(10);
  F->Blocks[3]->setCount(100);
  inferFunctionProfile(*F);
  ASSERT_EQ(F->Blocks[0]->SuccWeights.size(), 2u);
  EXPECT_GT(F->Blocks[0]->SuccWeights[0], F->Blocks[0]->SuccWeights[1]);
}

TEST(Inference, LoopFlowsConserve) {
  Module M("m");
  Function *F = addLoopFunction(M, "f");
  F->Blocks[0]->setCount(10);   // entry
  F->Blocks[1]->setCount(1000); // header
  F->Blocks[2]->setCount(985);  // body (noisy)
  F->Blocks[3]->setCount(10);   // exit
  inferFunctionProfile(*F);
  EXPECT_TRUE(isProfileConsistent(*F, 1));
  // Header = entry + body backedge.
  EXPECT_EQ(F->Blocks[1]->Count,
            F->Blocks[0]->Count + F->Blocks[2]->Count);
}

TEST(Inference, ZeroProfileIsNoop) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  inferFunctionProfile(*F);
  EXPECT_FALSE(F->Blocks[0]->HasCount);
}

TEST(Inference, UnmeasuredBlocksReceiveFlow) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  F->Blocks[0]->setCount(100);
  F->Blocks[1]->setCount(100); // then
  // else and join unmeasured.
  inferFunctionProfile(*F);
  EXPECT_TRUE(isProfileConsistent(*F, 1));
  EXPECT_EQ(F->Blocks[3]->Count, 100u) << "join must carry the flow";
}

TEST(Inference, LargeFunctionFallbackStaysSane) {
  // >150 blocks triggers localSmooth; flows should still be plausible.
  Module M("m");
  Function *F = M.createFunction("big", 0);
  Builder B(F);
  std::vector<BasicBlock *> Chain;
  for (int I = 0; I != 200; ++I)
    Chain.push_back(F->createBlock("c"));
  for (int I = 0; I != 200; ++I) {
    B.setInsertBlock(Chain[I]);
    B.emitConst(I);
    if (I + 1 < 200)
      B.emitBr(Chain[I + 1]);
    else
      B.emitRet(Operand::imm(0));
    Chain[I]->setCount(I % 7 == 0 ? 90 : 100);
  }
  inferFunctionProfile(*F);
  for (int I = 0; I != 200; ++I)
    EXPECT_GE(Chain[I]->Count, 90u);
}

//===- tests/PostLinkTest.cpp - post-link optimizer tests -------*- C++ -*-===//
//
// The post-link subsystem's contract, in three rings: (1) disassembly is
// lossless — reassemble(identityLayout) reproduces every workload binary
// field for field; (2) rewritten layouts still verify and compute the
// same results; (3) malformed binaries are rejected with a clean error,
// never a crash (the fuzz harness leans on exactly this).
//
//===----------------------------------------------------------------------===//

#include "postlink/PostLinkOptimizer.h"

#include "pgo/PGODriver.h"
#include "pgo/ProfilePipeline.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include "TestHelpers.h"

using namespace csspgo;
using namespace csspgo::postlink;

namespace {

/// Asserts the disassemble -> reassemble identity round trip on \p Bin.
void expectRoundTripIdentity(const Binary &Bin, const std::string &What) {
  Expected<BinaryCFG> CFG = reconstructBinaryCFG(Bin);
  ASSERT_TRUE(CFG.hasValue()) << What << ": " << CFG.status().message();
  std::unique_ptr<Binary> Out = reassemble(*CFG, identityLayout(*CFG));
  std::string Why;
  EXPECT_TRUE(binariesIdentical(Bin, *Out, &Why)) << What << ": " << Why;
}

ExperimentConfig smallExperiment(const char *Name = "AdRanker") {
  ExperimentConfig Config;
  Config.Workload = workloadPreset(Name, 0.15);
  Config.EvalRuns = 2;
  return Config;
}

int64_t runBinary(const Binary &Bin, uint64_t MemWords = 4096) {
  std::vector<int64_t> Memory(MemWords, 0);
  RunResult R = execute(Bin, "main", Memory, {});
  EXPECT_TRUE(R.Completed) << R.Error;
  return R.ExitValue;
}

} // namespace

//===----------------------------------------------------------------------===//
// Ring 1: lossless disassembly.
//===----------------------------------------------------------------------===//

TEST(PostLinkIdentity, SmallCallerModuleRoundTrips) {
  auto M = csspgo::testing::makeCallerModule(50);
  expectRoundTripIdentity(*compileToBinary(*M), "caller module");
}

TEST(PostLinkIdentity, EveryWorkloadBinaryRoundTrips) {
  // The acceptance property: identity holds for every workload binary,
  // plain and probe-anchored (the probed encodings carry the probe
  // records reassembly must reproduce byte for byte).
  std::vector<std::string> Names = serverWorkloadNames();
  Names.push_back("ClangProxy");
  for (const std::string &Name : Names) {
    auto Source = generateProgram(workloadPreset(Name, 0.1));
    for (PGOVariant V : {PGOVariant::None, PGOVariant::CSSPGOFull}) {
      BuildConfig BC;
      BC.Variant = V;
      BuildResult Build = buildWithPGO(*Source, BC, nullptr);
      expectRoundTripIdentity(*Build.Bin,
                              Name + "/" + std::string(variantName(V)));
    }
  }
}

TEST(PostLinkIdentity, ReconstructedCFGCoversEveryInstruction) {
  auto M = csspgo::testing::makeCallerModule(20);
  auto Bin = compileToBinary(*M);
  Expected<BinaryCFG> CFG = reconstructBinaryCFG(*Bin);
  ASSERT_TRUE(CFG.hasValue()) << CFG.status().message();
  ASSERT_EQ(CFG->BlockOfInst.size(), Bin->Code.size());
  for (size_t I = 0; I != Bin->Code.size(); ++I) {
    ASSERT_NE(CFG->BlockOfInst[I], UINT32_MAX) << "instruction " << I;
    const BBlock &B = CFG->blockOf(I);
    EXPECT_GE(I, B.Begin);
    EXPECT_LT(I, B.End);
    EXPECT_TRUE(Bin->Funcs[B.Func].containsIdx(I));
  }
  // Blocks partition the code: sizes sum to the text size.
  uint64_t Bytes = 0;
  for (const BBlock &B : CFG->Blocks)
    Bytes += B.SizeBytes;
  EXPECT_EQ(Bytes, Bin->textSize());
}

//===----------------------------------------------------------------------===//
// Ring 2: rewritten layouts stay valid and semantics-preserving.
//===----------------------------------------------------------------------===//

TEST(PostLinkRewrite, ReversedHotBlocksPreserveSemantics) {
  // Adversarial re-layout: reverse every function's non-entry hot blocks.
  // Reassembly must repair all displaced fallthroughs; the result must
  // still validate and compute the same exit value.
  auto M = csspgo::testing::makeCallerModule(100);
  auto Bin = compileToBinary(*M);
  int64_t Want = runBinary(*Bin);

  Expected<BinaryCFG> CFG = reconstructBinaryCFG(*Bin);
  ASSERT_TRUE(CFG.hasValue());
  LayoutPlan Plan = identityLayout(*CFG);
  for (FuncLayout &FL : Plan.Funcs)
    if (FL.NumHot > 2)
      std::reverse(FL.Blocks.begin() + 1, FL.Blocks.begin() + FL.NumHot);

  ReassembleStats RS;
  std::unique_ptr<Binary> Out = reassemble(*CFG, Plan, &RS);
  EXPECT_GT(RS.BranchesFlipped + RS.BranchesSynthesized, 0u)
      << "reversal must displace at least one fallthrough";
  Expected<BinaryCFG> OutCFG = reconstructBinaryCFG(*Out);
  ASSERT_TRUE(OutCFG.hasValue())
      << "rewritten binary fails validation: " << OutCFG.status().message();
  EXPECT_EQ(runBinary(*Out), Want);
}

TEST(PostLinkRewrite, FoldDropsDuplicateBodies) {
  // Two byte-identical leaf functions; folding keeps one body and
  // redirects the second call sites to it.
  auto M = std::make_unique<Module>("icf");
  csspgo::testing::addBranchyFunction(*M, "leaf");
  csspgo::testing::addBranchyFunction(*M, "leaf2");
  Function *Main = M->createFunction("main", 0);
  Builder B(Main);
  BasicBlock *Entry = Main->createBlock("entry");
  B.setInsertBlock(Entry);
  RegId A = B.emitCall("leaf", {Operand::imm(3)});
  RegId C = B.emitCall("leaf2", {Operand::imm(30)});
  RegId Sum = B.emitBinary(Opcode::Add, Operand::reg(A), Operand::reg(C));
  B.emitRet(Operand::reg(Sum));
  M->EntryFunction = "main";

  auto Bin = compileToBinary(*M);
  int64_t Want = runBinary(*Bin);

  PostLinkOptions Opts;
  Opts.Reorder = false;
  Opts.Split = false;
  Expected<PostLinkResult> R = runPostLink(*Bin, {}, nullptr, nullptr, Opts);
  ASSERT_TRUE(R.hasValue()) << R.status().message();
  EXPECT_EQ(R->Stats.FuncsFolded, 1u);
  EXPECT_LT(R->Stats.TextBytesAfter, R->Stats.TextBytesBefore);
  EXPECT_EQ(runBinary(*R->Bin), Want);
  expectRoundTripIdentity(*R->Bin, "folded binary");
}

TEST(PostLinkRewrite, SplitMovesNeverExecutedBlocks) {
  // main has a guarded error path that never executes; splitting must
  // move it out of the hot section without touching results.
  auto M = std::make_unique<Module>("split");
  Function *Main = M->createFunction("main", 0);
  Builder B(Main);
  BasicBlock *Entry = Main->createBlock("entry");
  BasicBlock *Error = Main->createBlock("error");
  BasicBlock *Work = Main->createBlock("work");
  BasicBlock *Done = Main->createBlock("done");

  B.setInsertBlock(Entry);
  RegId Zero = B.emitConst(0);
  B.emitCondBr(Operand::reg(Zero), Error, Work);
  B.setInsertBlock(Error); // Never reached.
  RegId E1 = B.emitBinary(Opcode::Mul, Operand::imm(9), Operand::imm(9));
  RegId E2 = B.emitBinary(Opcode::Add, Operand::reg(E1), Operand::imm(1));
  (void)E2;
  B.emitBr(Done);
  B.setInsertBlock(Work);
  RegId W = B.emitBinary(Opcode::Add, Operand::imm(20), Operand::imm(22));
  B.emitBr(Done);
  B.setInsertBlock(Done);
  B.emitRet(Operand::reg(W));
  M->EntryFunction = "main";

  auto Bin = compileToBinary(*M);
  // Sample a run so the splitter sees real counts.
  ExecConfig Exec;
  Exec.Sampler.Enabled = true;
  Exec.Sampler.PeriodCycles = 3;
  std::vector<int64_t> Memory(1024, 0);
  RunResult Train = execute(*Bin, "main", Memory, Exec);
  ASSERT_TRUE(Train.Completed);

  PostLinkOptions Opts;
  Opts.Reorder = false;
  Opts.Fold = false;
  // The program runs once, so main's few mapped counts sit below the
  // default sampling-confidence gate; drop it to exercise the mechanism.
  Opts.SplitMinFuncCount = 1;
  Expected<PostLinkResult> R =
      runPostLink(*Bin, Train.Samples, nullptr, nullptr, Opts);
  ASSERT_TRUE(R.hasValue()) << R.status().message();
  EXPECT_GE(R->Stats.BlocksSplit, 1u);
  EXPECT_EQ(R->Stats.FuncsSplit, 1u);
  EXPECT_EQ(runBinary(*R->Bin), Train.ExitValue);
  // The split region lands behind the original hot text: the function
  // gained a cold section.
  const Binary &Out = *R->Bin;
  uint32_t MainIdx = Out.funcIndexByName("main");
  ASSERT_NE(MainIdx, ~0u);
  EXPECT_GT(Out.Funcs[MainIdx].ColdEnd, Out.Funcs[MainIdx].ColdBegin);
  expectRoundTripIdentity(Out, "split binary");
}

TEST(PostLinkRewrite, StackedOnPGOPreservesSemantics) {
  PGODriver Driver(smallExperiment());
  PostLinkOutcome Out = Driver.runPostLink(PGOVariant::CSSPGOFull);
  EXPECT_EQ(Out.ExitValue, Out.Base.ExitValue)
      << "post-link rewrite changed program semantics";
  // The samples were collected on exactly the binary being rewritten, so
  // nearly every LBR endpoint must resolve.
  EXPECT_GT(Out.Stats.Map.MappedSampleRate, 0.95);
  EXPECT_FALSE(Out.Stats.TransformsGated);
  EXPECT_GT(Out.EvalCyclesMean, 0.0);
}

TEST(PostLinkRewrite, BoltOnlyOnPlainBinaryPreservesSemantics) {
  PGODriver Driver(smallExperiment("HHVM"));
  PostLinkOutcome Out = Driver.runPostLink(PGOVariant::None);
  EXPECT_EQ(Out.ExitValue, Out.Base.ExitValue);
  EXPECT_GT(Out.Stats.Map.MappedSampleRate, 0.95);
  // A plain binary leaves plenty on the table for layout transforms.
  EXPECT_GT(Out.Stats.FuncsReordered + Out.Stats.FuncsSplit, 0u);
}

TEST(PostLinkRewrite, LowMappedRateGatesLayoutTransforms) {
  // Samples from a *different* binary: endpoints don't resolve, the
  // mapped rate collapses, and reorder/split must stand down.
  auto M1 = csspgo::testing::makeCallerModule(80);
  auto M2 = csspgo::testing::makeCallerModule(200);
  auto Bin1 = compileToBinary(*M1);
  auto Bin2 = compileToBinary(*M2);

  ExecConfig Exec;
  Exec.Sampler.Enabled = true;
  Exec.Sampler.PeriodCycles = 7;
  std::vector<int64_t> Memory(1024, 0);
  RunResult Foreign = execute(*Bin2, "main", Memory, Exec);
  ASSERT_FALSE(Foreign.Samples.empty());

  // Shift every sampled address out of Bin1's text so nothing resolves.
  for (PerfSample &S : Foreign.Samples)
    for (LBREntry &E : S.LBR) {
      E.Src += 1;
      E.Dst += 1;
    }

  int64_t Want = runBinary(*Bin1);
  Expected<PostLinkResult> R = runPostLink(*Bin1, Foreign.Samples);
  ASSERT_TRUE(R.hasValue()) << R.status().message();
  EXPECT_LT(R->Stats.Map.MappedSampleRate, 0.5);
  EXPECT_TRUE(R->Stats.TransformsGated);
  EXPECT_EQ(R->Stats.FuncsReordered, 0u);
  EXPECT_EQ(R->Stats.BlocksSplit, 0u);
  EXPECT_EQ(runBinary(*R->Bin), Want);
}

TEST(PostLinkRewrite, StaleProbeProfileRoutesThroughMatcher) {
  // A probe profile whose checksum disagrees with the IR is stale; the
  // mapper must route it through the anchor matcher instead of using or
  // silently dropping it.
  auto Source = csspgo::testing::makeCallerModule(60);
  BuildConfig BC;
  BC.Variant = PGOVariant::CSSPGOProbeOnly;
  // Keep the leaf call out-of-line: the matcher aligns on call anchors,
  // and a fully inlined main would have none.
  BC.Inline.SizeThreshold = 0;
  BC.Inline.HotSizeThreshold = 0;
  BC.Inline.ColdSizeThreshold = 0;
  BuildResult Build = buildWithPGO(*Source, BC, nullptr);

  ExecConfig Exec;
  Exec.Sampler.Enabled = true;
  Exec.Sampler.PeriodCycles = 11;
  std::vector<int64_t> Memory(1024, 0);
  RunResult Train = execute(*Build.Bin, "main", Memory, Exec);

  PipelineOptions PO;
  PO.Kind = ProfGenKind::ProbeOnly;
  ProfilePipeline Pipe(PO);
  Expected<ProfileBundle> Bundle =
      Pipe.generate(*Build.Bin, &Build.ProbeDescs, Train.Samples);
  ASSERT_TRUE(Bundle.hasValue()) << Bundle.status().message();
  FlatProfile Flat = Bundle->Flat;
  ASSERT_FALSE(Flat.Functions.empty());
  for (auto &[Name, FP] : Flat.Functions)
    FP.Checksum ^= 0xDEADBEEF; // Simulate a CFG-drifted profile.

  Expected<BinaryCFG> CFG = reconstructBinaryCFG(*Build.Bin);
  ASSERT_TRUE(CFG.hasValue());
  // No LBR samples: every function takes the probe-count path.
  BinaryProfile Prof =
      mapProfileToBinary(*CFG, {}, &Flat, Build.IR.get());
  EXPECT_GT(Prof.Stats.StaleProfiles, 0u);
  EXPECT_EQ(Prof.Stats.StaleProfiles,
            Prof.Stats.StaleRecovered + Prof.Stats.StaleDropped);
  // Only the checksum lied — the anchors still align, so the matcher
  // recovers the counts instead of dropping them.
  EXPECT_GT(Prof.Stats.StaleRecovered, 0u);

  // With matcher routing off, the same profiles are dropped.
  ProfileMapOptions NoMatch;
  NoMatch.MatchStale = false;
  BinaryProfile Dropped =
      mapProfileToBinary(*CFG, {}, &Flat, Build.IR.get(), NoMatch);
  EXPECT_EQ(Dropped.Stats.StaleRecovered, 0u);
  EXPECT_EQ(Dropped.Stats.StaleDropped, Dropped.Stats.StaleProfiles);
}

//===----------------------------------------------------------------------===//
// Ring 3: malformed binaries are rejected, not crashed on.
//===----------------------------------------------------------------------===//

namespace {

/// Expects reconstruction of \p Bin to fail with a clean diagnostic.
void expectRejected(const Binary &Bin, const std::string &What) {
  Expected<BinaryCFG> CFG = reconstructBinaryCFG(Bin);
  EXPECT_FALSE(CFG.hasValue()) << What << ": accepted a malformed binary";
  if (!CFG) {
    EXPECT_FALSE(CFG.status().message().empty()) << What;
  }
}

} // namespace

TEST(PostLinkValidation, MutatedBinariesRejectCleanly) {
  auto M = csspgo::testing::makeCallerModule(10);
  auto Good = compileToBinary(*M);
  ASSERT_TRUE(reconstructBinaryCFG(*Good).hasValue());

  size_t BrIdx = SIZE_MAX;
  for (size_t I = 0; I != Good->Code.size(); ++I)
    if (Good->Code[I].Op == Opcode::Br) {
      BrIdx = I;
      break;
    }
  ASSERT_NE(BrIdx, SIZE_MAX);

  {
    Binary Bad = *Good; // Branch target outside the code stream.
    Bad.Code[BrIdx].Target = static_cast<int64_t>(Bad.Code.size()) + 7;
    expectRejected(Bad, "wild branch target");
  }
  {
    Binary Bad = *Good; // Branch target escaping its function.
    Bad.Code[BrIdx].Target = static_cast<int64_t>(Bad.Code.size()) - 1;
    expectRejected(Bad, "cross-function branch target");
  }
  {
    Binary Bad = *Good; // Encoded size disagreeing with the opcode.
    Bad.Code[0].Size += 1;
    expectRejected(Bad, "wrong encoding size");
  }
  {
    Binary Bad = *Good; // Corrupt address table.
    Bad.Code[Bad.Code.size() / 2].Addr ^= 0x40;
    expectRejected(Bad, "corrupt address");
  }
  {
    Binary Bad = *Good; // Invalid opcode byte.
    Bad.Code[0].Op = static_cast<Opcode>(0xEE);
    expectRejected(Bad, "invalid opcode");
  }
  {
    Binary Bad = *Good; // Overlapping section ranges.
    Bad.Funcs[0].HotEnd += 1;
    expectRejected(Bad, "overlapping sections");
  }
  {
    Binary Bad = *Good; // Probe pointing outside its function.
    if (!Bad.Probes.empty()) {
      Bad.Probes[0].InstIdx = Bad.Code.size() + 3;
      expectRejected(Bad, "detached probe");
    }
  }
  {
    Binary Bad = *Good; // Non-branch carrying a branch target.
    for (MInst &MI : Bad.Code)
      if (MI.Op == Opcode::Ret) {
        MI.Target = 0;
        break;
      }
    expectRejected(Bad, "target on a non-branch");
  }
}

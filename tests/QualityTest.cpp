//===- tests/QualityTest.cpp - block overlap metric tests -------*- C++ -*-===//

#include "quality/BlockOverlap.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace csspgo;
using namespace csspgo::testing;

TEST(Overlap, IdenticalDistributionsGiveOne) {
  EXPECT_DOUBLE_EQ(blockOverlapDegree({10, 20, 30}, {10, 20, 30}), 1.0);
  // Scale invariance: the metric compares distributions.
  EXPECT_DOUBLE_EQ(blockOverlapDegree({1, 2, 3}, {100, 200, 300}), 1.0);
}

TEST(Overlap, DisjointDistributionsGiveZero) {
  EXPECT_DOUBLE_EQ(blockOverlapDegree({10, 0}, {0, 10}), 0.0);
}

TEST(Overlap, PartialOverlapInBetween) {
  double D = blockOverlapDegree({50, 50}, {100, 0});
  EXPECT_NEAR(D, 0.5, 1e-9);
}

TEST(Overlap, AllZeroCountsCountAsPerfect) {
  EXPECT_DOUBLE_EQ(blockOverlapDegree({0, 0}, {0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(blockOverlapDegree({0, 0}, {1, 1}), 0.0);
}

TEST(Overlap, ProgramAggregationWeightsByMeasuredShare) {
  auto M1 = makeCallerModule(5);
  auto M2 = makeCallerModule(5);
  // Function 'leaf': perfect agreement with big weight; 'main': disjoint
  // with tiny weight. Program overlap should be close to 1.
  for (auto *M : {M1.get(), M2.get()})
    for (auto &F : M->Functions)
      for (auto &BB : F->Blocks)
        BB->setCount(0);
  Function *L1 = M1->getFunction("leaf"), *L2 = M2->getFunction("leaf");
  for (size_t B = 0; B != L1->Blocks.size(); ++B) {
    L1->Blocks[B]->setCount(1000);
    L2->Blocks[B]->setCount(1000);
  }
  Function *Ma1 = M1->getFunction("main"), *Ma2 = M2->getFunction("main");
  Ma1->Blocks[0]->setCount(1);
  Ma2->Blocks[1]->setCount(1);

  OverlapReport R = computeBlockOverlap(*M1, *M2);
  EXPECT_EQ(R.FunctionsCompared, 2u);
  EXPECT_GT(R.ProgramOverlap, 0.99);
}

TEST(Overlap, MismatchedShapesSkipped) {
  auto M1 = makeCallerModule(5);
  auto M2 = makeCallerModule(5);
  M1->getFunction("leaf")->Blocks[0]->setCount(5);
  M2->getFunction("leaf")->Blocks[0]->setCount(5);
  // Remove a block from M2's main: shape mismatch -> skipped.
  Function *Ma2 = M2->getFunction("main");
  Ma2->Blocks[1]->setCount(0);
  while (Ma2->Blocks.size() > 1) {
    // Rewire and drop last block (keep it verifiable enough for the test).
    Ma2->Blocks.pop_back();
    break;
  }
  OverlapReport R = computeBlockOverlap(*M1, *M2);
  EXPECT_EQ(R.FunctionsCompared, 1u);
}

TEST(Overlap, OneSidedZeroDistributionGivesZero) {
  // Exactly one side all-zero: the distributions share no mass, so the
  // overlap is 0, symmetrically.
  EXPECT_DOUBLE_EQ(blockOverlapDegree({1, 1}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(blockOverlapDegree({0, 0}, {1, 1}), 0.0);
}

TEST(OverlapDeathTest, MismatchedLengthsAreFatal) {
  // Comparing count vectors over different block sets is a usage error in
  // every build mode, not just under asserts.
  EXPECT_DEATH(blockOverlapDegree({1, 2}, {1, 2, 3}),
               "mismatched block sets");
}

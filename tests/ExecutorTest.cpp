//===- tests/ExecutorTest.cpp - simulator tests -----------------*- C++ -*-===//

#include "ir/GuestArith.h"
#include "probe/ProbeInserter.h"
#include "sim/Executor.h"
#include "sim/InstrRuntime.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace csspgo;
using namespace csspgo::testing;

TEST(Executor, LoopComputesSum) {
  Module M("m");
  addLoopFunction(M, "looper");
  // Wrapper entry that calls looper(100).
  Function *Main = M.createFunction("main", 0);
  Builder B(Main);
  BasicBlock *E = Main->createBlock("entry");
  B.setInsertBlock(E);
  RegId R = B.emitCall("looper", {Operand::imm(100)});
  B.emitRet(Operand::reg(R));
  M.EntryFunction = "main";

  auto Result = compileAndRun(M);
  ASSERT_TRUE(Result.Completed) << Result.Error;
  EXPECT_EQ(Result.ExitValue, 4950); // sum 0..99
}

TEST(Executor, BranchSemantics) {
  auto M = makeCallerModule(20);
  auto Result = compileAndRun(*M);
  ASSERT_TRUE(Result.Completed);
  // leaf(i) = i<10 ? i+1 : i*2; sum over i=0..19
  int64_t Expect = 0;
  for (int64_t I = 0; I != 20; ++I)
    Expect += I < 10 ? I + 1 : I * 2;
  EXPECT_EQ(Result.ExitValue, Expect);
}

TEST(Executor, MemoryLoadStore) {
  Module M("m");
  Function *F = M.createFunction("main", 0);
  Builder B(F);
  BasicBlock *E = F->createBlock("entry");
  B.setInsertBlock(E);
  B.emitStore(Operand::imm(5), Operand::imm(1234));
  RegId L = B.emitLoad(Operand::imm(5));
  B.emitRet(Operand::reg(L));
  M.EntryFunction = "main";
  auto Result = compileAndRun(M);
  EXPECT_EQ(Result.ExitValue, 1234);
}

TEST(Executor, MemoryWrapsNegativeAddresses) {
  Module M("m");
  Function *F = M.createFunction("main", 0);
  Builder B(F);
  BasicBlock *E = F->createBlock("entry");
  B.setInsertBlock(E);
  B.emitStore(Operand::imm(-1), Operand::imm(7));
  RegId L = B.emitLoad(Operand::imm(-1));
  B.emitRet(Operand::reg(L));
  M.EntryFunction = "main";
  auto Result = compileAndRun(M);
  EXPECT_EQ(Result.ExitValue, 7);
}

TEST(Executor, DivisionByZeroIsTotal) {
  Module M("m");
  Function *F = M.createFunction("main", 0);
  Builder B(F);
  BasicBlock *E = F->createBlock("entry");
  B.setInsertBlock(E);
  RegId D = B.emitBinary(Opcode::Div, Operand::imm(10), Operand::imm(0));
  RegId R = B.emitBinary(Opcode::Mod, Operand::reg(D), Operand::imm(0));
  B.emitRet(Operand::reg(R));
  M.EntryFunction = "main";
  auto Result = compileAndRun(M);
  ASSERT_TRUE(Result.Completed);
  EXPECT_EQ(Result.ExitValue, 0);
}

TEST(Executor, CyclesAndCountsAccumulate) {
  auto M = makeCallerModule(100);
  auto Result = compileAndRun(*M);
  EXPECT_GT(Result.Cycles, Result.Instructions);
  EXPECT_GT(Result.TakenBranches, 100u); // Calls + loop backedges.
  EXPECT_GT(Result.Calls, 99u);
}

TEST(Executor, DeterministicAcrossRuns) {
  auto M = makeCallerModule(50);
  auto R1 = compileAndRun(*M);
  auto R2 = compileAndRun(*M);
  EXPECT_EQ(R1.Cycles, R2.Cycles);
  EXPECT_EQ(R1.Instructions, R2.Instructions);
  EXPECT_EQ(R1.ExitValue, R2.ExitValue);
}

TEST(Executor, SamplingProducesSamples) {
  auto M = makeCallerModule(3000);
  ExecConfig Config;
  Config.Sampler.Enabled = true;
  Config.Sampler.PeriodCycles = 501;
  auto Result = compileAndRun(*M, Config);
  ASSERT_TRUE(Result.Completed);
  EXPECT_GT(Result.Samples.size(), 20u);
  for (const PerfSample &S : Result.Samples) {
    EXPECT_FALSE(S.Stack.empty());
    EXPECT_LE(S.LBR.size(), 16u);
  }
}

TEST(Executor, SamplingDoesNotPerturbExecution) {
  auto M = makeCallerModule(500);
  ExecConfig Plain;
  ExecConfig Sampled;
  Sampled.Sampler.Enabled = true;
  Sampled.Sampler.PeriodCycles = 101;
  auto R1 = compileAndRun(*M, Plain);
  auto R2 = compileAndRun(*M, Sampled);
  EXPECT_EQ(R1.Cycles, R2.Cycles);
  EXPECT_EQ(R1.ExitValue, R2.ExitValue);
}

TEST(Executor, LBRRecordsTakenBranchesOnly) {
  auto M = makeCallerModule(2000);
  ExecConfig Config;
  Config.Sampler.Enabled = true;
  Config.Sampler.PeriodCycles = 997;
  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(4096, 0);
  auto Result = execute(*Bin, "main", Mem, Config);
  for (const PerfSample &S : Result.Samples) {
    for (const LBREntry &E : S.LBR) {
      size_t SrcIdx = Bin->indexOfAddr(E.Src);
      size_t DstIdx = Bin->indexOfAddr(E.Dst);
      ASSERT_NE(SrcIdx, SIZE_MAX);
      ASSERT_NE(DstIdx, SIZE_MAX);
      Opcode Op = Bin->Code[SrcIdx].Op;
      EXPECT_TRUE(Op == Opcode::Br || Op == Opcode::CondBr ||
                  Op == Opcode::Call || Op == Opcode::Ret)
          << "LBR source must be a branch";
    }
  }
}

TEST(Executor, StackSampleLeafMatchesExecution) {
  auto M = makeCallerModule(2000);
  ExecConfig Config;
  Config.Sampler.Enabled = true;
  Config.Sampler.PeriodCycles = 701;
  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(4096, 0);
  auto Result = execute(*Bin, "main", Mem, Config);
  ASSERT_FALSE(Result.Samples.empty());
  for (const PerfSample &S : Result.Samples) {
    // Leaf-most stack entry is a valid PC; outer entries are return sites.
    EXPECT_NE(Bin->indexOfAddr(S.Stack[0]), SIZE_MAX);
    // Outermost frame is main (its return site list ends there).
    uint32_t LeafFunc = Bin->funcIndexOf(Bin->indexOfAddr(S.Stack[0]));
    ASSERT_NE(LeafFunc, ~0u);
  }
}

TEST(Executor, InstrCountersMatchExactExecution) {
  auto M = makeCallerModule(100);
  insertProbes(*M, AnchorKind::InstrCounter);
  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(4096, 0);
  auto Result = execute(*Bin, "main", Mem, {});
  ASSERT_TRUE(Result.Completed);

  CounterDump Dump = dumpCounters(*Bin, Result);
  ASSERT_TRUE(Dump.Functions.count("leaf"));
  const auto &Leaf = Dump.Functions["leaf"];
  // Counter 1 = entry block: executed once per call = 100.
  EXPECT_EQ(Leaf[1], 100u);
  // Then (i<10) 10 times; else 90 times; join 100.
  EXPECT_EQ(Leaf[2], 10u);
  EXPECT_EQ(Leaf[3], 90u);
  EXPECT_EQ(Leaf[4], 100u);
}

TEST(Executor, CounterDumpMerge) {
  CounterDump A, B;
  A.Functions["f"] = {0, 10, 20};
  B.Functions["f"] = {0, 1, 2};
  B.Functions["g"] = {0, 5};
  mergeCounterDumps(A, B);
  EXPECT_EQ(A.Functions["f"][1], 11u);
  EXPECT_EQ(A.Functions["g"][1], 5u);
}

TEST(Executor, CounterDumpMergeSaturatesInsteadOfWrapping) {
  // Regression: the merge used Dst += Src and long-running aggregation
  // could wrap counters past UINT64_MAX into tiny values. It now clamps
  // through the shared saturatingAccum and reports how many slots did.
  CounterDump A, B;
  A.Functions["f"] = {0, UINT64_MAX - 1, 10};
  B.Functions["f"] = {0, 5, 7};
  uint64_t Saturated = mergeCounterDumps(A, B);
  EXPECT_EQ(Saturated, 1u);
  EXPECT_EQ(A.Functions["f"][1], UINT64_MAX);
  EXPECT_EQ(A.Functions["f"][2], 17u);
  // A second merge into an already-clamped slot stays clamped.
  EXPECT_EQ(mergeCounterDumps(A, B), 1u);
  EXPECT_EQ(A.Functions["f"][1], UINT64_MAX);
}

TEST(Executor, ZeroSkidSamplingDeliversImmediately) {
  // Regression: MaxSkidInstructions = 0 with imprecise sampling fed
  // Rng::nextBelow(0) — division by zero in the skid draw. Zero skid now
  // means "deliver at the triggering instruction", i.e. the sample stream
  // matches precise mode's exactly.
  auto M = makeCallerModule(2000);
  ExecConfig Zero;
  Zero.Sampler.Enabled = true;
  Zero.Sampler.PeriodCycles = 97;
  Zero.Sampler.Precise = false;
  Zero.Sampler.MaxSkidInstructions = 0;
  RunResult R = compileAndRun(*M, Zero);
  ASSERT_TRUE(R.Completed) << R.Error;
  ASSERT_FALSE(R.Samples.empty());
  for (const PerfSample &S : R.Samples)
    EXPECT_FALSE(S.Stack.empty());

  ExecConfig Precise = Zero;
  Precise.Sampler.Precise = true;
  RunResult P = compileAndRun(*M, Precise);
  ASSERT_EQ(P.Samples.size(), R.Samples.size());
  for (size_t I = 0; I != P.Samples.size(); ++I) {
    EXPECT_EQ(P.Samples[I].Stack, R.Samples[I].Stack);
    ASSERT_EQ(P.Samples[I].LBR.size(), R.Samples[I].LBR.size());
    for (size_t J = 0; J != P.Samples[I].LBR.size(); ++J) {
      EXPECT_EQ(P.Samples[I].LBR[J].Src, R.Samples[I].LBR[J].Src);
      EXPECT_EQ(P.Samples[I].LBR[J].Dst, R.Samples[I].LBR[J].Dst);
    }
  }
}

TEST(Executor, TailCallRemovesFrameFromStack) {
  // main -> outer -> (tail) inner: stack samples inside inner must not
  // contain outer's return site.
  Module M("m");
  Function *Inner = M.createFunction("inner", 1);
  {
    Builder B(Inner);
    BasicBlock *E = Inner->createBlock("entry");
    BasicBlock *H = Inner->createBlock("header");
    BasicBlock *Body = Inner->createBlock("body");
    BasicBlock *X = Inner->createBlock("exit");
    B.setInsertBlock(E);
    RegId I = B.emitConst(0);
    B.emitBr(H);
    B.setInsertBlock(H);
    RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(I), Operand::imm(5000));
    B.emitCondBr(Operand::reg(C), Body, X);
    B.setInsertBlock(Body);
    B.emitBinary(Opcode::Add, Operand::reg(I), Operand::imm(1));
    Body->Insts.back().Dst = I;
    B.emitBr(H);
    B.setInsertBlock(X);
    B.emitRet(Operand::reg(I));
  }
  Function *Outer = M.createFunction("outer", 1);
  {
    Builder B(Outer);
    BasicBlock *E = Outer->createBlock("entry");
    B.setInsertBlock(E);
    RegId R = B.emitCall("inner", {Operand::reg(0)}, /*IsTail=*/true);
    B.emitRet(Operand::reg(R));
  }
  Function *Main = M.createFunction("main", 0);
  {
    Builder B(Main);
    BasicBlock *E = Main->createBlock("entry");
    B.setInsertBlock(E);
    RegId R = B.emitCall("outer", {Operand::imm(1)});
    B.emitRet(Operand::reg(R));
  }
  M.EntryFunction = "main";
  verifyOrDie(M, "tail call test");

  ExecConfig Config;
  Config.Sampler.Enabled = true;
  Config.Sampler.PeriodCycles = 97;
  auto Bin = compileToBinary(M);
  std::vector<int64_t> Mem(64, 0);
  auto Result = execute(*Bin, "main", Mem, Config);
  ASSERT_TRUE(Result.Completed);
  EXPECT_EQ(Result.ExitValue, 5000);

  uint32_t InnerIdx = Bin->funcIndexByName("inner");
  uint32_t OuterIdx = Bin->funcIndexByName("outer");
  bool SawInnerSample = false;
  for (const PerfSample &S : Result.Samples) {
    size_t LeafIdx = Bin->indexOfAddr(S.Stack[0]);
    if (Bin->funcIndexOf(LeafIdx) != InnerIdx)
      continue;
    SawInnerSample = true;
    // The frame below inner must be main, not outer (outer's frame was
    // eliminated by the tail call).
    ASSERT_GE(S.Stack.size(), 2u);
    size_t RetIdx = Bin->indexOfAddr(S.Stack[1]);
    EXPECT_NE(Bin->funcIndexOf(RetIdx), OuterIdx);
  }
  EXPECT_TRUE(SawInnerSample);
}

TEST(Executor, SkidDelaysStackCapture) {
  auto M = makeCallerModule(3000);
  ExecConfig Config;
  Config.Sampler.Enabled = true;
  Config.Sampler.PeriodCycles = 401;
  Config.Sampler.Precise = false;
  Config.Sampler.Seed = 5;
  auto Result = compileAndRun(*M, Config);
  ASSERT_TRUE(Result.Completed);
  EXPECT_GT(Result.Samples.size(), 10u);
}

TEST(Executor, ErrorOnUnknownEntry) {
  auto M = makeCallerModule(5);
  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(16, 0);
  auto Result = execute(*Bin, "nope", Mem, {});
  EXPECT_FALSE(Result.Completed);
  EXPECT_FALSE(Result.Error.empty());
}

TEST(Executor, InstructionLimitEnforced) {
  auto M = makeCallerModule(1000000);
  ExecConfig Config;
  Config.MaxInstructions = 1000;
  auto Result = compileAndRun(*M, Config);
  EXPECT_FALSE(Result.Completed);
  EXPECT_NE(Result.Error.find("limit"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Guest integer semantics (ir/GuestArith.h): i64 wraparound, total
// division, masked shifts. Host signed overflow is UB, so both
// interpreters and the constant folder evaluate through these helpers;
// the sanitizer CI job keeps direct signed ops from sneaking back in.
//===----------------------------------------------------------------------===//

TEST(GuestArith, WrapsAndTotalizes) {
  EXPECT_EQ(guestAdd(INT64_MAX, 1), INT64_MIN);
  EXPECT_EQ(guestSub(INT64_MIN, 1), INT64_MAX);
  // The overflow UBSan first caught: a workload accumulator squared.
  EXPECT_EQ(guestMul(688498802174LL, 688498802174LL),
            static_cast<int64_t>(688498802174ULL * 688498802174ULL));
  EXPECT_EQ(guestDiv(7, 0), 0);
  EXPECT_EQ(guestMod(7, 0), 0);
  EXPECT_EQ(guestDiv(10, -1), -10);
  EXPECT_EQ(guestDiv(INT64_MIN, -1), INT64_MIN); // Hardware would trap.
  EXPECT_EQ(guestMod(INT64_MIN, -1), 0);
  EXPECT_EQ(guestShl(1, 64), 1); // Counts masked to 6 bits.
  EXPECT_EQ(guestShl(3, 2), 12);
  EXPECT_EQ(guestShr(-1, 1), INT64_MAX); // Logical, not arithmetic.
}

//===- tests/VerifierTest.cpp - profile verifier tests ----------*- C++ -*-===//
//
// One test per invariant class: a clean database verifies, and planting
// exactly one corruption of each ViolationKind makes the verifier report
// exactly that kind. The probe-metadata kinds need real descriptors, so
// those tests run against a generated probed module; the last section
// checks the end-to-end property that freshly generated profiles (CS,
// probe-only, trimmed CS) verify clean at Full level.
//
//===----------------------------------------------------------------------===//

#include "codegen/Linker.h"
#include "probe/ProbeInserter.h"
#include "probe/ProbeTable.h"
#include "profgen/ProfileGenerator.h"
#include "profile/Trimmer.h"
#include "sim/Executor.h"
#include "verify/ProfileVerifier.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace csspgo;

namespace {

bool hasKind(const VerifyReport &R, ViolationKind K) {
  for (const Violation &V : R.Details)
    if (V.Kind == K)
      return true;
  return false;
}

/// A two-function sampled probe profile whose head/call edges conserve:
/// main calls foo 40 times, and foo's head count is exactly 40.
FlatProfile sampledFlat() {
  FlatProfile P;
  P.Kind = ProfileKind::ProbeBased;
  FunctionProfile &Main = P.getOrCreate("main");
  Main.addBody({1, 0}, 100);
  Main.addBody({2, 0}, 60);
  Main.addCall({2, 0}, "foo", 40);
  FunctionProfile &Foo = P.getOrCreate("foo");
  Foo.HeadSamples = 40;
  Foo.addBody({1, 0}, 40);
  return P;
}

WorkloadConfig smallWC() {
  WorkloadConfig C;
  C.Seed = 9;
  C.Requests = 40;
  C.NumServices = 2;
  C.NumMids = 5;
  C.NumUtils = 4;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Flat-profile invariants (no descriptors needed).
//===----------------------------------------------------------------------===//

TEST(Verifier, CleanSampledDatabaseIsClean) {
  FlatProfile P = sampledFlat();
  VerifyReport R = verifyFlatProfile(P);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.FunctionsChecked, 2u);
  EXPECT_NE(R.str().find("clean"), std::string::npos);
}

TEST(Verifier, OffLevelChecksNothing) {
  FlatProfile P = sampledFlat();
  P.getOrCreate("main").TotalSamples += 5; // Corrupt; Off must not notice.
  VerifierOptions VO;
  VO.Level = VerifyLevel::Off;
  VerifyReport R = verifyFlatProfile(P, VO);
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.FunctionsChecked, 0u);
}

TEST(Verifier, CatchesTotalMismatch) {
  FlatProfile P = sampledFlat();
  P.getOrCreate("main").TotalSamples += 5;
  VerifyReport R = verifyFlatProfile(P);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::TotalMismatch)) << R.str();
}

TEST(Verifier, CatchesHeadEdgeMismatch) {
  FlatProfile P = sampledFlat();
  P.getOrCreate("foo").HeadSamples += 1; // 41 heads vs 40 call targets.
  VerifyReport R = verifyFlatProfile(P);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::HeadEdgeMismatch)) << R.str();
}

TEST(Verifier, CatchesTargetsIntoHeadlessFunction) {
  FlatProfile P = sampledFlat();
  // A call-target record into a function the database has never seen (and
  // thus records no head for) breaks edge conservation too.
  P.getOrCreate("main").addCall({1, 0}, "ghost", 3);
  VerifyReport R = verifyFlatProfile(P);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::HeadEdgeMismatch)) << R.str();
}

TEST(Verifier, SummaryLevelSkipsEdgeConservation) {
  FlatProfile P = sampledFlat();
  P.getOrCreate("foo").HeadSamples += 1;
  VerifierOptions VO;
  VO.Level = VerifyLevel::Summary;
  EXPECT_TRUE(verifyFlatProfile(P, VO).ok());
  // ...but Summary still sees count conservation.
  P.getOrCreate("main").TotalSamples += 5;
  VerifyReport R = verifyFlatProfile(P, VO);
  EXPECT_TRUE(hasKind(R, ViolationKind::TotalMismatch)) << R.str();
}

TEST(Verifier, ExactCountsCatchHeadExceedingTotal) {
  FlatProfile P;
  P.Kind = ProfileKind::LineBased;
  FunctionProfile &F = P.getOrCreate("f");
  F.addBody({1, 0}, 10);
  F.HeadSamples = 20;

  VerifierOptions Exact;
  Exact.ExactCounts = true;
  Exact.CheckHeadEdges = false;
  VerifyReport R = verifyFlatProfile(P, Exact);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::HeadExceedsTotal)) << R.str();

  // Sampled semantics must accept head > total: a cold callee observed
  // only as the newest LBR call branch serializes as "name:0:1".
  VerifierOptions Sampled;
  Sampled.CheckHeadEdges = false;
  EXPECT_TRUE(verifyFlatProfile(P, Sampled).ok());
}

TEST(Verifier, CatchesDiscriminatorOnProbeKey) {
  FlatProfile P;
  P.Kind = ProfileKind::ProbeBased;
  P.getOrCreate("f").addBody({1, 3}, 5);
  VerifierOptions VO;
  VO.CheckHeadEdges = false;
  VerifyReport R = verifyFlatProfile(P, VO);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::DiscOnProbeKey)) << R.str();

  // The same key is perfectly legal on a line-based profile.
  P.Kind = ProfileKind::LineBased;
  EXPECT_TRUE(verifyFlatProfile(P, VO).ok());
}

TEST(Verifier, CatchesNameMismatch) {
  FlatProfile P = sampledFlat();
  P.Functions.at("main").Name = "not_main";
  VerifyReport R = verifyFlatProfile(P);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::NameMismatch)) << R.str();

  FlatProfile Q;
  Q.getOrCreate("g").Name.clear(); // Empty profile name.
  VerifierOptions VO;
  VO.CheckHeadEdges = false;
  EXPECT_TRUE(hasKind(verifyFlatProfile(Q, VO), ViolationKind::NameMismatch));
}

TEST(Verifier, ChecksNestedInlineeProfiles) {
  FlatProfile P = sampledFlat();
  FunctionProfile &Inl =
      P.getOrCreate("main").getOrCreateInlinee({1, 0}, "leaf");
  Inl.addBody({1, 0}, 7);
  Inl.TotalSamples += 2; // Corrupt only the nested profile.
  VerifyReport R = verifyFlatProfile(P);
  EXPECT_FALSE(R.ok());
  ASSERT_TRUE(hasKind(R, ViolationKind::TotalMismatch)) << R.str();
  // The violation anchors to the nested context, not the top level.
  EXPECT_NE(R.Details.front().Where.find("leaf"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Probe-metadata agreement (needs real descriptors).
//===----------------------------------------------------------------------===//

namespace {

/// A probed module plus its descriptor table and main's descriptor.
struct ProbedSetup {
  std::unique_ptr<Module> M;
  ProbeTable PT;
  const ProbeDescriptor *MainDesc;

  ProbedSetup() : M(generateProgram(smallWC())) {
    insertProbes(*M, AnchorKind::PseudoProbe);
    PT = ProbeTable::fromModule(*M);
    MainDesc = PT.findByName("main");
  }

  /// A minimal probe profile for main, consistent with the descriptors.
  FlatProfile cleanProfile() const {
    FlatProfile P;
    P.Kind = ProfileKind::ProbeBased;
    FunctionProfile &F = P.getOrCreate("main");
    F.Guid = MainDesc->Guid;
    F.Checksum = MainDesc->CFGChecksum;
    F.addBody({1, 0}, 10);
    return P;
  }

  VerifierOptions options() const {
    VerifierOptions VO;
    VO.Probes = &PT;
    VO.CheckHeadEdges = false;
    return VO;
  }
};

} // namespace

TEST(VerifierProbes, CleanAgainstDescriptors) {
  ProbedSetup S;
  ASSERT_NE(S.MainDesc, nullptr);
  VerifyReport R = verifyFlatProfile(S.cleanProfile(), S.options());
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(VerifierProbes, CatchesOutOfDomainKey) {
  ProbedSetup S;
  ASSERT_NE(S.MainDesc, nullptr);
  FlatProfile P = S.cleanProfile();
  P.getOrCreate("main").addBody({S.MainDesc->NumProbes + 7, 0}, 1);
  VerifyReport R = verifyFlatProfile(P, S.options());
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::ProbeOutOfDomain)) << R.str();
}

TEST(VerifierProbes, CatchesGuidAndChecksumMismatch) {
  ProbedSetup S;
  ASSERT_NE(S.MainDesc, nullptr);
  FlatProfile P = S.cleanProfile();
  P.getOrCreate("main").Guid += 1;
  EXPECT_TRUE(hasKind(verifyFlatProfile(P, S.options()),
                      ViolationKind::GuidMismatch));

  FlatProfile Q = S.cleanProfile();
  Q.getOrCreate("main").Checksum += 1;
  EXPECT_TRUE(hasKind(verifyFlatProfile(Q, S.options()),
                      ViolationKind::ChecksumMismatch));
}

TEST(VerifierProbes, CatchesMissingDescriptor) {
  ProbedSetup S;
  FlatProfile P = S.cleanProfile();
  P.getOrCreate("no_such_function").addBody({1, 0}, 1);
  VerifyReport R = verifyFlatProfile(P, S.options());
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::NameMismatch)) << R.str();
}

TEST(VerifierProbes, ZeroMetadataSkipsAgreement) {
  // A profile that never persisted Guid/Checksum (both zero) is not in
  // disagreement with the descriptors — the loader handles staleness.
  ProbedSetup S;
  FlatProfile P = S.cleanProfile();
  P.getOrCreate("main").Guid = 0;
  P.getOrCreate("main").Checksum = 0;
  EXPECT_TRUE(verifyFlatProfile(P, S.options()).ok());
}

//===----------------------------------------------------------------------===//
// Context-trie structure.
//===----------------------------------------------------------------------===//

TEST(VerifierTrie, CatchesRootEdgeWithNonzeroSite) {
  ContextProfile CS;
  ContextTrieNode &N = CS.Root.getOrCreateChild(5, "main");
  N.HasProfile = true;
  N.Profile.addBody({1, 0}, 10);
  VerifierOptions VO;
  VO.CheckHeadEdges = false;
  VerifyReport R = verifyContextProfile(CS, VO);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::TrieEdgeMismatch)) << R.str();
}

TEST(VerifierTrie, CatchesEdgeCalleeVsNodeName) {
  ContextProfile CS;
  ContextTrieNode &N = CS.Root.getOrCreateChild(0, "main");
  N.FuncName = "other";
  N.Profile.Name = "other";
  N.HasProfile = true;
  N.Profile.addBody({1, 0}, 10);
  VerifierOptions VO;
  VO.CheckHeadEdges = false;
  VerifyReport R = verifyContextProfile(CS, VO);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::NameMismatch)) << R.str();
}

TEST(VerifierTrie, CatchesGhostCountsWithoutHasProfile) {
  ContextProfile CS;
  ContextTrieNode &N = CS.Root.getOrCreateChild(0, "main");
  N.Profile.addBody({1, 0}, 10); // Counts, but HasProfile stays false.
  VerifierOptions VO;
  VO.CheckHeadEdges = false;
  VerifyReport R = verifyContextProfile(CS, VO);
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::TrieEdgeMismatch)) << R.str();
  EXPECT_EQ(R.ContextsChecked, 0u); // The ghost node holds no profile.
}

TEST(VerifierTrie, CatchesEdgeSiteOutsideParentDomain) {
  ProbedSetup S;
  ASSERT_NE(S.MainDesc, nullptr);
  ContextProfile CS;
  ContextTrieNode &Main = CS.Root.getOrCreateChild(0, "main");
  Main.HasProfile = true;
  Main.Profile.Guid = S.MainDesc->Guid;
  Main.Profile.Checksum = S.MainDesc->CFGChecksum;
  Main.Profile.addBody({1, 0}, 10);
  // Child edge site beyond main's probe domain ("main" as callee keeps
  // the descriptor lookup of the child itself happy).
  Main.getOrCreateChild(S.MainDesc->NumProbes + 9, "main");
  VerifyReport R = verifyContextProfile(CS, S.options());
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(hasKind(R, ViolationKind::ProbeOutOfDomain)) << R.str();
}

//===----------------------------------------------------------------------===//
// End-to-end: freshly generated profiles verify clean at Full level.
//===----------------------------------------------------------------------===//

TEST(VerifierEndToEnd, GeneratedProfilesVerifyClean) {
  WorkloadConfig WC = smallWC();
  auto M = generateProgram(WC);
  insertProbes(*M, AnchorKind::PseudoProbe);
  auto Bin = compileToBinary(*M);
  ProbeTable PT = ProbeTable::fromModule(*M);

  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = 997;
  EC.Sampler.Seed = 9;
  auto Mem = generateInput(WC, 9);
  RunResult Train = execute(*Bin, "main", Mem, EC);
  ASSERT_TRUE(Train.Completed) << Train.Error;
  ASSERT_FALSE(Train.Samples.empty());

  ProfGenOptions GO;
  GO.Verify = VerifyLevel::Full;

  GO.Kind = ProfGenKind::CS;
  ProfileGenerator CSGen(*Bin, &PT, GO);
  ProfGenResult CSRes = CSGen.generate(Train.Samples);
  EXPECT_TRUE(CSRes.Verify.ok()) << CSRes.Verify.str();

  GO.Kind = ProfGenKind::ProbeOnly;
  ProfileGenerator FlatGen(*Bin, &PT, GO);
  ProfGenResult FlatRes = FlatGen.generate(Train.Samples);
  EXPECT_TRUE(FlatRes.Verify.ok()) << FlatRes.Verify.str();

  // Trimming moves counts but never drops one side of an edge, so the
  // trimmed trie still satisfies the full invariant set.
  trimColdContexts(CSRes.CS, 2);
  VerifierOptions VO;
  VO.Probes = &PT;
  VerifyReport Trimmed = verifyContextProfile(CSRes.CS, VO);
  EXPECT_TRUE(Trimmed.ok()) << Trimmed.str();

  // And a single tampered count is caught.
  bool Tampered = false;
  CSRes.CS.forEachNodeMutable(
      [&](const SampleContext &, ContextTrieNode &N) {
        if (!Tampered && N.Profile.TotalSamples) {
          N.Profile.TotalSamples += 1;
          Tampered = true;
        }
      });
  ASSERT_TRUE(Tampered);
  VerifyReport Bad = verifyContextProfile(CSRes.CS, VO);
  EXPECT_FALSE(Bad.ok());
  EXPECT_TRUE(hasKind(Bad, ViolationKind::TotalMismatch)) << Bad.str();
}

//===- tests/TrainTest.cpp - release-train simulator tests ------*- C++ -*-===//
//
// Property suite for the longitudinal release-train simulator
// (train/ReleaseTrain.h): fixed-seed determinism, serial-vs-sharded
// bit-identity, the matcher's per-release dominance over the drop
// policy, store freshness, and resumability from a mid-train store
// snapshot.
//
//===----------------------------------------------------------------------===//

#include "train/ReleaseTrain.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

using namespace csspgo;
using namespace csspgo::train;

namespace {

/// Small enough for the full train to run in test time, big enough for
/// the drift editors and matcher to have something to chew on.
TrainConfig tinyTrain(unsigned Releases = 3) {
  TrainConfig TC;
  WorkloadConfig &W = TC.Exp.Workload;
  W.Name = "TrainTiny";
  W.Seed = 3;
  W.Requests = 60;
  W.NumServices = 3;
  W.NumMids = 8;
  W.NumUtils = 5;
  W.NumColdHandlers = 3;
  W.MidsPerService = 4;
  TC.Exp.EvalRuns = 2;
  TC.Releases = Releases;
  return TC;
}

} // namespace

TEST(Train, PolicyNamesRoundTrip) {
  for (StalePolicy P :
       {StalePolicy::Drop, StalePolicy::Match, StalePolicy::Ingest}) {
    StalePolicy Out;
    ASSERT_TRUE(parsePolicy(policyName(P), Out)) << policyName(P);
    EXPECT_EQ(Out, P);
  }
  StalePolicy Out;
  EXPECT_FALSE(parsePolicy("bogus", Out));
  EXPECT_FALSE(parsePolicy("Drop", Out)) << "names are exact";
}

TEST(Train, ReleaseConfigDriftsInputsNotWorkload) {
  TrainConfig TC = tinyTrain();
  ExperimentConfig R1 = releaseConfig(TC, 1);
  ExperimentConfig R3 = releaseConfig(TC, 3);
  EXPECT_EQ(R1.TrainSeed, TC.Exp.TrainSeed + 1);
  EXPECT_EQ(R3.TrainSeed, TC.Exp.TrainSeed + 3);
  EXPECT_EQ(R3.EvalSeedBase, TC.Exp.EvalSeedBase + 300);
  EXPECT_EQ(R1.Workload.Seed, R3.Workload.Seed)
      << "the program evolves via drift plans, not reseeding";
}

TEST(Train, FixedSeedTrajectoriesAreBitIdentical) {
  TrainConfig TC = tinyTrain();
  TrainResult A = runTrain(TC);
  TrainResult B = runTrain(TC);
  EXPECT_EQ(A.toJSON(), B.toJSON());
  ASSERT_EQ(A.StoreSnapshots.size(), B.StoreSnapshots.size());
  for (size_t I = 0; I != A.StoreSnapshots.size(); ++I)
    EXPECT_EQ(A.StoreSnapshots[I], B.StoreSnapshots[I]) << "snapshot " << I;
}

TEST(Train, ShardedRunIsBitIdenticalToSerial) {
  TrainConfig Serial = tinyTrain();
  TrainConfig Sharded = tinyTrain();
  Sharded.Jobs = 3;
  EXPECT_EQ(runTrain(Serial).toJSON(), runTrain(Sharded).toJSON());
}

TEST(Train, MatcherDominatesDropOnEveryRelease) {
  TrainConfig TC = tinyTrain();
  TrainResult R = runTrain(TC);
  ASSERT_EQ(R.Rows.size(), TC.Releases);
  EXPECT_TRUE(R.allClean());
  for (const ReleaseRow &Row : R.Rows) {
    const PolicyCell *Drop = R.cell(Row, StalePolicy::Drop);
    const PolicyCell *Match = R.cell(Row, StalePolicy::Match);
    const PolicyCell *Ingest = R.cell(Row, StalePolicy::Ingest);
    ASSERT_NE(Drop, nullptr);
    ASSERT_NE(Match, nullptr);
    ASSERT_NE(Ingest, nullptr);
    // Every release's drift stales profiles; drop discards them while
    // the matcher recovers.
    EXPECT_GT(Drop->StaleDropped, 0u) << "release " << Row.Release;
    EXPECT_GT(Match->StaleMatched, 0u) << "release " << Row.Release;
    EXPECT_GT(Match->CountsRecovered, 0u) << "release " << Row.Release;
    // Ground-truth-weighted overlap: the annotation the matcher
    // recovers is strictly closer to the oracle's than what survives
    // dropping, on every single release.
    EXPECT_GT(Match->Overlap, Drop->Overlap) << "release " << Row.Release;
    EXPECT_GE(Ingest->Overlap, Drop->Overlap) << "release " << Row.Release;
    // Full pre-load verification and semantics preservation are row
    // invariants, not just aggregates.
    for (const PolicyCell &C : Row.Cells) {
      EXPECT_TRUE(C.VerifyClean)
          << "release " << Row.Release << " " << policyName(C.Policy);
      EXPECT_TRUE(C.ExitMatch)
          << "release " << Row.Release << " " << policyName(C.Policy);
    }
  }
}

TEST(Train, StoreFreshnessTracksTheTrain) {
  TrainConfig TC = tinyTrain();
  TrainResult R = runTrain(TC);
  ASSERT_EQ(R.StoreSnapshots.size(), TC.Releases + 1u);
  for (const ReleaseRow &Row : R.Rows) {
    // Release r's ingest cell consumed the store holding epochs
    // 0..r-1, whose newest timestamp is release r-1's.
    EXPECT_EQ(Row.StoreEpochs, Row.Release);
    EXPECT_EQ(Row.StoreTimestamp, 100ull * Row.Release);
    EXPECT_TRUE(Row.IngestFoldClean) << "release " << Row.Release;
  }
}

TEST(Train, ResumesFromMidTrainSnapshot) {
  TrainConfig Full = tinyTrain(3);
  TrainResult All = runTrain(Full);
  ASSERT_EQ(All.Rows.size(), 3u);

  TrainConfig Tail = Full;
  Tail.FirstRelease = 2;
  Tail.InitialStore = All.StoreSnapshots[1];
  TrainResult Resumed = runTrain(Tail);
  ASSERT_EQ(Resumed.Rows.size(), 2u);

  // The resumed rows must be bit-identical to the full run's tail —
  // compare through the same serialization the CLI emits.
  TrainResult TailOfFull;
  TailOfFull.Rows.assign(All.Rows.begin() + 1, All.Rows.end());
  EXPECT_EQ(Resumed.toJSON(), TailOfFull.toJSON());
  // And the stores converge: folding the resumed releases on top of
  // the snapshot reproduces the full run's final store.
  EXPECT_EQ(Resumed.StoreSnapshots.back(), All.StoreSnapshots.back());
}

TEST(Train, SinglePolicyTrainsAndJSONShapeIsStable) {
  TrainConfig TC = tinyTrain(2);
  TC.Policies = {StalePolicy::Match};
  TrainResult R = runTrain(TC);
  ASSERT_EQ(R.Rows.size(), 2u);
  EXPECT_EQ(R.cell(R.Rows[0], StalePolicy::Drop), nullptr);
  ASSERT_NE(R.cell(R.Rows[0], StalePolicy::Match), nullptr);
  std::string J = R.toJSON();
  // Stable shape: fixed key order, the aggregate block only naming the
  // policies that ran.
  EXPECT_EQ(J.rfind("{\n  \"rows\": [", 0), 0u) << J.substr(0, 16);
  EXPECT_NE(J.find("\"release\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"policy\": \"match\""), std::string::npos);
  EXPECT_EQ(J.find("\"policy\": \"drop\""), std::string::npos);
  EXPECT_NE(J.find("\"aggregate\": {\"match\": "), std::string::npos);
  EXPECT_EQ(J.find("\"drop\":"), std::string::npos);
}

TEST(Train, PostLinkColumnReportsAndPreservesSemantics) {
  TrainConfig TC = tinyTrain(2);
  TC.PostLink = true;
  TrainResult R = runTrain(TC);
  for (const ReleaseRow &Row : R.Rows) {
    EXPECT_TRUE(Row.HasPostLink);
    EXPECT_GT(Row.PostLinkCycles, 0.0);
    EXPECT_TRUE(Row.PostLinkExitMatch) << "release " << Row.Release;
  }
  EXPECT_NE(R.toJSON().find("\"postlink\": {"), std::string::npos);
}

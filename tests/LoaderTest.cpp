//===- tests/LoaderTest.cpp - profile loader tests --------------*- C++ -*-===//

#include "loader/Correlators.h"
#include "loader/ProfileLoader.h"
#include "probe/ProbeInserter.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace csspgo;
using namespace csspgo::testing;

namespace {

std::vector<BasicBlock *> blocksOf(Function &F) {
  std::vector<BasicBlock *> Out;
  for (auto &BB : F.Blocks)
    Out.push_back(BB.get());
  return Out;
}

} // namespace

TEST(Correlators, LineAnnotationTakesMax) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  FunctionProfile P;
  P.Name = "f";
  // Entry has lines 1-2 (const + cmp): give them different counts.
  P.addBody({1, 0}, 40);
  P.addBody({2, 0}, 100);
  annotateBlocksByLines(blocksOf(*F), P, F->getGuid());
  EXPECT_EQ(F->Blocks[0]->Count, 100u) << "max across the block's lines";
  EXPECT_EQ(F->Blocks[3]->Count, 0u);
  EXPECT_TRUE(F->Blocks[3]->HasCount);
}

TEST(Correlators, AnchorAnnotationUsesBlockProbe) {
  Module M("m");
  Function *F = addBranchyFunction(M, "f");
  insertProbes(M, AnchorKind::PseudoProbe);
  FunctionProfile P;
  P.Name = "f";
  P.addBody({1, 0}, 55); // entry probe
  P.addBody({3, 0}, 11); // else probe
  annotateBlocksByAnchors(blocksOf(*F), P, F->getGuid());
  EXPECT_EQ(F->Blocks[0]->Count, 55u);
  EXPECT_EQ(F->Blocks[1]->Count, 0u);
  EXPECT_EQ(F->Blocks[2]->Count, 11u);
}

TEST(Correlators, CallSiteKeyDependsOnKind) {
  Instruction Call;
  Call.Op = Opcode::Call;
  Call.DL.Line = 17;
  Call.ProbeId = 4;
  EXPECT_EQ(callSiteKey(Call, ProfileKind::LineBased).Index, 17u);
  EXPECT_EQ(callSiteKey(Call, ProfileKind::ProbeBased).Index, 4u);
}

TEST(Loader, AnnotatesAndSetsEntryCounts) {
  auto M = makeCallerModule(5);
  FlatProfile Prof;
  Prof.Kind = ProfileKind::LineBased;
  FunctionProfile &Main = Prof.getOrCreate("main");
  Main.HeadSamples = 9;
  Main.addBody({1, 0}, 100);
  LoaderOptions Opts;
  Opts.MaxInlineSize = 0; // Annotation only.
  LoaderStats Stats = loadFlatProfile(*M, Prof, false, Opts);
  EXPECT_EQ(Stats.FunctionsAnnotated, 1u);
  Function *F = M->getFunction("main");
  EXPECT_TRUE(F->HasEntryCount);
  EXPECT_GE(F->EntryCount, 9u);
}

TEST(Loader, SampleAccurateMarksUnprofiledCold) {
  auto M = makeCallerModule(5);
  FlatProfile Prof;
  Prof.Kind = ProfileKind::LineBased;
  Prof.getOrCreate("main").addBody({1, 0}, 10);
  LoaderOptions Opts;
  loadFlatProfile(*M, Prof, false, Opts);
  Function *Leaf = M->getFunction("leaf");
  for (auto &BB : Leaf->Blocks) {
    EXPECT_TRUE(BB->HasCount);
    EXPECT_EQ(BB->Count, 0u);
  }
}

TEST(Loader, StaleProbeProfileDropped) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  FlatProfile Prof;
  Prof.Kind = ProfileKind::ProbeBased;
  FunctionProfile &P = Prof.getOrCreate("leaf");
  P.Checksum = 0xDEAD; // Mismatch.
  P.addBody({1, 0}, 100);
  LoaderOptions Opts;
  Opts.RecoverStaleProfiles = false; // Legacy behavior: detect and drop.
  LoaderStats Stats = loadFlatProfile(*M, Prof, false, Opts);
  EXPECT_EQ(Stats.StaleDropped, 1u);
  EXPECT_EQ(Stats.StaleMatched, 0u);
  // 'leaf' must not carry the stale counts (cold-filled instead).
  EXPECT_EQ(M->getFunction("leaf")->Blocks[0]->Count, 0u);
}

TEST(Loader, StaleProbeProfileRecoveredByDefault) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  FlatProfile Prof;
  Prof.Kind = ProfileKind::ProbeBased;
  FunctionProfile &P = Prof.getOrCreate("leaf");
  P.Checksum = 0xDEAD; // Mismatch, but the CFG is actually unchanged.
  P.addBody({1, 0}, 100);
  LoaderOptions Opts; // RecoverStaleProfiles on by default.
  LoaderStats Stats = loadFlatProfile(*M, Prof, false, Opts);
  EXPECT_EQ(Stats.StaleDropped, 0u);
  EXPECT_EQ(Stats.StaleMatched, 1u);
  ASSERT_EQ(Stats.StaleMatches.size(), 1u);
  EXPECT_EQ(Stats.StaleMatches[0].Name, "leaf");
  EXPECT_TRUE(Stats.StaleMatches[0].Stats.Accepted);
  EXPECT_EQ(Stats.StaleCountsRecovered, 100u);
  // Identity remap: the counts land exactly where they were.
  EXPECT_EQ(M->getFunction("leaf")->Blocks[0]->Count, 100u);
}

TEST(Loader, MatchingChecksumAccepted) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  FlatProfile Prof;
  Prof.Kind = ProfileKind::ProbeBased;
  FunctionProfile &P = Prof.getOrCreate("leaf");
  P.Checksum = M->getFunction("leaf")->ProbeCFGChecksum;
  P.addBody({1, 0}, 100);
  LoaderOptions Opts;
  LoaderStats Stats = loadFlatProfile(*M, Prof, false, Opts);
  EXPECT_EQ(Stats.StaleDropped, 0u);
  EXPECT_EQ(M->getFunction("leaf")->Blocks[0]->Count, 100u);
}

TEST(Loader, ReplaysNestedInlinees) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  Function *Main = M->getFunction("main");
  Function *Leaf = M->getFunction("leaf");
  // Find the call probe id.
  uint32_t CallProbe = 0;
  for (auto &BB : Main->Blocks)
    for (auto &I : BB->Insts)
      if (I.isCall())
        CallProbe = I.ProbeId;
  ASSERT_GT(CallProbe, 0u);

  FlatProfile Prof;
  Prof.Kind = ProfileKind::ProbeBased;
  FunctionProfile &P = Prof.getOrCreate("main");
  P.Checksum = Main->ProbeCFGChecksum;
  P.HeadSamples = 10;
  for (uint32_t Id = 1; Id <= 4; ++Id)
    P.addBody({Id, 0}, 100);
  FunctionProfile &Inl = P.getOrCreateInlinee({CallProbe, 0}, "leaf");
  Inl.Checksum = Leaf->ProbeCFGChecksum;
  Inl.HeadSamples = 100;
  Inl.addBody({1, 0}, 100);
  Inl.addBody({2, 0}, 90);
  Inl.addBody({3, 0}, 10);
  Inl.addBody({4, 0}, 100);

  size_t BlocksBefore = Main->Blocks.size();
  LoaderOptions Opts;
  LoaderStats Stats = loadFlatProfile(*M, Prof, false, Opts);
  EXPECT_EQ(Stats.InlinedCallsites, 1u);
  EXPECT_GT(Main->Blocks.size(), BlocksBefore);
  // Cloned leaf blocks carry the nested slice counts.
  uint64_t Cloned90 = 0;
  for (auto &BB : Main->Blocks)
    if (BB->HasCount && BB->Count == 90)
      ++Cloned90;
  EXPECT_GE(Cloned90, 1u);
}

namespace {

/// Builds a CS profile for makeCallerModule: one hot context
/// [main @ leaf] marked for inlining.
ContextProfile makeCSProfile(Module &M, bool Mark) {
  Function *Main = M.getFunction("main");
  Function *Leaf = M.getFunction("leaf");
  uint32_t CallProbe = 0;
  for (auto &BB : Main->Blocks)
    for (auto &I : BB->Insts)
      if (I.isCall())
        CallProbe = I.ProbeId;

  ContextProfile CS;
  ContextTrieNode &MainNode = CS.getOrCreateNode({{"main", 0}});
  MainNode.HasProfile = true;
  MainNode.Profile.Checksum = Main->ProbeCFGChecksum;
  MainNode.Profile.HeadSamples = 1;
  for (uint32_t Id = 1; Id <= 4; ++Id)
    MainNode.Profile.addBody({Id, 0}, 500);
  MainNode.Profile.addCall({CallProbe, 0}, "leaf", 500);

  ContextTrieNode &LeafNode =
      CS.getOrCreateNode({{"main", CallProbe}, {"leaf", 0}});
  LeafNode.HasProfile = true;
  LeafNode.ShouldBeInlined = Mark;
  LeafNode.Profile.Checksum = Leaf->ProbeCFGChecksum;
  LeafNode.Profile.HeadSamples = 500;
  LeafNode.Profile.addBody({1, 0}, 500);
  LeafNode.Profile.addBody({2, 0}, 450);
  LeafNode.Profile.addBody({3, 0}, 50);
  LeafNode.Profile.addBody({4, 0}, 500);
  return CS;
}

} // namespace

TEST(CSLoader, HonorsPreInlinerMarks) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  ContextProfile CS = makeCSProfile(*M, /*Mark=*/true);
  LoaderOptions Opts;
  Opts.InlineHotContexts = false; // Only marks count.
  LoaderStats Stats = loadContextProfile(*M, CS, Opts);
  EXPECT_EQ(Stats.InlinedCallsites, 1u);
  // Context-sliced annotation: a cloned block holds exactly 450.
  bool Found450 = false;
  for (auto &BB : M->getFunction("main")->Blocks)
    Found450 |= BB->HasCount && BB->Count == 450;
  EXPECT_TRUE(Found450);
}

TEST(CSLoader, UnmarkedContextMergesToBase) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  ContextProfile CS = makeCSProfile(*M, /*Mark=*/false);
  LoaderOptions Opts;
  Opts.InlineHotContexts = false;
  LoaderStats Stats = loadContextProfile(*M, CS, Opts);
  EXPECT_EQ(Stats.InlinedCallsites, 0u);
  // 'leaf' gets annotated out of line from the merged context.
  Function *Leaf = M->getFunction("leaf");
  EXPECT_EQ(Leaf->Blocks[0]->Count, 500u);
  EXPECT_EQ(Leaf->Blocks[1]->Count, 450u);
}

TEST(CSLoader, HotContextInlinedWithoutMarks) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  ContextProfile CS = makeCSProfile(*M, /*Mark=*/false);
  LoaderOptions Opts;
  Opts.InlineHotContexts = true;
  Opts.HotCallsiteThreshold = 100; // Context total 1500 >= 100.
  LoaderStats Stats = loadContextProfile(*M, CS, Opts);
  EXPECT_EQ(Stats.InlinedCallsites, 1u);
}

TEST(CSLoader, StaleContextChecksumBlocksInlining) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  ContextProfile CS = makeCSProfile(*M, /*Mark=*/true);
  // Corrupt the leaf context checksum.
  CS.forEachNodeMutable([](const SampleContext &Ctx, ContextTrieNode &N) {
    if (Ctx.back().Func == "leaf")
      N.Profile.Checksum = 0xBAD;
  });
  LoaderOptions Opts;
  Opts.InlineHotContexts = false;
  Opts.RecoverStaleProfiles = false; // Legacy behavior: detect and drop.
  LoaderStats Stats = loadContextProfile(*M, CS, Opts);
  EXPECT_EQ(Stats.InlinedCallsites, 0u);
  EXPECT_GE(Stats.StaleDropped, 1u);
}

TEST(CSLoader, StaleContextRecoveredRestoresInlining) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  ContextProfile CS = makeCSProfile(*M, /*Mark=*/true);
  CS.forEachNodeMutable([](const SampleContext &Ctx, ContextTrieNode &N) {
    if (Ctx.back().Func == "leaf")
      N.Profile.Checksum = 0xBAD;
  });
  LoaderOptions Opts; // RecoverStaleProfiles on by default.
  Opts.InlineHotContexts = false;
  LoaderStats Stats = loadContextProfile(*M, CS, Opts);
  // The matcher pre-pass rewrites the stale contexts (the CFG did not
  // actually change), so the marked context inlines again and its sliced
  // annotation is intact.
  EXPECT_EQ(Stats.StaleDropped, 0u);
  EXPECT_GE(Stats.StaleMatched, 1u);
  EXPECT_EQ(Stats.InlinedCallsites, 1u);
  bool Found450 = false;
  for (auto &BB : M->getFunction("main")->Blocks)
    Found450 |= BB->HasCount && BB->Count == 450;
  EXPECT_TRUE(Found450);
}

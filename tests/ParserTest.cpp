//===- tests/ParserTest.cpp - IR parser round-trip tests --------*- C++ -*-===//

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "probe/ProbeInserter.h"
#include "workload/ProgramGenerator.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace csspgo;
using namespace csspgo::testing;

namespace {

/// Print -> parse -> print must be a fixed point.
void expectRoundTrip(const Module &M) {
  PrintOptions Opts;
  std::string T1 = printModule(M, Opts);
  std::string Error;
  auto Back = parseModule(T1, &Error);
  ASSERT_NE(Back, nullptr) << Error;
  // Function table and entry are not part of the printed form beyond the
  // header; copy the table for verification purposes.
  Back->FunctionTable = M.FunctionTable;
  EXPECT_TRUE(verifyModule(*Back).empty());
  EXPECT_EQ(printModule(*Back, Opts), T1);
}

} // namespace

TEST(Parser, RoundTripsCallerModule) {
  auto M = makeCallerModule(5);
  expectRoundTrip(*M);
}

TEST(Parser, RoundTripsProbedModule) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  expectRoundTrip(*M);
}

TEST(Parser, RoundTripsCounterModule) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::InstrCounter);
  expectRoundTrip(*M);
}

TEST(Parser, RoundTripsAnnotatedModule) {
  auto M = makeCallerModule(5);
  Function *F = M->getFunction("leaf");
  F->Blocks[0]->setCount(100);
  F->Blocks[0]->SuccWeights = {60, 40};
  F->Blocks[2]->IsColdSection = true;
  F->HasEntryCount = true;
  F->EntryCount = 7;
  expectRoundTrip(*M);
}

TEST(Parser, RoundTripsGeneratedWorkload) {
  WorkloadConfig C;
  C.Seed = 5;
  C.Requests = 10;
  C.NumServices = 2;
  C.NumMids = 4;
  C.NumUtils = 3;
  C.MidsPerService = 2;
  C.IndirectDispatchProb = 1.0; // Exercise callindirect printing/parsing.
  auto M = generateProgram(C);
  expectRoundTrip(*M);
}

TEST(Parser, ParsedModuleExecutesIdentically) {
  auto M = makeCallerModule(25);
  std::string Text = printModule(*M);
  auto Back = parseModule(Text);
  ASSERT_NE(Back, nullptr);
  Back->EntryFunction = "main";
  auto R1 = compileAndRun(*M);
  auto R2 = compileAndRun(*Back);
  EXPECT_EQ(R1.ExitValue, R2.ExitValue);
  EXPECT_EQ(R1.Instructions, R2.Instructions);
}

TEST(Parser, ReportsErrors) {
  std::string Error;
  EXPECT_EQ(parseModule("func broken(\n", &Error), nullptr);
  EXPECT_NE(Error.find("line 1"), std::string::npos);

  EXPECT_EQ(parseModule("func f(0 params, 1 regs) {\nentry:\n  br nowhere\n}\n",
                        &Error),
            nullptr);
  EXPECT_NE(Error.find("unknown block label"), std::string::npos);

  EXPECT_EQ(parseModule("func f(0 params, 0 regs) {\n  r0 = zorble 1, 2\n}\n",
                        &Error),
            nullptr);
}

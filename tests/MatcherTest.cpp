//===- tests/MatcherTest.cpp - stale-profile matcher tests ------*- C++ -*-===//
//
// Property tests for src/matcher: under CFG-preserving drift (a checksum
// mismatch with an unchanged CFG, or a pure line shift) the matcher must
// recover a profile equivalent to the no-drift load; under CFG-changing
// drift it must recover strictly more than the legacy drop behavior and
// never emit keys outside the fresh anchor space.
//
//===----------------------------------------------------------------------===//

#include "loader/ProfileLoader.h"
#include "matcher/StaleMatcher.h"
#include "pgo/PGODriver.h"
#include "probe/ProbeInserter.h"
#include "profile/ProfileMerge.h"
#include "quality/BlockOverlap.h"
#include "workload/Workloads.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

using namespace csspgo;
using namespace csspgo::testing;

namespace {

WorkloadConfig tinyWorkload() {
  WorkloadConfig C;
  C.Seed = 3;
  C.Requests = 60;
  C.NumServices = 3;
  C.NumMids = 8;
  C.NumUtils = 5;
  C.NumColdHandlers = 3;
  C.MidsPerService = 4;
  return C;
}

/// Synthetic probe-based profile derived from \p M itself: every probe id
/// gets a deterministic count, every call probe a call-target record.
/// Loading it back onto the same IR reproduces the counts exactly, which
/// makes bit-identity checkable.
FlatProfile probeProfileFrom(const Module &M) {
  FlatProfile Prof;
  Prof.Kind = ProfileKind::ProbeBased;
  for (const auto &F : M.Functions) {
    FunctionProfile *P = nullptr;
    for (const auto &BB : F->Blocks)
      for (const auto &I : BB->Insts) {
        if (!I.ProbeId || !(I.isProbe() || I.isCall()))
          continue;
        if (!P) {
          P = &Prof.getOrCreate(F->getName());
          P->Guid = F->getGuid();
          P->Checksum = F->ProbeCFGChecksum;
          P->HeadSamples = 3;
        }
        if (I.isProbe())
          P->addBody({I.ProbeId, 0}, 10 * I.ProbeId + 7);
        else {
          P->addBody({I.ProbeId, 0}, 5);
          P->addCall({I.ProbeId, 0}, I.Callee, 5); // "" = indirect.
        }
      }
  }
  return Prof;
}

/// Per-function (entry count, per-block HasCount/Count) snapshot, the
/// "applied counts" the bit-identity properties compare.
std::map<std::string, std::vector<uint64_t>> appliedCounts(const Module &M) {
  std::map<std::string, std::vector<uint64_t>> Out;
  for (const auto &F : M.Functions) {
    std::vector<uint64_t> &V = Out[F->getName()];
    V.push_back(F->HasEntryCount);
    V.push_back(F->EntryCount);
    for (const auto &BB : F->Blocks) {
      V.push_back(BB->HasCount);
      V.push_back(BB->Count);
    }
  }
  return Out;
}

uint64_t totalAppliedCount(const Module &M) {
  uint64_t Total = 0;
  for (const auto &F : M.Functions)
    for (const auto &BB : F->Blocks)
      Total += BB->Count;
  return Total;
}

/// Annotation-only loader options: no inlining and no indirect-call
/// promotion, so the CFG stays fixed and counts compare across loads.
LoaderOptions annotateOnly() {
  LoaderOptions Opts;
  Opts.MaxInlineSize = 0;
  Opts.ReplayInlining = false;
  Opts.PromoteIndirectCalls = false;
  return Opts;
}

std::set<uint32_t> anchorIdsOf(const Function &F) {
  std::set<uint32_t> Ids;
  for (const auto &BB : F.Blocks)
    for (const auto &I : BB->Insts)
      if (I.ProbeId && (I.isProbe() || I.isCall()))
        Ids.insert(I.ProbeId);
  return Ids;
}

void expectKeysWithin(const FunctionProfile &P, const std::set<uint32_t> &Ids,
                      const char *What) {
  for (const auto &[K, N] : P.Body)
    EXPECT_TRUE(Ids.count(K.Index)) << What << ": body key " << K.Index;
  for (const auto &[K, Targets] : P.Calls)
    EXPECT_TRUE(Ids.count(K.Index)) << What << ": call key " << K.Index;
}

} // namespace

// CFG-preserving drift (checksum mismatch, identical CFG): recovery must
// be bit-identical to the no-drift load — the identity remapping.
TEST(Matcher, ChecksumOnlyDriftRecoversBitIdentical) {
  auto MA = generateProgram(tinyWorkload());
  insertProbes(*MA, AnchorKind::PseudoProbe);
  FlatProfile Prof = probeProfileFrom(*MA);
  LoaderStats CleanStats = loadFlatProfile(*MA, Prof, false, annotateOnly());
  EXPECT_EQ(CleanStats.StaleMatched, 0u);
  EXPECT_EQ(CleanStats.StaleDropped, 0u);

  // Same program, but every profile claims a different CFG checksum — as
  // after a checksum-salt change or a rebuild with touched metadata.
  auto MB = generateProgram(tinyWorkload());
  insertProbes(*MB, AnchorKind::PseudoProbe);
  FlatProfile Stale = Prof;
  for (auto &[Name, P] : Stale.Functions)
    P.Checksum ^= 0x5A5A;
  LoaderStats Stats = loadFlatProfile(*MB, Stale, false, annotateOnly());
  EXPECT_EQ(Stats.StaleDropped, 0u);
  EXPECT_EQ(Stats.StaleMatched, Stale.Functions.size());
  EXPECT_EQ(appliedCounts(*MB), appliedCounts(*MA));
  for (const StaleMatchRecord &R : Stats.StaleMatches) {
    EXPECT_TRUE(R.Stats.Accepted) << R.Name;
    EXPECT_DOUBLE_EQ(R.Stats.Confidence, 1.0) << R.Name;
  }
}

// Same property for a context trie: checksum-corrupted contexts over an
// unchanged CFG must load to bit-identical counts.
TEST(Matcher, ContextChecksumOnlyDriftRecoversBitIdentical) {
  auto Build = [](ContextProfile &CS, Module &M) {
    Function *Main = M.getFunction("main");
    Function *Leaf = M.getFunction("leaf");
    uint32_t CallProbe = 0;
    for (auto &BB : Main->Blocks)
      for (auto &I : BB->Insts)
        if (I.isCall() && I.Callee == "leaf")
          CallProbe = I.ProbeId;
    ASSERT_NE(CallProbe, 0u);

    ContextTrieNode &MainNode = CS.getOrCreateNode({{"main", 0}});
    MainNode.HasProfile = true;
    MainNode.Profile.Name = "main";
    MainNode.Profile.Guid = Main->getGuid();
    MainNode.Profile.Checksum = Main->ProbeCFGChecksum;
    MainNode.Profile.HeadSamples = 1;
    for (auto &BB : Main->Blocks)
      for (auto &I : BB->Insts)
        if (I.isProbe())
          MainNode.Profile.addBody({I.ProbeId, 0}, 11 * I.ProbeId);
    MainNode.Profile.addCall({CallProbe, 0}, "leaf", 40);

    ContextTrieNode &LeafNode =
        CS.getOrCreateNode({{"main", CallProbe}, {"leaf", 0}});
    LeafNode.HasProfile = true;
    LeafNode.Profile.Name = "leaf";
    LeafNode.Profile.Guid = Leaf->getGuid();
    LeafNode.Profile.Checksum = Leaf->ProbeCFGChecksum;
    LeafNode.Profile.HeadSamples = 40;
    for (auto &BB : Leaf->Blocks)
      for (auto &I : BB->Insts)
        if (I.isProbe())
          LeafNode.Profile.addBody({I.ProbeId, 0}, 3 * I.ProbeId + 1);
  };

  LoaderOptions Opts = annotateOnly();
  Opts.InlineHotContexts = false;

  auto M1 = makeCallerModule(8);
  insertProbes(*M1, AnchorKind::PseudoProbe);
  ContextProfile Clean;
  Build(Clean, *M1);
  LoaderStats CleanStats = loadContextProfile(*M1, Clean, Opts);
  EXPECT_EQ(CleanStats.StaleMatched, 0u);

  auto M2 = makeCallerModule(8);
  insertProbes(*M2, AnchorKind::PseudoProbe);
  ContextProfile Stale;
  Build(Stale, *M2);
  Stale.forEachNodeMutable([](const SampleContext &, ContextTrieNode &N) {
    if (N.HasProfile)
      N.Profile.Checksum ^= 0x9E37;
  });
  LoaderStats Stats = loadContextProfile(*M2, Stale, Opts);
  EXPECT_EQ(Stats.StaleDropped, 0u);
  EXPECT_EQ(Stats.StaleMatched, 2u) << "main and leaf both recovered";
  EXPECT_EQ(appliedCounts(*M2), appliedCounts(*M1));
}

// CFG-changing drift: the matcher must recover strictly more annotated
// mass than the legacy drop path, with sane per-function stats.
TEST(Matcher, GuardInsertDriftRecoveryBeatsDropping) {
  auto MOld = generateProgram(tinyWorkload());
  insertProbes(*MOld, AnchorKind::PseudoProbe);
  FlatProfile Prof = probeProfileFrom(*MOld);

  auto MakeDrifted = [] {
    auto M = generateProgram(tinyWorkload());
    EXPECT_GT(applyCFGDrift(*M, CFGDriftKind::GuardInsert), 0u);
    insertProbes(*M, AnchorKind::PseudoProbe);
    return M;
  };

  auto MDrop = MakeDrifted();
  LoaderOptions Drop = annotateOnly();
  Drop.RecoverStaleProfiles = false;
  LoaderStats DropStats = loadFlatProfile(*MDrop, Prof, false, Drop);
  EXPECT_GT(DropStats.StaleDropped, 0u);
  EXPECT_EQ(DropStats.StaleMatched, 0u);

  auto MMatch = MakeDrifted();
  LoaderStats MatchStatsL = loadFlatProfile(*MMatch, Prof, false,
                                            annotateOnly());
  EXPECT_GT(MatchStatsL.StaleMatched, 0u);
  EXPECT_GT(MatchStatsL.StaleCountsRecovered, 0u);
  EXPECT_GT(totalAppliedCount(*MMatch), totalAppliedCount(*MDrop));

  for (const StaleMatchRecord &R : MatchStatsL.StaleMatches) {
    EXPECT_GE(R.Stats.Confidence, 0.0) << R.Name;
    EXPECT_LE(R.Stats.Confidence, 1.0) << R.Name;
    EXPECT_LE(R.Stats.AnchorsMatched, R.Stats.AnchorsTotal) << R.Name;
    EXPECT_LE(R.Stats.SamplesRecovered, R.Stats.SamplesTotal) << R.Name;
    // Accepted matches must have applied their recovered keys only onto
    // existing fresh anchors.
    if (R.Stats.Accepted) {
      Function *F = MMatch->getFunction(R.Name);
      ASSERT_NE(F, nullptr) << R.Name;
    }
  }
}

// Handcrafted probe remapping: a block split shifts every later probe id;
// the aligned call anchor pins the mapping and the recovered profile may
// only use ids that exist in the fresh function.
TEST(Matcher, BlockSplitRemapsOntoFreshIdsOnly) {
  auto MOld = makeCallerModule(8);
  insertProbes(*MOld, AnchorKind::PseudoProbe);
  FlatProfile OldProf = probeProfileFrom(*MOld);
  const FunctionProfile *StaleMain = OldProf.find("main");
  ASSERT_NE(StaleMain, nullptr);

  auto MNew = makeCallerModule(8);
  ASSERT_GT(applyCFGDrift(*MNew, CFGDriftKind::BlockSplit), 0u);
  insertProbes(*MNew, AnchorKind::PseudoProbe);
  Function *NewMain = MNew->getFunction("main");
  ASSERT_NE(StaleMain->Checksum, NewMain->ProbeCFGChecksum)
      << "block split must stale the checksum";

  MatchResult R = matchStaleProfile(*StaleMain, *NewMain, *MNew,
                                    ProfileKind::ProbeBased);
  EXPECT_TRUE(R.Stats.Accepted);
  EXPECT_GE(R.Stats.AnchorsMatched, 1u) << "the leaf call site anchors";
  std::set<uint32_t> FreshIds = anchorIdsOf(*NewMain);
  expectKeysWithin(R.Recovered, FreshIds, "recovered");
  EXPECT_EQ(R.Recovered.Checksum, NewMain->ProbeCFGChecksum);
  EXPECT_EQ(R.Recovered.Guid, NewMain->getGuid());

  // The call-site record survives the remap with its count intact.
  uint64_t LeafCalls = 0;
  for (const auto &[K, Targets] : R.Recovered.Calls) {
    auto It = Targets.find("leaf");
    if (It != Targets.end())
      LeafCalls += It->second;
  }
  EXPECT_EQ(LeafCalls, 5u);

  // Merging the recovered profile with a fresh-collected one (continuous
  // profiling aggregates both) must keep the fresh GUID/checksum and must
  // not resurrect any stale-only probe id.
  FlatProfile FreshProf = probeProfileFrom(*MNew);
  FlatProfile Merged = FreshProf;
  FlatProfile RecoveredDB;
  RecoveredDB.Kind = ProfileKind::ProbeBased;
  RecoveredDB.Functions["main"] = R.Recovered;
  mergeFlatProfiles(Merged, RecoveredDB);
  const FunctionProfile *MergedMain = Merged.find("main");
  ASSERT_NE(MergedMain, nullptr);
  EXPECT_EQ(MergedMain->Guid, NewMain->getGuid());
  EXPECT_EQ(MergedMain->Checksum, NewMain->ProbeCFGChecksum);
  expectKeysWithin(*MergedMain, FreshIds, "merged");
}

// Line-based profiles: a pure line shift must be detected via call
// anchors and recovered; the recovered annotation overlaps the no-drift
// annotation strictly better than the legacy mis-correlated load.
TEST(Matcher, LineDriftRecoveryImprovesOverlap) {
  ExperimentConfig Config;
  Config.Workload = workloadPreset("AdRanker", 0.05);
  PGODriver Driver(Config);
  VariantOutcome Out = Driver.run(PGOVariant::AutoFDO);
  ASSERT_TRUE(Out.Profile.Has);

  auto NoDrift = Driver.source().clone();
  LoaderStats CleanStats =
      loadFlatProfile(*NoDrift, Out.Profile.Flat, false, annotateOnly());
  EXPECT_EQ(CleanStats.StaleMatched, 0u) << "no false staleness";
  EXPECT_EQ(CleanStats.StaleDropped, 0u);

  auto Dropped = Driver.source().clone();
  applySourceDrift(*Dropped, 3);
  LoaderOptions Legacy = annotateOnly();
  Legacy.RecoverStaleProfiles = false;
  loadFlatProfile(*Dropped, Out.Profile.Flat, false, Legacy);

  auto Matched = Driver.source().clone();
  applySourceDrift(*Matched, 3);
  LoaderStats MatchStatsL =
      loadFlatProfile(*Matched, Out.Profile.Flat, false, annotateOnly());
  EXPECT_GT(MatchStatsL.StaleMatched, 0u);

  OverlapReport DropRep = computeBlockOverlap(*Dropped, *NoDrift);
  OverlapReport MatchRep = computeBlockOverlap(*Matched, *NoDrift);
  EXPECT_GT(MatchRep.ProgramOverlap, DropRep.ProgramOverlap)
      << "anchor matching must beat mis-correlated line application";
}

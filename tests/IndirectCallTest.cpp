//===- tests/IndirectCallTest.cpp - indirect calls / ICP --------*- C++ -*-===//
//
// Indirect calls, value profiling and indirect-call promotion: the
// value-profile-based optimization the paper names as instrumentation
// PGO's remaining edge (§IV-A). Sampling variants learn targets from LBR
// call branches; Instr PGO from the value-profiling runtime.
//
//===----------------------------------------------------------------------===//

#include "codegen/Linker.h"
#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "loader/ProfileLoader.h"
#include "opt/Inliner.h"
#include "pgo/PGODriver.h"
#include "probe/ProbeInserter.h"
#include "profgen/AutoFDOGenerator.h"
#include "profgen/InstrProfileGenerator.h"
#include "sim/Executor.h"
#include "sim/InstrRuntime.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

using namespace csspgo;

namespace {

/// main loops N times calling table[v % 4] where v is skewed so slot 1
/// dominates (~70%). Targets f0..f3 return distinct values.
std::unique_ptr<Module> makeIndirectModule(int64_t Iters) {
  auto M = std::make_unique<Module>("icp");
  for (int T = 0; T != 4; ++T) {
    Function *F = M->createFunction("f" + std::to_string(T), 1);
    Builder B(F);
    BasicBlock *E = F->createBlock("entry");
    B.setInsertBlock(E);
    RegId R = B.emitBinary(Opcode::Add, Operand::reg(0),
                           Operand::imm(100 * (T + 1)));
    B.emitRet(Operand::reg(R));
    M->addFunctionTableEntry(F->getName());
  }

  Function *Main = M->createFunction("main", 0);
  Builder B(Main);
  BasicBlock *E = Main->createBlock("entry");
  BasicBlock *H = Main->createBlock("h");
  BasicBlock *Body = Main->createBlock("b");
  BasicBlock *X = Main->createBlock("x");
  B.setInsertBlock(E);
  RegId Acc = B.emitConst(0);
  RegId I = B.emitConst(0);
  B.emitBr(H);
  B.setInsertBlock(H);
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(I), Operand::imm(Iters));
  B.emitCondBr(Operand::reg(C), Body, X);
  B.setInsertBlock(Body);
  // Skew: slot = (i % 10 < 7) ? 1 : i % 4.
  RegId M10 = B.emitBinary(Opcode::Mod, Operand::reg(I), Operand::imm(10));
  RegId Hot = B.emitBinary(Opcode::CmpLT, Operand::reg(M10), Operand::imm(7));
  RegId M4 = B.emitBinary(Opcode::Mod, Operand::reg(I), Operand::imm(4));
  RegId Slot = B.emitSelect(Operand::reg(Hot), Operand::imm(1),
                            Operand::reg(M4));
  RegId R = B.emitCallIndirect(Operand::reg(Slot), {Operand::reg(I)});
  B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
  Body->Insts.back().Dst = Acc;
  B.emitBinary(Opcode::Add, Operand::reg(I), Operand::imm(1));
  Body->Insts.back().Dst = I;
  B.emitBr(H);
  B.setInsertBlock(X);
  B.emitRet(Operand::reg(Acc));
  M->EntryFunction = "main";
  verifyOrDie(*M, "indirect test module");
  return M;
}

} // namespace

TEST(IndirectCall, ExecutesThroughTable) {
  auto M = makeIndirectModule(100);
  auto Bin = compileToBinary(*M);
  ASSERT_EQ(Bin->FuncTable.size(), 4u);
  std::vector<int64_t> Mem(64, 0);
  RunResult R = execute(*Bin, "main", Mem, {});
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_EQ(R.IndirectCalls, 100u);
  // Expected: 70 calls to f1 (+200) and 10 each to f0/f2/f3... compute:
  int64_t Expect = 0;
  for (int64_t I = 0; I != 100; ++I) {
    int64_t Slot = (I % 10 < 7) ? 1 : I % 4;
    Expect += I + 100 * (Slot + 1);
  }
  EXPECT_EQ(R.ExitValue, Expect);
}

TEST(IndirectCall, MispredictsTrackTargetChanges) {
  auto M = makeIndirectModule(1000);
  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(64, 0);
  RunResult R = execute(*Bin, "main", Mem, {});
  EXPECT_GT(R.IndirectMispredicts, 100u)
      << "alternating targets must miss the last-target BTB";
  EXPECT_LT(R.IndirectMispredicts, R.IndirectCalls);
}

TEST(IndirectCall, ValueProfileRecordsTargets) {
  auto M = makeIndirectModule(200);
  insertProbes(*M, AnchorKind::InstrCounter);
  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(64, 0);
  ExecConfig EC;
  EC.CollectValueProfile = true;
  RunResult R = execute(*Bin, "main", Mem, EC);
  ASSERT_EQ(R.ValueProfile.size(), 1u);
  const auto &Targets = R.ValueProfile.begin()->second;
  EXPECT_EQ(Targets.at(1), 160u); // 70% hot + i%4==1 residues.
  EXPECT_EQ(Targets.at(0), 10u); // i%20==8 within 0..199.

  FlatProfile Instr = generateInstrProfile(dumpCounters(*Bin, R),
                                           Bin.get(), &R);
  const FunctionProfile *P = Instr.find("main");
  ASSERT_NE(P, nullptr);
  uint64_t F1Count = 0;
  for (const auto &[K, T] : P->Calls)
    for (const auto &[Callee, N] : T)
      if (Callee == "f1")
        F1Count += N;
  EXPECT_EQ(F1Count, 160u);
}

TEST(IndirectCall, LBRGivesSampledTargets) {
  auto M = makeIndirectModule(20000);
  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(64, 0);
  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = 97;
  RunResult R = execute(*Bin, "main", Mem, EC);
  FlatProfile Auto = generateAutoFDOProfile(*Bin, R.Samples);
  const FunctionProfile *P = Auto.find("main");
  ASSERT_NE(P, nullptr);
  uint64_t F1 = 0, Rest = 0;
  for (const auto &[K, T] : P->Calls)
    for (const auto &[Callee, N] : T)
      (Callee == "f1" ? F1 : Rest) += N;
  EXPECT_GT(F1, Rest) << "LBR must see the dominant indirect target";
}

TEST(IndirectCall, PromotionCreatesGuardedDirectCall) {
  auto M = makeIndirectModule(100);
  insertProbes(*M, AnchorKind::InstrCounter);
  // Synthesize an exact profile for main.
  FlatProfile Prof;
  Prof.Kind = ProfileKind::ProbeBased;
  FunctionProfile &P = Prof.getOrCreate("main");
  for (uint32_t Id = 1; Id <= 4; ++Id)
    P.addBody({Id, 0}, 100);
  P.addCall({1, 0}, "f1", 70); // Value site 1 = the indirect call.
  P.addCall({1, 0}, "f2", 30);
  P.HeadSamples = 1;

  LoaderOptions Opts;
  Opts.HotCallsiteThreshold = 10;
  LoaderStats Stats = loadFlatProfile(*M, Prof, /*IsInstr=*/true, Opts);
  EXPECT_EQ(Stats.PromotedIndirectCalls, 1u);
  EXPECT_TRUE(verifyModule(*M).empty());

  // A guarded direct call to f1 now exists; semantics unchanged.
  bool FoundDirect = false;
  for (auto &BB : M->getFunction("main")->Blocks)
    for (auto &I : BB->Insts)
      FoundDirect |= I.Op == Opcode::Call && I.Callee == "f1";
  EXPECT_TRUE(FoundDirect);

  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(64, 0);
  RunResult R = execute(*Bin, "main", Mem, {});
  auto M2 = makeIndirectModule(100);
  auto Bin2 = compileToBinary(*M2);
  std::vector<int64_t> Mem2(64, 0);
  EXPECT_EQ(R.ExitValue, execute(*Bin2, "main", Mem2, {}).ExitValue);
}

TEST(IndirectCall, NoPromotionWithoutDominantTarget) {
  auto M = makeIndirectModule(100);
  insertProbes(*M, AnchorKind::InstrCounter);
  FlatProfile Prof;
  Prof.Kind = ProfileKind::ProbeBased;
  FunctionProfile &P = Prof.getOrCreate("main");
  for (uint32_t Id = 1; Id <= 4; ++Id)
    P.addBody({Id, 0}, 100);
  for (const char *T : {"f0", "f1", "f2", "f3"})
    P.addCall({1, 0}, T, 25); // Perfectly flat: no dominant target.
  LoaderOptions Opts;
  Opts.HotCallsiteThreshold = 10;
  LoaderStats Stats = loadFlatProfile(*M, Prof, true, Opts);
  EXPECT_EQ(Stats.PromotedIndirectCalls, 0u);
}

TEST(IndirectCall, TableKeepsTargetsAliveThroughDCE) {
  auto M = makeIndirectModule(10);
  InlineParams Params;
  runBottomUpInliner(*M, Params);
  // f0..f3 are tiny and only reachable through the table: they must
  // survive dead-function removal.
  for (int T = 0; T != 4; ++T)
    EXPECT_NE(M->getFunction("f" + std::to_string(T)), nullptr);
}

TEST(IndirectCall, EndToEndAllVariantsStayCorrect) {
  WorkloadConfig C = workloadPreset("AdRanker", 0.06);
  C.IndirectDispatchProb = 1.0; // Every service dispatches indirectly.
  ExperimentConfig Config;
  Config.Workload = C;
  Config.EvalRuns = 1;
  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  for (PGOVariant V : {PGOVariant::Instr, PGOVariant::AutoFDO,
                       PGOVariant::CSSPGOFull}) {
    VariantOutcome Out = Driver.run(V);
    EXPECT_EQ(Out.ExitValue, Base.ExitValue) << variantName(V);
    EXPECT_GT(Out.Build->Loader.PromotedIndirectCalls, 0u)
        << variantName(V) << " should promote dominant indirect targets";
  }
}

//===- tests/PipelineTest.cpp - ProfilePipeline facade tests ----*- C++ -*-===//
//
// Status/Expected error-model tests plus the ProfilePipeline facade:
// generate → apply (all four transports, bit-identical) → ingest
// (verifier-gated), and the unified PipelineStats the stages feed.
//
//===----------------------------------------------------------------------===//

#include "pgo/ProfilePipeline.h"
#include "profile/ProfileIO.h"
#include "probe/ProbeInserter.h"
#include "sim/Executor.h"
#include "store/ProfileStore.h"
#include "support/Status.h"
#include "workload/ProgramGenerator.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

using namespace csspgo;

namespace {

WorkloadConfig smallWorkload() {
  WorkloadConfig W = workloadPreset("AdRanker", 0.05);
  W.Seed = 17;
  return W;
}

/// A probed profiling build plus one sampled run of it.
struct Profiled {
  std::unique_ptr<Module> Source;
  BuildResult Build;
  RunResult Run;
};

Profiled profiledRun() {
  Profiled P;
  WorkloadConfig W = smallWorkload();
  P.Source = generateProgram(W);
  BuildConfig BC;
  BC.Variant = PGOVariant::CSSPGOFull;
  P.Build = buildWithPGO(*P.Source, BC, nullptr);
  std::vector<int64_t> Mem = generateInput(W, 5);
  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = 211;
  EC.Sampler.Precise = true;
  EC.Sampler.Seed = 7;
  P.Run = execute(*P.Build.Bin, "main", Mem, EC);
  return P;
}

/// Sampled flat probe profile whose head/call edges conserve (verifier
/// fixture shared with VerifierTest).
FlatProfile sampledFlat() {
  FlatProfile P;
  P.Kind = ProfileKind::ProbeBased;
  FunctionProfile &Main = P.getOrCreate("main");
  Main.addBody({1, 0}, 100);
  Main.addBody({2, 0}, 60);
  Main.addCall({2, 0}, "foo", 40);
  FunctionProfile &Foo = P.getOrCreate("foo");
  Foo.HeadSamples = 40;
  Foo.addBody({1, 0}, 40);
  return P;
}

ProfileBundle flatBundle(FlatProfile Flat) {
  ProfileBundle B;
  B.Has = true;
  B.Flat = std::move(Flat);
  return B;
}

} // namespace

//===----------------------------------------------------------------------===//
// Status / Expected.
//===----------------------------------------------------------------------===//

TEST(Status, DefaultIsSuccessErrorCarriesMessage) {
  Status OK;
  EXPECT_TRUE(OK.ok());
  EXPECT_TRUE(static_cast<bool>(OK));
  EXPECT_TRUE(OK.message().empty());

  Status E = Status::error("boom");
  EXPECT_FALSE(E.ok());
  EXPECT_EQ(E.message(), "boom");
}

TEST(Status, WithContextPrefixesOnlyErrors) {
  EXPECT_TRUE(Status().withContext("outer").ok());
  Status E = Status::error("inner").withContext("outer");
  EXPECT_EQ(E.message(), "outer: inner");
  EXPECT_EQ(E.withContext("top").message(), "top: outer: inner");
}

TEST(Expected, ValueAndErrorPaths) {
  Expected<int> V(42);
  ASSERT_TRUE(V.hasValue());
  EXPECT_EQ(*V, 42);
  EXPECT_TRUE(V.status().ok());
  EXPECT_EQ(V.take(), 42);

  Expected<int> E(Status::error("missing"));
  ASSERT_FALSE(E.hasValue());
  EXPECT_EQ(E.status().message(), "missing");
  EXPECT_EQ(E.takeError().message(), "missing");
}

TEST(Expected, MoveOnlyValuesWork) {
  Expected<std::unique_ptr<int>> V(std::make_unique<int>(7));
  ASSERT_TRUE(V.hasValue());
  std::unique_ptr<int> P = V.take();
  EXPECT_EQ(*P, 7);
}

//===----------------------------------------------------------------------===//
// generate: the full CS pipeline behind one call.
//===----------------------------------------------------------------------===//

TEST(ProfilePipeline, GenerateProducesVerifiedCSProfile) {
  Profiled P = profiledRun();
  ProfilePipeline Pipe(PipelineOptions().kind(ProfGenKind::CS));
  Expected<ProfileBundle> B =
      Pipe.generate(*P.Build.Bin, &P.Build.ProbeDescs, P.Run.Samples);
  ASSERT_TRUE(B.hasValue()) << B.status().message();
  EXPECT_TRUE(B->Has);
  EXPECT_TRUE(B->IsCS);
  EXPECT_GT(B->CS.totalSamples(), 0u);
  EXPECT_TRUE(Pipe.lastVerify().ok()) << Pipe.lastVerify().str();
  const PipelineStats &S = Pipe.stats();
  EXPECT_GT(S.ProfGen.Samples, 0u);
  EXPECT_EQ(S.TotalSamples, B->CS.totalSamples());
}

TEST(ProfilePipeline, ShardedGenerateMatchesSerial) {
  Profiled P = profiledRun();
  ProfilePipeline Serial(PipelineOptions().kind(ProfGenKind::CS));
  ProfilePipeline Sharded(
      PipelineOptions().kind(ProfGenKind::CS).parallelism(4));
  Expected<ProfileBundle> A =
      Serial.generate(*P.Build.Bin, &P.Build.ProbeDescs, P.Run.Samples);
  Expected<ProfileBundle> B =
      Sharded.generate(*P.Build.Bin, &P.Build.ProbeDescs, P.Run.Samples);
  ASSERT_TRUE(A.hasValue() && B.hasValue());
  EXPECT_EQ(serializeContextProfile(A->CS), serializeContextProfile(B->CS));
  EXPECT_GE(Sharded.stats().ShardsUsed, Serial.stats().ShardsUsed);
}

TEST(ProfilePipeline, TrimAndPreInlineStayVerified) {
  Profiled P = profiledRun();
  ProfilePipeline Pipe(PipelineOptions()
                           .kind(ProfGenKind::CS)
                           .trimColdContexts(true)
                           .preInliner(true));
  Expected<ProfileBundle> B =
      Pipe.generate(*P.Build.Bin, &P.Build.ProbeDescs, P.Run.Samples);
  ASSERT_TRUE(B.hasValue()) << B.status().message();
  // The re-verification after trim/preinline is the one recorded last.
  EXPECT_TRUE(Pipe.lastVerify().ok()) << Pipe.lastVerify().str();
  EXPECT_GT(Pipe.stats().Verify.ContextsChecked, 0u);
}

//===----------------------------------------------------------------------===//
// apply: one bundle, four transports, identical annotation.
//===----------------------------------------------------------------------===//

TEST(ProfilePipeline, ApplyIsTransportInvariant) {
  Profiled P = profiledRun();
  ProfilePipeline Gen(PipelineOptions().kind(ProfGenKind::CS));
  Expected<ProfileBundle> B =
      Gen.generate(*P.Build.Bin, &P.Build.ProbeDescs, P.Run.Samples);
  ASSERT_TRUE(B.hasValue()) << B.status().message();

  LoaderStats Ref;
  bool First = true;
  for (ProfileTransport T :
       {ProfileTransport::InMemory, ProfileTransport::Text,
        ProfileTransport::BinaryEager, ProfileTransport::BinaryLazy}) {
    ProfileBundle Routed = *B;
    Routed.Transport = T;
    std::unique_ptr<Module> Target = P.Source->clone();
    insertProbes(*Target, AnchorKind::PseudoProbe);
    ProfilePipeline Apply{PipelineOptions()};
    Expected<LoaderStats> St = Apply.apply(*Target, Routed);
    ASSERT_TRUE(St.hasValue())
        << transportName(T) << ": " << St.status().message();
    EXPECT_GT(St->FunctionsAnnotated, 0u);
    if (First) {
      Ref = *St;
      First = false;
      continue;
    }
    EXPECT_EQ(St->FunctionsAnnotated, Ref.FunctionsAnnotated)
        << transportName(T);
    EXPECT_EQ(St->InlinedCallsites, Ref.InlinedCallsites) << transportName(T);
    EXPECT_EQ(St->StaleDropped, Ref.StaleDropped) << transportName(T);
  }
}

//===----------------------------------------------------------------------===//
// ingest: decay folding behind the verifier gate.
//===----------------------------------------------------------------------===//

TEST(ProfilePipeline, IngestFoldsEpochsAndCountsThem) {
  ProfilePipeline Pipe(PipelineOptions().decay(800));
  std::string Bytes;
  ASSERT_TRUE(Pipe.ingest(Bytes, flatBundle(sampledFlat()), 100).ok());
  ASSERT_TRUE(Pipe.ingest(Bytes, flatBundle(sampledFlat()), 200).ok());
  EXPECT_EQ(Pipe.stats().EpochsFolded, 2u);
  Expected<ProfileStore> St = ProfileStore::open(std::move(Bytes));
  ASSERT_TRUE(St.hasValue()) << St.status().message();
  EXPECT_EQ(St->epochs().size(), 2u);
  EXPECT_EQ(St->epochs()[1].Timestamp, 200u);
}

TEST(ProfilePipeline, IngestRejectsEmptyBundle) {
  ProfilePipeline Pipe{PipelineOptions()};
  std::string Bytes;
  Status S = Pipe.ingest(Bytes, ProfileBundle(), 1);
  EXPECT_FALSE(S.ok());
  EXPECT_TRUE(Bytes.empty());
}

TEST(ProfilePipeline, IngestGateRejectsViolatingProfileAndKeepsStore) {
  ProfilePipeline Pipe{PipelineOptions()};
  std::string Bytes;
  ASSERT_TRUE(Pipe.ingest(Bytes, flatBundle(sampledFlat()), 1).ok());
  std::string Before = Bytes;

  FlatProfile Bad = sampledFlat();
  Bad.getOrCreate("foo").HeadSamples += 1; // 41 heads vs 40 call targets.
  Status S = Pipe.ingest(Bytes, flatBundle(std::move(Bad)), 2);
  EXPECT_FALSE(S.ok());
  EXPECT_NE(S.message().find("ingest"), std::string::npos);
  EXPECT_EQ(Bytes, Before) << "rejected fold must not touch the store";
  EXPECT_EQ(Pipe.stats().EpochsFolded, 1u);
}

//===----------------------------------------------------------------------===//
// PipelineStats: composition and JSON.
//===----------------------------------------------------------------------===//

TEST(PipelineStats, AccumulatesAcrossPipelines) {
  PipelineStats A, B;
  A.ProfGen.Samples = 10;
  A.EpochsFolded = 2;
  A.TotalSamples = 100;
  A.ShardsUsed = 2;
  B.ProfGen.Samples = 5;
  B.EpochsFolded = 1;
  B.TotalSamples = 50;
  B.ShardsUsed = 4;
  A += B;
  EXPECT_EQ(A.ProfGen.Samples, 15u);
  EXPECT_EQ(A.EpochsFolded, 3u);
  EXPECT_EQ(A.TotalSamples, 150u);
  EXPECT_EQ(A.ShardsUsed, 4u);
}

TEST(PipelineStats, JSONIsStableAndCarriesEveryGroup) {
  PipelineStats S;
  S.ProfGen.Samples = 7;
  S.Loader.FunctionsAnnotated = 3;
  std::string J = S.toJSON();
  EXPECT_EQ(J, S.toJSON());
  for (const char *Key : {"\"profgen\":", "\"reduce\":", "\"ingest\":",
                          "\"loader\":", "\"verify\":", "\"shards\":",
                          "\"epochs_folded\":", "\"total_samples\":"})
    EXPECT_NE(J.find(Key), std::string::npos) << Key;
  EXPECT_NE(J.find("\"samples\":7"), std::string::npos);
  EXPECT_NE(J.find("\"annotated\":3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Status-based store entry points: the owned and borrowed opens decode
// the same bytes to the same profile and agree on failure diagnostics.
//===----------------------------------------------------------------------===//

TEST(StatusMigration, OwnedAndBorrowedOpensAgree) {
  std::string Bytes = writeStore(sampledFlat(), {});
  Expected<ProfileStore> S = ProfileStore::open(std::string(Bytes));
  ASSERT_TRUE(bool(S)) << S.status().message();
  Expected<FlatProfile> Back = S->loadFlat();
  ASSERT_TRUE(bool(Back)) << Back.status().message();
  EXPECT_EQ(serializeFlatProfile(*Back), serializeFlatProfile(sampledFlat()));

  Expected<ProfileStore> B = ProfileStore::openBorrowed(Bytes);
  ASSERT_TRUE(bool(B)) << B.status().message();
  Expected<FlatProfile> BorrowedBack = B->loadFlat();
  ASSERT_TRUE(bool(BorrowedBack)) << BorrowedBack.status().message();
  EXPECT_EQ(serializeFlatProfile(*BorrowedBack), serializeFlatProfile(*Back));

  // And the two surfaces agree on failures.
  std::string Junk = "CSPF this is not a store";
  Expected<ProfileStore> E = ProfileStore::open(std::string(Junk));
  Expected<ProfileStore> EB = ProfileStore::openBorrowed(Junk);
  EXPECT_FALSE(E.hasValue());
  EXPECT_FALSE(EB.hasValue());
  EXPECT_EQ(E.status().message(), EB.status().message());
}

//===- tests/ProbeTest.cpp - pseudo-probe tests -----------------*- C++ -*-===//

#include "ir/Checksum.h"
#include "ir/Verifier.h"
#include "probe/ProbeInserter.h"
#include "probe/ProbeTable.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <set>

using namespace csspgo;
using namespace csspgo::testing;

TEST(Probe, EveryBlockGetsOneProbe) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  EXPECT_TRUE(verifyModule(*M).empty());
  for (auto &F : M->Functions) {
    EXPECT_TRUE(F->HasProbes);
    for (auto &BB : F->Blocks) {
      const Instruction *P = BB->getBlockProbe();
      ASSERT_NE(P, nullptr);
      EXPECT_EQ(&BB->Insts.front(), P) << "probe must lead the block";
      EXPECT_GT(P->ProbeId, 0u);
    }
  }
}

TEST(Probe, CallSitesGetProbes) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  bool FoundCallProbe = false;
  for (auto &BB : M->getFunction("main")->Blocks)
    for (auto &I : BB->Insts)
      if (I.isCall()) {
        EXPECT_GT(I.ProbeId, 0u);
        FoundCallProbe = true;
      }
  EXPECT_TRUE(FoundCallProbe);
}

TEST(Probe, ProbeIdsUniqueWithinFunction) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  for (auto &F : M->Functions) {
    std::set<uint32_t> Ids;
    for (auto &BB : F->Blocks)
      for (auto &I : BB->Insts) {
        uint32_t Id = 0;
        if (I.isProbe() || (I.isCall() && I.ProbeId))
          Id = I.ProbeId;
        if (Id)
          EXPECT_TRUE(Ids.insert(Id).second) << "duplicate probe id " << Id;
      }
  }
}

TEST(Probe, Idempotent) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  size_t Before = M->getFunction("leaf")->instructionCount();
  insertProbes(*M, AnchorKind::PseudoProbe);
  EXPECT_EQ(M->getFunction("leaf")->instructionCount(), Before);
}

TEST(Probe, ChecksumStoredAndStable) {
  auto M1 = makeCallerModule(5);
  auto M2 = makeCallerModule(5);
  insertProbes(*M1, AnchorKind::PseudoProbe);
  insertProbes(*M2, AnchorKind::PseudoProbe);
  EXPECT_EQ(M1->getFunction("leaf")->ProbeCFGChecksum,
            M2->getFunction("leaf")->ProbeCFGChecksum);
  EXPECT_NE(M1->getFunction("leaf")->ProbeCFGChecksum, 0u);
}

TEST(Probe, InstrCountersLowerToCode) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::InstrCounter);
  Function *Leaf = M->getFunction("leaf");
  EXPECT_FALSE(Leaf->HasProbes);
  EXPECT_EQ(Leaf->NumCounters, 4u); // One per block, no call-site counters.
  for (auto &BB : Leaf->Blocks)
    EXPECT_TRUE(BB->Insts.front().isCounter());
}

TEST(Probe, StripRemovesEverything) {
  auto M = makeCallerModule(5);
  size_t Plain = M->getFunction("leaf")->instructionCount();
  insertProbes(*M, AnchorKind::PseudoProbe);
  stripProbes(*M);
  EXPECT_EQ(M->getFunction("leaf")->instructionCount(), Plain);
  EXPECT_FALSE(M->getFunction("leaf")->HasProbes);
  for (auto &BB : M->getFunction("main")->Blocks)
    for (auto &I : BB->Insts)
      if (I.isCall())
        EXPECT_EQ(I.ProbeId, 0u);
}

TEST(Probe, TableFromModule) {
  auto M = makeCallerModule(5);
  insertProbes(*M, AnchorKind::PseudoProbe);
  ProbeTable T = ProbeTable::fromModule(*M);
  EXPECT_EQ(T.size(), 2u);
  const ProbeDescriptor *D = T.findByName("leaf");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Guid, M->getFunction("leaf")->getGuid());
  EXPECT_EQ(D->CFGChecksum, M->getFunction("leaf")->ProbeCFGChecksum);
  EXPECT_EQ(T.find(D->Guid), D);
  EXPECT_EQ(T.find(12345), nullptr);
}

TEST(Probe, ProbesDoNotChangeProgramResult) {
  auto M1 = makeCallerModule(50);
  auto M2 = makeCallerModule(50);
  insertProbes(*M2, AnchorKind::PseudoProbe);
  auto R1 = compileAndRun(*M1);
  auto R2 = compileAndRun(*M2);
  ASSERT_TRUE(R1.Completed);
  ASSERT_TRUE(R2.Completed);
  EXPECT_EQ(R1.ExitValue, R2.ExitValue);
  // Pseudo probes emit no machine instructions: identical dynamic counts.
  EXPECT_EQ(R1.Instructions, R2.Instructions);
}

TEST(Probe, CountersChangeCyclesButNotResult) {
  auto M1 = makeCallerModule(50);
  auto M2 = makeCallerModule(50);
  insertProbes(*M2, AnchorKind::InstrCounter);
  auto R1 = compileAndRun(*M1);
  auto R2 = compileAndRun(*M2);
  ASSERT_TRUE(R2.Completed);
  EXPECT_EQ(R1.ExitValue, R2.ExitValue);
  EXPECT_GT(R2.Instructions, R1.Instructions);
  EXPECT_GT(R2.Cycles, R1.Cycles);
}

//===- tests/SimModelTest.cpp - cost model & PMU unit tests -----*- C++ -*-===//

#include "sim/CostModel.h"
#include "sim/Sampler.h"

#include <gtest/gtest.h>

using namespace csspgo;

TEST(LBRRing, KeepsLastNOldestFirst) {
  LBRRing Ring(4);
  for (uint64_t I = 0; I != 10; ++I)
    Ring.record(I, I + 100);
  auto Snap = Ring.snapshot();
  ASSERT_EQ(Snap.size(), 4u);
  EXPECT_EQ(Snap.front().Src, 6u);
  EXPECT_EQ(Snap.back().Src, 9u);
  EXPECT_EQ(Snap.back().Dst, 109u);
}

TEST(LBRRing, PartialFill) {
  LBRRing Ring(16);
  Ring.record(1, 2);
  Ring.record(3, 4);
  auto Snap = Ring.snapshot();
  ASSERT_EQ(Snap.size(), 2u);
  EXPECT_EQ(Snap[0].Src, 1u);
  EXPECT_EQ(Snap[1].Src, 3u);
}

TEST(LBRRing, ClearEmpties) {
  LBRRing Ring(4);
  Ring.record(1, 2);
  Ring.clear();
  EXPECT_TRUE(Ring.snapshot().empty());
}

TEST(LBRRing, WraparoundOldestFirstAtDefaultDepth16) {
  // The masked wraparound arithmetic must preserve oldest-first order at
  // the default depth of 16, across several full wraps and at every
  // wrap phase.
  LBRRing Ring(16);
  ASSERT_EQ(Ring.depth(), 16u);
  for (uint64_t N : {17u, 31u, 32u, 48u, 53u}) {
    Ring.clear();
    for (uint64_t I = 0; I != N; ++I)
      Ring.record(I, I + 1000);
    auto Snap = Ring.snapshot();
    ASSERT_EQ(Snap.size(), 16u) << "after " << N << " records";
    for (uint64_t I = 0; I != 16; ++I) {
      EXPECT_EQ(Snap[I].Src, N - 16 + I) << "after " << N << " records";
      EXPECT_EQ(Snap[I].Dst, N - 16 + I + 1000);
    }
  }
}

TEST(LBRRing, DepthRoundsUpToPowerOfTwo) {
  EXPECT_EQ(LBRRing(1).depth(), 1u);
  EXPECT_EQ(LBRRing(5).depth(), 8u);
  EXPECT_EQ(LBRRing(16).depth(), 16u);
  EXPECT_EQ(LBRRing(17).depth(), 32u);
  EXPECT_EQ(LBRRing(0).depth(), 1u);
}

TEST(LBRRing, SnapshotIntoReusesBuffer) {
  LBRRing Ring(4);
  for (uint64_t I = 0; I != 6; ++I)
    Ring.record(I, I);
  std::vector<LBREntry> Buf;
  Ring.snapshotInto(Buf);
  ASSERT_EQ(Buf.size(), 4u);
  EXPECT_EQ(Buf.front().Src, 2u);
  // A second snapshot into the same buffer replaces, not appends.
  Ring.record(6, 6);
  Ring.snapshotInto(Buf);
  ASSERT_EQ(Buf.size(), 4u);
  EXPECT_EQ(Buf.front().Src, 3u);
  EXPECT_EQ(Buf.back().Src, 6u);
}

TEST(ICache, HitsAfterFill) {
  CostModel CM;
  ICache Cache(CM);
  EXPECT_TRUE(Cache.access(0x1000));  // Cold miss.
  EXPECT_FALSE(Cache.access(0x1000)); // Hit.
  EXPECT_FALSE(Cache.access(0x1020)); // Same 64B line.
  EXPECT_TRUE(Cache.access(0x1040));  // Next line.
}

TEST(ICache, AssociativityHoldsConflictingLines) {
  CostModel CM;
  CM.ICacheLines = 16;
  CM.ICacheWays = 4; // 4 sets.
  ICache Cache(CM);
  // Four lines mapping to the same set (stride = sets * linesize).
  uint64_t Stride = 4 * 64;
  for (int W = 0; W != 4; ++W)
    EXPECT_TRUE(Cache.access(0x1000 + W * Stride));
  for (int W = 0; W != 4; ++W)
    EXPECT_FALSE(Cache.access(0x1000 + W * Stride)) << "way " << W;
  // A fifth conflicting line evicts the LRU (the first one).
  EXPECT_TRUE(Cache.access(0x1000 + 4 * Stride));
  EXPECT_TRUE(Cache.access(0x1000));
}

TEST(ICache, ResetForgets) {
  CostModel CM;
  ICache Cache(CM);
  Cache.access(0x2000);
  Cache.reset();
  EXPECT_TRUE(Cache.access(0x2000));
}

TEST(BranchPredictor, LearnsBiasedBranch) {
  CostModel CM;
  BranchPredictor P(CM);
  // Warm up: always taken.
  int Misses = 0;
  for (int I = 0; I != 100; ++I)
    Misses += P.mispredicted(0x4000, true);
  EXPECT_LE(Misses, 2) << "2-bit counter must converge quickly";
}

TEST(BranchPredictor, AlternatingBranchMissesOften) {
  CostModel CM;
  BranchPredictor P(CM);
  int Misses = 0;
  for (int I = 0; I != 100; ++I)
    Misses += P.mispredicted(0x4000, I % 2 == 0);
  EXPECT_GE(Misses, 40);
}

TEST(CostModel, ExpensiveOpsCostMore) {
  CostModel CM;
  EXPECT_GT(CM.baseCost(Opcode::Div), CM.baseCost(Opcode::Add));
  EXPECT_GT(CM.baseCost(Opcode::Call), CM.baseCost(Opcode::Mov));
  EXPECT_EQ(CM.baseCost(Opcode::PseudoProbe), 0u)
      << "probes must be free at run time";
  EXPECT_GT(CM.baseCost(Opcode::InstrProfIncr), CM.baseCost(Opcode::Add))
      << "counters must cost real cycles";
}

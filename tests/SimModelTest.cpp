//===- tests/SimModelTest.cpp - cost model & PMU unit tests -----*- C++ -*-===//

#include "TestHelpers.h"
#include "codegen/Lowering.h"
#include "sim/CostModel.h"
#include "sim/Sampler.h"

#include <set>

#include <gtest/gtest.h>

using namespace csspgo;

TEST(LBRRing, KeepsLastNOldestFirst) {
  LBRRing Ring(4);
  for (uint64_t I = 0; I != 10; ++I)
    Ring.record(I, I + 100);
  auto Snap = Ring.snapshot();
  ASSERT_EQ(Snap.size(), 4u);
  EXPECT_EQ(Snap.front().Src, 6u);
  EXPECT_EQ(Snap.back().Src, 9u);
  EXPECT_EQ(Snap.back().Dst, 109u);
}

TEST(LBRRing, PartialFill) {
  LBRRing Ring(16);
  Ring.record(1, 2);
  Ring.record(3, 4);
  auto Snap = Ring.snapshot();
  ASSERT_EQ(Snap.size(), 2u);
  EXPECT_EQ(Snap[0].Src, 1u);
  EXPECT_EQ(Snap[1].Src, 3u);
}

TEST(LBRRing, ClearEmpties) {
  LBRRing Ring(4);
  Ring.record(1, 2);
  Ring.clear();
  EXPECT_TRUE(Ring.snapshot().empty());
}

TEST(LBRRing, WraparoundOldestFirstAtDefaultDepth16) {
  // The masked wraparound arithmetic must preserve oldest-first order at
  // the default depth of 16, across several full wraps and at every
  // wrap phase.
  LBRRing Ring(16);
  ASSERT_EQ(Ring.depth(), 16u);
  for (uint64_t N : {17u, 31u, 32u, 48u, 53u}) {
    Ring.clear();
    for (uint64_t I = 0; I != N; ++I)
      Ring.record(I, I + 1000);
    auto Snap = Ring.snapshot();
    ASSERT_EQ(Snap.size(), 16u) << "after " << N << " records";
    for (uint64_t I = 0; I != 16; ++I) {
      EXPECT_EQ(Snap[I].Src, N - 16 + I) << "after " << N << " records";
      EXPECT_EQ(Snap[I].Dst, N - 16 + I + 1000);
    }
  }
}

TEST(LBRRing, DepthRoundsUpToPowerOfTwo) {
  EXPECT_EQ(LBRRing(1).depth(), 1u);
  EXPECT_EQ(LBRRing(5).depth(), 8u);
  EXPECT_EQ(LBRRing(16).depth(), 16u);
  EXPECT_EQ(LBRRing(17).depth(), 32u);
  EXPECT_EQ(LBRRing(0).depth(), 1u);
}

TEST(LBRRing, SnapshotIntoReusesBuffer) {
  LBRRing Ring(4);
  for (uint64_t I = 0; I != 6; ++I)
    Ring.record(I, I);
  std::vector<LBREntry> Buf;
  Ring.snapshotInto(Buf);
  ASSERT_EQ(Buf.size(), 4u);
  EXPECT_EQ(Buf.front().Src, 2u);
  // A second snapshot into the same buffer replaces, not appends.
  Ring.record(6, 6);
  Ring.snapshotInto(Buf);
  ASSERT_EQ(Buf.size(), 4u);
  EXPECT_EQ(Buf.front().Src, 3u);
  EXPECT_EQ(Buf.back().Src, 6u);
}

TEST(ICache, HitsAfterFill) {
  CostModel CM;
  ICache Cache(CM);
  EXPECT_TRUE(Cache.access(0x1000));  // Cold miss.
  EXPECT_FALSE(Cache.access(0x1000)); // Hit.
  EXPECT_FALSE(Cache.access(0x1020)); // Same 64B line.
  EXPECT_TRUE(Cache.access(0x1040));  // Next line.
}

TEST(ICache, AssociativityHoldsConflictingLines) {
  CostModel CM;
  CM.ICacheLines = 16;
  CM.ICacheWays = 4; // 4 sets.
  ICache Cache(CM);
  // Four lines mapping to the same set (stride = sets * linesize).
  uint64_t Stride = 4 * 64;
  for (int W = 0; W != 4; ++W)
    EXPECT_TRUE(Cache.access(0x1000 + W * Stride));
  for (int W = 0; W != 4; ++W)
    EXPECT_FALSE(Cache.access(0x1000 + W * Stride)) << "way " << W;
  // A fifth conflicting line evicts the LRU (the first one).
  EXPECT_TRUE(Cache.access(0x1000 + 4 * Stride));
  EXPECT_TRUE(Cache.access(0x1000));
}

TEST(ICache, ResetForgets) {
  CostModel CM;
  ICache Cache(CM);
  Cache.access(0x2000);
  Cache.reset();
  EXPECT_TRUE(Cache.access(0x2000));
}

TEST(BranchPredictor, LearnsBiasedBranch) {
  CostModel CM;
  BranchPredictor P(CM);
  // Warm up: always taken.
  int Misses = 0;
  for (int I = 0; I != 100; ++I)
    Misses += P.mispredicted(0x4000, true);
  EXPECT_LE(Misses, 2) << "2-bit counter must converge quickly";
}

TEST(BranchPredictor, AlternatingBranchMissesOften) {
  CostModel CM;
  BranchPredictor P(CM);
  int Misses = 0;
  for (int I = 0; I != 100; ++I)
    Misses += P.mispredicted(0x4000, I % 2 == 0);
  EXPECT_GE(Misses, 40);
}

TEST(CostModel, ExpensiveOpsCostMore) {
  CostModel CM;
  EXPECT_GT(CM.baseCost(Opcode::Div), CM.baseCost(Opcode::Add));
  EXPECT_GT(CM.baseCost(Opcode::Call), CM.baseCost(Opcode::Mov));
  EXPECT_EQ(CM.baseCost(Opcode::PseudoProbe), 0u)
      << "probes must be free at run time";
  EXPECT_GT(CM.baseCost(Opcode::InstrProfIncr), CM.baseCost(Opcode::Add))
      << "counters must cost real cycles";
}

//===----------------------------------------------------------------------===//
// Cross-function / region-boundary i-cache accounting.
//
// These pin the layout-sensitive half of the cost model that post-link
// hot/cold splitting and function reordering rely on: a 64-byte line is
// charged exactly once no matter how many function or section boundaries
// cross it, untouched bytes interleaved with executed code are never
// charged, and relocating a region (hot -> far cold) changes i-cache cost
// and nothing else.
//===----------------------------------------------------------------------===//

namespace {

/// Distinct 64-byte i-cache lines containing at least one executed
/// instruction (requires ExecConfig::CollectInstCounts).
uint64_t executedLines(const Binary &Bin, const RunResult &R,
                       uint64_t LineBytes) {
  std::set<uint64_t> Lines;
  for (size_t I = 0; I != Bin.Code.size(); ++I)
    if (R.InstCounts[I])
      Lines.insert(Bin.Code[I].Addr / LineBytes);
  return Lines.size();
}

/// callee: straight-line chain of \p CalleeAdds adds; main: calls callee
/// once and returns its value; optional filler: large never-called body
/// whose hot section pads the distance to the cold region.
std::unique_ptr<Module> makeCallPairModule(int CalleeAdds, bool WithFiller) {
  auto M = std::make_unique<Module>("regions");

  Function *Callee = M->createFunction("callee", 1);
  {
    Builder B(Callee);
    BasicBlock *E = Callee->createBlock("entry");
    B.setInsertBlock(E);
    RegId R = B.emitBinary(Opcode::Add, Operand::reg(0), Operand::imm(1));
    for (int I = 1; I < CalleeAdds; ++I)
      R = B.emitBinary(Opcode::Add, Operand::reg(R), Operand::imm(1));
    B.emitRet(Operand::reg(R));
  }

  Function *Main = M->createFunction("main", 0);
  {
    Builder B(Main);
    BasicBlock *E = Main->createBlock("entry");
    B.setInsertBlock(E);
    RegId V = B.emitCall("callee", {Operand::imm(5)});
    B.emitRet(Operand::reg(V));
  }

  if (WithFiller) {
    Function *Filler = M->createFunction("filler", 0);
    Builder B(Filler);
    BasicBlock *E = Filler->createBlock("entry");
    B.setInsertBlock(E);
    RegId R = B.emitConst(0);
    for (int I = 0; I != 64; ++I)
      R = B.emitBinary(Opcode::Add, Operand::reg(R), Operand::imm(1));
    B.emitRet(Operand::reg(R));
  }

  M->EntryFunction = "main";
  return M;
}

RunResult runCounted(const Binary &Bin) {
  ExecConfig Config;
  Config.CollectInstCounts = true;
  std::vector<int64_t> Memory(256, 0);
  return execute(Bin, "main", Memory, Config);
}

} // namespace

TEST(RegionBoundary, SharedLineAtFunctionBoundaryChargedOnce) {
  // Two tiny functions whose sections share one 64-byte line: the call
  // into callee and the return fallthrough back into main cross a
  // function boundary twice, but the line is charged exactly once.
  auto M = makeCallPairModule(/*CalleeAdds=*/1, /*WithFiller=*/false);
  verifyOrDie(*M, "call pair");
  auto Bin = compileToBinary(*M);
  ASSERT_LE(Bin->textSize(), 64u)
      << "layout drifted; shrink the module so both functions share a line";

  RunResult R = runCounted(*Bin);
  ASSERT_TRUE(R.Completed) << R.Error;
  CostModel CM;
  ASSERT_EQ(executedLines(*Bin, R, CM.ICacheLineBytes), 1u);
  EXPECT_EQ(R.ICacheMisses, 1u)
      << "a line shared across a function boundary must be charged once";
}

TEST(RegionBoundary, MissesEqualExecutedLineFootprintWithDeadBytes) {
  // Branchy program far below i-cache capacity: every miss is a cold miss,
  // so the miss count must equal the number of distinct lines containing
  // executed instructions -- lines are charged on first touch even when
  // partially filled with never-executed (dead) bytes, and never re-charged
  // across call/return/branch boundaries.
  auto M = csspgo::testing::makeCallerModule(/*Iters=*/200);
  auto Bin = compileToBinary(*M);
  RunResult R = runCounted(*Bin);
  ASSERT_TRUE(R.Completed) << R.Error;

  CostModel CM;
  ASSERT_LT(Bin->textSize() / CM.ICacheLineBytes + 1,
            (uint64_t)CM.ICacheLines)
      << "program must fit in cache so every miss is a cold miss";
  EXPECT_EQ(R.ICacheMisses, executedLines(*Bin, R, CM.ICacheLineBytes));
}

TEST(RegionBoundary, ColdRegionMoveChangesOnlyICache) {
  // The invariant hot/cold splitting relies on: relocating a function body
  // from the hot region to the far cold region (past a large filler) may
  // only change i-cache behaviour. Instruction count, branch counts,
  // mispredicts and semantics are layout-independent, and the cycle delta
  // is exactly the extra cold misses times the miss penalty.
  auto M = makeCallPairModule(/*CalleeAdds=*/26, /*WithFiller=*/true);
  verifyOrDie(*M, "call pair with filler");
  std::vector<LoweredFunction> Lowered = lowerModule(*M);

  std::vector<LoweredFunction> ColdLowered = Lowered;
  for (LoweredFunction &LF : ColdLowered)
    if (LF.Name == "callee")
      LF.ColdStartLocal = 0; // whole body into the cold region

  auto HotBin = linkBinary(std::move(Lowered));
  auto ColdBin = linkBinary(std::move(ColdLowered));

  RunResult Hot = runCounted(*HotBin);
  RunResult Cold = runCounted(*ColdBin);
  ASSERT_TRUE(Hot.Completed) << Hot.Error;
  ASSERT_TRUE(Cold.Completed) << Cold.Error;

  EXPECT_EQ(Cold.ExitValue, Hot.ExitValue);
  EXPECT_EQ(Cold.Instructions, Hot.Instructions);
  EXPECT_EQ(Cold.TakenBranches, Hot.TakenBranches);
  EXPECT_EQ(Cold.CondBranches, Hot.CondBranches);
  EXPECT_EQ(Cold.Mispredicts, Hot.Mispredicts);

  CostModel CM;
  uint64_t HotLines = executedLines(*HotBin, Hot, CM.ICacheLineBytes);
  uint64_t ColdLines = executedLines(*ColdBin, Cold, CM.ICacheLineBytes);
  EXPECT_GT(ColdLines, HotLines)
      << "the far cold copy must stop sharing lines with main";
  EXPECT_EQ(Hot.ICacheMisses, HotLines);
  EXPECT_EQ(Cold.ICacheMisses, ColdLines);
  EXPECT_EQ(Cold.Cycles - Hot.Cycles,
            (Cold.ICacheMisses - Hot.ICacheMisses) * CM.ICacheMissPenalty)
      << "relocation must cost exactly the extra cold misses";
}

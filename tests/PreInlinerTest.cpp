//===- tests/PreInlinerTest.cpp - pre-inliner tests -------------*- C++ -*-===//

#include "preinline/PreInliner.h"
#include "preinline/ProfiledCallGraph.h"

#include <gtest/gtest.h>

using namespace csspgo;

namespace {

/// CS profile: main -> {svcA, svcB} -> shared, svcA hot, svcB cold.
ContextProfile makeTrie() {
  ContextProfile CS;
  auto AddNode = [&CS](const SampleContext &Ctx, uint64_t Total,
                       uint64_t CallSite = 0, const std::string &Callee = "",
                       uint64_t CallCount = 0) -> ContextTrieNode & {
    ContextTrieNode &N = CS.getOrCreateNode(Ctx);
    N.HasProfile = true;
    N.Profile.addBody({1, 0}, Total);
    if (!Callee.empty())
      N.Profile.addCall({static_cast<uint32_t>(CallSite), 0}, Callee,
                        CallCount);
    return N;
  };
  AddNode({{"main", 0}}, 100, 2, "svcA", 5000);
  CS.findNode({{"main", 0u}})->Profile.addCall({3, 0}, "svcB", 10);
  AddNode({{"main", 2}, {"svcA", 0}}, 5000, 4, "shared", 5000);
  AddNode({{"main", 3}, {"svcB", 0}}, 10, 4, "shared", 10);
  AddNode({{"main", 2}, {"svcA", 4}, {"shared", 0}}, 4800);
  AddNode({{"main", 3}, {"svcB", 4}, {"shared", 0}}, 9);
  return CS;
}

/// Size table where every context costs \p Bytes.
FuncSizeTable flatSizes(uint64_t Bytes) {
  FuncSizeTable T;
  for (const char *F : {"main", "svcA", "svcB", "shared"})
    T.add({{F, 0}}, Bytes);
  return T;
}

} // namespace

TEST(ProfiledCallGraph, EdgesFromCallsAndContexts) {
  ContextProfile CS = makeTrie();
  ProfiledCallGraph G = ProfiledCallGraph::fromProfile(CS);
  EXPECT_GT(G.edgeWeight("main", "svcA"), 0u);
  EXPECT_GT(G.edgeWeight("svcA", "shared"), 0u);
  EXPECT_EQ(G.edgeWeight("shared", "main"), 0u);
}

TEST(ProfiledCallGraph, TopDownOrderCallersFirst) {
  ContextProfile CS = makeTrie();
  ProfiledCallGraph G = ProfiledCallGraph::fromProfile(CS);
  auto Order = G.topDownOrder();
  auto Pos = [&Order](const std::string &N) {
    for (size_t I = 0; I != Order.size(); ++I)
      if (Order[I] == N)
        return I;
    return Order.size();
  };
  EXPECT_LT(Pos("main"), Pos("svcA"));
  EXPECT_LT(Pos("svcA"), Pos("shared"));
}

TEST(PreInliner, MarksHotContextsOnly) {
  ContextProfile CS = makeTrie();
  FuncSizeTable Sizes = flatSizes(100);
  PreInlinerOptions Opts;
  Opts.HotThreshold = 1000;
  PreInlinerStats Stats = runPreInliner(CS, Sizes, Opts);
  EXPECT_GE(Stats.ContextsMarkedInlined, 2u); // svcA chain.

  const ContextTrieNode *HotSvc = CS.findNode({{"main", 2u}, {"svcA", 0u}});
  ASSERT_NE(HotSvc, nullptr);
  EXPECT_TRUE(HotSvc->ShouldBeInlined);
  // The cold svcB context was merged into svcB's base, not marked.
  const ContextTrieNode *ColdSvc = CS.findNode({{"main", 3u}, {"svcB", 0u}});
  if (ColdSvc)
    EXPECT_FALSE(ColdSvc->ShouldBeInlined);
  const ContextTrieNode *Base = CS.findBase("svcB");
  ASSERT_NE(Base, nullptr);
  EXPECT_TRUE(Base->HasProfile);
}

TEST(PreInliner, SizeCapBlocksLargeCandidates) {
  ContextProfile CS = makeTrie();
  FuncSizeTable Sizes = flatSizes(100000); // Everything enormous.
  PreInlinerOptions Opts;
  Opts.HotThreshold = 1000;
  PreInlinerStats Stats = runPreInliner(CS, Sizes, Opts);
  EXPECT_EQ(Stats.ContextsMarkedInlined, 0u);
}

TEST(PreInliner, BudgetLimitsTotalGrowth) {
  ContextProfile CS = makeTrie();
  FuncSizeTable Sizes = flatSizes(300);
  PreInlinerOptions Opts;
  Opts.HotThreshold = 1;
  Opts.SizeLimitBytes = 350; // Room for barely one candidate.
  PreInlinerStats Stats = runPreInliner(CS, Sizes, Opts);
  // Each function may add at most one candidate (350 < 300*2).
  EXPECT_LE(Stats.ContextsMarkedInlined, 3u);
}

TEST(PreInliner, PromotionPreservesTotalSamples) {
  ContextProfile CS = makeTrie();
  uint64_t Before = CS.totalSamples();
  FuncSizeTable Sizes = flatSizes(100);
  PreInlinerOptions Opts;
  Opts.HotThreshold = 1000;
  runPreInliner(CS, Sizes, Opts);
  EXPECT_EQ(CS.totalSamples(), Before)
      << "moving context profiles to base must conserve samples";
}

TEST(SizeTable, AveragesAcrossCopies) {
  FuncSizeTable T;
  T.add({{"f", 0}}, 100);
  T.add({{"g", 1}, {"f", 0}}, 50);
  EXPECT_EQ(T.averageSizeFor("f"), 75u);
  // Unknown context falls back to the average.
  EXPECT_EQ(T.sizeForContext({{"h", 2}, {"f", 0}}), 75u);
  EXPECT_EQ(T.sizeForContext({{"unknown", 0}}), 0u);
}

//===- tests/TraceTest.cpp - core-instruction-trace tests -------*- C++ -*-===//
//
// The trace subsystem's property suite: packet round-trips, the headline
// bit-identity of trace-derived profiles with the PMU-sampling path, the
// TSC write-cost cross-check, clean rejection of corrupt or truncated
// streams, and the timing-aware transform gates the measured per-block
// timing feeds.
//
//===----------------------------------------------------------------------===//

#include "opt/PassManager.h"
#include "pgo/ProfilePipeline.h"
#include "probe/ProbeInserter.h"
#include "probe/ProbeTable.h"
#include "profile/ProfileIO.h"
#include "sim/Executor.h"
#include "trace/TraceDecoder.h"
#include "trace/TraceFormat.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <array>

using namespace csspgo;
using namespace csspgo::testing;

namespace {

/// main loops Iters times: a call to a branchy leaf plus an indirect call
/// through the function table (slot skewed toward 1), so traces carry TNT
/// and TIP packets and stacks have depth.
std::unique_ptr<Module> makeTraceModule(int64_t Iters) {
  auto M = std::make_unique<Module>("trace");
  addBranchyFunction(*M, "leaf");
  for (int T = 0; T != 3; ++T) {
    Function *F = M->createFunction("t" + std::to_string(T), 1);
    Builder B(F);
    BasicBlock *E = F->createBlock("entry");
    B.setInsertBlock(E);
    RegId R = B.emitBinary(Opcode::Add, Operand::reg(0),
                           Operand::imm(10 * (T + 1)));
    B.emitRet(Operand::reg(R));
    M->addFunctionTableEntry(F->getName());
  }

  Function *Main = M->createFunction("main", 0);
  Builder B(Main);
  BasicBlock *E = Main->createBlock("entry");
  BasicBlock *H = Main->createBlock("h");
  BasicBlock *Body = Main->createBlock("b");
  BasicBlock *X = Main->createBlock("x");
  B.setInsertBlock(E);
  RegId Acc = B.emitConst(0);
  RegId I = B.emitConst(0);
  B.emitBr(H);
  B.setInsertBlock(H);
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(I), Operand::imm(Iters));
  B.emitCondBr(Operand::reg(C), Body, X);
  B.setInsertBlock(Body);
  RegId L = B.emitCall("leaf", {Operand::reg(I)});
  RegId M10 = B.emitBinary(Opcode::Mod, Operand::reg(I), Operand::imm(10));
  RegId Hot = B.emitBinary(Opcode::CmpLT, Operand::reg(M10), Operand::imm(7));
  RegId M3 = B.emitBinary(Opcode::Mod, Operand::reg(I), Operand::imm(3));
  RegId Slot =
      B.emitSelect(Operand::reg(Hot), Operand::imm(1), Operand::reg(M3));
  RegId R = B.emitCallIndirect(Operand::reg(Slot), {Operand::reg(L)});
  B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(R));
  Body->Insts.back().Dst = Acc;
  B.emitBinary(Opcode::Add, Operand::reg(I), Operand::imm(1));
  Body->Insts.back().Dst = I;
  B.emitBr(H);
  B.setInsertBlock(X);
  B.emitRet(Operand::reg(Acc));
  M->EntryFunction = "main";
  insertProbes(*M, AnchorKind::PseudoProbe);
  verifyOrDie(*M, "trace test module");
  return M;
}

RunResult runWith(const Binary &Bin, const ExecConfig &Config) {
  std::vector<int64_t> Mem(4096, 0);
  return execute(Bin, "main", Mem, Config);
}

SamplerConfig testSampler(bool Precise = true, uint32_t Skid = 24) {
  SamplerConfig SC;
  SC.Enabled = true;
  SC.PeriodCycles = 97; // Small prime: dense samples on a small program.
  SC.Precise = Precise;
  SC.MaxSkidInstructions = Skid;
  SC.Seed = 11;
  return SC;
}

/// Runs the PMU-sampling configuration and the traced configuration of
/// the same binary, replays the trace against the sampler configuration,
/// and returns (sampled run, replay result).
struct TracedPair {
  RunResult Sampled;
  RunResult Traced;
  TraceReplayResult Replay;
};

TracedPair sampleAndReplay(const Binary &Bin, SamplerConfig SC,
                           CostModel Costs = {}, TraceConfig TC = {}) {
  TracedPair P;
  ExecConfig SampleCfg;
  SampleCfg.Costs = Costs;
  SampleCfg.Sampler = SC;
  P.Sampled = runWith(Bin, SampleCfg);

  ExecConfig TraceCfg;
  TraceCfg.Costs = Costs;
  TraceCfg.Trace = TC;
  TraceCfg.Trace.Enabled = true;
  P.Traced = runWith(Bin, TraceCfg);

  TraceReplayOptions RO;
  RO.Sampler = SC;
  RO.Costs = Costs;
  RO.Format = TraceCfg.Trace;
  Expected<TraceReplayResult> R =
      replayTrace(Bin, "main", P.Traced.Trace, RO);
  EXPECT_TRUE(static_cast<bool>(R)) << R.status().message();
  if (R)
    P.Replay = R.take();
  return P;
}

void expectSamplesIdentical(const std::vector<PerfSample> &A,
                            const std::vector<PerfSample> &B) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    ASSERT_EQ(A[I].LBR.size(), B[I].LBR.size()) << "sample " << I;
    for (size_t J = 0; J != A[I].LBR.size(); ++J) {
      EXPECT_EQ(A[I].LBR[J].Src, B[I].LBR[J].Src) << "sample " << I;
      EXPECT_EQ(A[I].LBR[J].Dst, B[I].LBR[J].Dst) << "sample " << I;
    }
    EXPECT_EQ(A[I].Stack, B[I].Stack) << "sample " << I;
  }
}

/// Key of the last probe in \p BB (what blockTiming looks up).
std::pair<uint64_t, uint32_t> probeKeyOf(const BasicBlock &BB) {
  const Instruction *P = nullptr;
  for (const Instruction &I : BB.Insts)
    if (I.isProbe())
      P = &I;
  EXPECT_NE(P, nullptr);
  return P ? std::make_pair(P->OriginGuid, P->ProbeId)
           : std::make_pair(uint64_t(0), uint32_t(0));
}

} // namespace

//===----------------------------------------------------------------------===//
// Varint encoding.
//===----------------------------------------------------------------------===//

TEST(TraceVarint, RoundTrip) {
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(127), uint64_t(128),
                     uint64_t(300), uint64_t(1) << 32, UINT64_MAX}) {
    std::vector<uint8_t> Bytes;
    traceAppendULEB128(Bytes, V);
    size_t Pos = 0;
    uint64_t Back = 0;
    ASSERT_TRUE(traceReadULEB128(Bytes, Pos, Back)) << V;
    EXPECT_EQ(Back, V);
    EXPECT_EQ(Pos, Bytes.size());
  }
}

TEST(TraceVarint, RejectsTruncationAndOverwideValues) {
  std::vector<uint8_t> Bytes;
  traceAppendULEB128(Bytes, UINT64_MAX);
  Bytes.pop_back(); // Continuation bit set on the new last byte.
  size_t Pos = 0;
  uint64_t V = 0;
  EXPECT_FALSE(traceReadULEB128(Bytes, Pos, V));

  // Ten continuation bytes encode more than 64 bits.
  std::vector<uint8_t> Wide(10, 0x80);
  Wide.push_back(0x01);
  Pos = 0;
  EXPECT_FALSE(traceReadULEB128(Wide, Pos, V));
}

//===----------------------------------------------------------------------===//
// Recording: perturbation is cycles-only and fully accounted.
//===----------------------------------------------------------------------===//

TEST(Trace, WriteCostIsTheOnlyPerturbation) {
  auto M = makeTraceModule(400);
  auto Bin = compileToBinary(*M);
  RunResult Plain = runWith(*Bin, {});
  ExecConfig TraceCfg;
  TraceCfg.Trace.Enabled = true;
  RunResult Traced = runWith(*Bin, TraceCfg);

  ASSERT_TRUE(Traced.Completed);
  EXPECT_FALSE(Traced.Trace.Truncated);
  EXPECT_GT(Traced.Trace.Packets, 0u);
  EXPECT_GT(Traced.Trace.BranchEvents, 0u);
  // Default TraceByteCost is 2 cycles/byte; every byte is charged.
  EXPECT_EQ(Traced.Trace.WriteCycles, 2 * Traced.Trace.Bytes.size());
  EXPECT_EQ(Traced.ExitValue, Plain.ExitValue);
  EXPECT_EQ(Traced.Instructions, Plain.Instructions);
  EXPECT_EQ(Traced.Cycles, Plain.Cycles + Traced.Trace.WriteCycles);
}

TEST(Trace, FastAndReferenceMachinesEmitIdenticalBytes) {
  auto M = makeTraceModule(300);
  auto Bin = compileToBinary(*M);
  ExecConfig Fast;
  Fast.Trace.Enabled = true;
  ExecConfig Ref = Fast;
  Ref.ReferenceMode = true;
  RunResult A = runWith(*Bin, Fast);
  RunResult B = runWith(*Bin, Ref);
  EXPECT_EQ(A.Trace.Bytes, B.Trace.Bytes);
  EXPECT_EQ(A.Trace.Packets, B.Trace.Packets);
  EXPECT_EQ(A.Cycles, B.Cycles);
}

//===----------------------------------------------------------------------===//
// Replay: the decoder reconstructs the sampling run exactly.
//===----------------------------------------------------------------------===//

TEST(Trace, ReplayReconstructsUnperturbedRun) {
  auto M = makeTraceModule(400);
  auto Bin = compileToBinary(*M);
  RunResult Plain = runWith(*Bin, {});
  TracedPair P = sampleAndReplay(*Bin, testSampler());
  ASSERT_TRUE(P.Replay.Completed);
  EXPECT_EQ(P.Replay.Instructions, Plain.Instructions);
  EXPECT_EQ(P.Replay.Cycles, Plain.Cycles);
  EXPECT_EQ(P.Replay.Mispredicts, Plain.Mispredicts);
  EXPECT_EQ(P.Replay.ICacheMisses, Plain.ICacheMisses);
  EXPECT_EQ(P.Replay.Calls, Plain.Calls);
  EXPECT_EQ(P.Replay.IndirectCalls, Plain.IndirectCalls);
}

TEST(Trace, ReplaySamplesMatchPreciseSamplingBitForBit) {
  auto M = makeTraceModule(500);
  auto Bin = compileToBinary(*M);
  TracedPair P = sampleAndReplay(*Bin, testSampler(/*Precise=*/true));
  ASSERT_TRUE(P.Replay.Completed);
  ASSERT_GT(P.Sampled.Samples.size(), 10u);
  expectSamplesIdentical(P.Replay.Samples, P.Sampled.Samples);
  EXPECT_EQ(P.Replay.TimestampMismatches, 0u);
  EXPECT_GT(P.Replay.Timestamps, 0u);
}

TEST(Trace, ReplaySamplesMatchSkiddedSampling) {
  auto M = makeTraceModule(500);
  auto Bin = compileToBinary(*M);
  for (uint32_t Skid : {24u, 4u, 0u}) { // 0 = the zero-skid regression.
    TracedPair P =
        sampleAndReplay(*Bin, testSampler(/*Precise=*/false, Skid));
    ASSERT_TRUE(P.Replay.Completed) << "skid " << Skid;
    ASSERT_FALSE(P.Sampled.Samples.empty()) << "skid " << Skid;
    expectSamplesIdentical(P.Replay.Samples, P.Sampled.Samples);
  }
}

TEST(Trace, ReplayMatchesUnderInterruptCostPerturbation) {
  auto M = makeTraceModule(500);
  auto Bin = compileToBinary(*M);
  CostModel Costs;
  Costs.SampleInterruptCost = 7; // Interrupt delivery shifts the clock.
  TracedPair P = sampleAndReplay(*Bin, testSampler(), Costs);
  ASSERT_TRUE(P.Replay.Completed);
  ASSERT_FALSE(P.Sampled.Samples.empty());
  expectSamplesIdentical(P.Replay.Samples, P.Sampled.Samples);
  // The replay's clock must agree with the perturbed sampling run's.
  EXPECT_EQ(P.Replay.Cycles, P.Sampled.Cycles);
}

TEST(Trace, UncompressedTimestampsValidateToo) {
  auto M = makeTraceModule(400);
  auto Bin = compileToBinary(*M);
  TraceConfig Compressed, Raw;
  Raw.CompressTimestamps = false;
  TracedPair A = sampleAndReplay(*Bin, testSampler(), {}, Compressed);
  TracedPair B = sampleAndReplay(*Bin, testSampler(), {}, Raw);
  ASSERT_TRUE(A.Replay.Completed);
  ASSERT_TRUE(B.Replay.Completed);
  EXPECT_EQ(A.Replay.TimestampMismatches, 0u);
  EXPECT_EQ(B.Replay.TimestampMismatches, 0u);
  // Raw 8-byte timestamps cost more wire than ULEB deltas.
  EXPECT_GT(B.Traced.Trace.Bytes.size(), A.Traced.Trace.Bytes.size());
  expectSamplesIdentical(A.Replay.Samples, B.Replay.Samples);
}

TEST(Trace, WrongReplayCostModelIsCaughtByTimestamps) {
  auto M = makeTraceModule(400);
  auto Bin = compileToBinary(*M);
  auto Traced = [&] {
    ExecConfig C;
    C.Trace.Enabled = true;
    return runWith(*Bin, C);
  }();
  TraceReplayOptions RO;
  RO.Sampler = testSampler();
  RO.Costs.TraceByteCost += 1; // Replaying under the wrong write cost.
  RO.Format.Enabled = true;
  Expected<TraceReplayResult> R =
      replayTrace(*Bin, "main", Traced.Trace, RO);
  ASSERT_TRUE(static_cast<bool>(R)) << R.status().message();
  // The cross-check flags every TSC packet, but control flow (and thus
  // the profile) is untouched: mismatches are diagnostics, not errors.
  EXPECT_TRUE(R->Completed);
  EXPECT_GT(R->TimestampMismatches, 0u);
  EXPECT_EQ(R->TimestampMismatches, R->Timestamps);
}

//===----------------------------------------------------------------------===//
// Profile bit-identity through the pipeline.
//===----------------------------------------------------------------------===//

TEST(Trace, PipelineProfileBitIdenticalToSamplingPath) {
  auto M = makeTraceModule(600);
  ProbeTable Probes = ProbeTable::fromModule(*M);
  auto Bin = compileToBinary(*M);

  SamplerConfig SC = testSampler();
  ExecConfig SampleCfg;
  SampleCfg.Sampler = SC;
  RunResult Sampled = runWith(*Bin, SampleCfg);
  ExecConfig TraceCfg;
  TraceCfg.Trace.Enabled = true;
  RunResult Traced = runWith(*Bin, TraceCfg);

  ProfilePipeline FromSamples{PipelineOptions()};
  Expected<ProfileBundle> A =
      FromSamples.generate(*Bin, &Probes, Sampled.Samples);
  ASSERT_TRUE(static_cast<bool>(A)) << A.status().message();

  TraceReplayOptions RO;
  RO.Sampler = SC;
  RO.Format = TraceCfg.Trace;
  ProfilePipeline FromTrace{PipelineOptions()};
  Expected<ProfileBundle> B =
      FromTrace.generate(*Bin, &Probes, Traced.Trace, RO);
  ASSERT_TRUE(static_cast<bool>(B)) << B.status().message();

  ASSERT_TRUE(A->IsCS);
  ASSERT_TRUE(B->IsCS);
  EXPECT_EQ(serializeContextProfile(A->CS), serializeContextProfile(B->CS));
  EXPECT_GT(A->CS.totalSamples(), 0u);

  // Only the trace path carries measured timing.
  EXPECT_EQ(A->Timing, nullptr);
  ASSERT_NE(B->Timing, nullptr);
  EXPECT_FALSE(B->Timing->empty());
  EXPECT_EQ(FromTrace.lastTraceReplay().TimestampMismatches, 0u);
}

//===----------------------------------------------------------------------===//
// Corruption and truncation.
//===----------------------------------------------------------------------===//

TEST(Trace, TruncatedTraceDecodesAsCleanPrefix) {
  auto M = makeTraceModule(600);
  auto Bin = compileToBinary(*M);
  ExecConfig C;
  C.Trace.Enabled = true;
  C.Trace.MaxBytes = 256; // Force truncation early.
  RunResult Traced = runWith(*Bin, C);
  ASSERT_TRUE(Traced.Trace.Truncated);
  ASSERT_LE(Traced.Trace.Bytes.size(), 256u);
  // Execution itself runs to completion; only recording stops.
  EXPECT_TRUE(Traced.Completed);

  TraceReplayOptions RO;
  RO.Sampler = testSampler();
  RO.Format = C.Trace;
  Expected<TraceReplayResult> R =
      replayTrace(*Bin, "main", Traced.Trace, RO);
  ASSERT_TRUE(static_cast<bool>(R)) << R.status().message();
  EXPECT_FALSE(R->Completed);
  EXPECT_TRUE(R->Truncated);
  EXPECT_GT(R->Instructions, 0u);
}

TEST(Trace, CorruptStreamsAreRejectedNotCrashed) {
  auto M = makeTraceModule(300);
  auto Bin = compileToBinary(*M);
  ExecConfig C;
  C.Trace.Enabled = true;
  RunResult Traced = runWith(*Bin, C);
  ASSERT_FALSE(Traced.Trace.Truncated);
  TraceReplayOptions RO;
  RO.Sampler = testSampler();
  RO.Format = C.Trace;

  // Unknown tag byte where a packet must start.
  TraceData BadTag = Traced.Trace;
  BadTag.Bytes[0] = 0x0f;
  EXPECT_FALSE(
      static_cast<bool>(replayTrace(*Bin, "main", BadTag, RO)));

  // Trailing garbage after the END packet.
  TraceData Trailing = Traced.Trace;
  Trailing.Bytes.push_back(0x00);
  EXPECT_FALSE(
      static_cast<bool>(replayTrace(*Bin, "main", Trailing, RO)));

  // END missing on a stream not marked truncated.
  TraceData NoEnd = Traced.Trace;
  NoEnd.Bytes.pop_back();
  EXPECT_FALSE(static_cast<bool>(replayTrace(*Bin, "main", NoEnd, RO)));
}

TEST(Trace, OutOfRangeTipCalleeIsRejected) {
  // A module whose very first branch event is the indirect call, so the
  // trace opens with a TIP packet we can corrupt surgically.
  auto M = std::make_unique<Module>("tip");
  Function *T0 = M->createFunction("t0", 1);
  {
    Builder B(T0);
    BasicBlock *E = T0->createBlock("entry");
    B.setInsertBlock(E);
    B.emitRet(Operand::reg(0));
    M->addFunctionTableEntry("t0");
  }
  Function *Main = M->createFunction("main", 0);
  {
    Builder B(Main);
    BasicBlock *E = Main->createBlock("entry");
    B.setInsertBlock(E);
    RegId R = B.emitCallIndirect(Operand::imm(0), {Operand::imm(5)});
    B.emitRet(Operand::reg(R));
  }
  M->EntryFunction = "main";
  verifyOrDie(*M, "tip test module");
  auto Bin = compileToBinary(*M);
  ExecConfig C;
  C.Trace.Enabled = true;
  RunResult Traced = runWith(*Bin, C);
  ASSERT_GE(Traced.Trace.Bytes.size(), 2u);
  ASSERT_EQ(Traced.Trace.Bytes[0], TraceTagTIP);

  TraceData Bad = Traced.Trace;
  // Replace the one-byte callee index with a huge ULEB value.
  Bad.Bytes[1] = 0xff;
  Bad.Bytes.insert(Bad.Bytes.begin() + 2, {0xff, 0x7f});
  TraceReplayOptions RO;
  RO.Sampler = testSampler();
  RO.Format = C.Trace;
  Expected<TraceReplayResult> R = replayTrace(*Bin, "main", Bad, RO);
  EXPECT_FALSE(static_cast<bool>(R));
}

//===----------------------------------------------------------------------===//
// Measured timing and the transform gates.
//===----------------------------------------------------------------------===//

TEST(Trace, TimingProfileIsSane) {
  auto M = makeTraceModule(500);
  auto Bin = compileToBinary(*M);
  RunResult Plain = runWith(*Bin, {});
  TracedPair P = sampleAndReplay(*Bin, testSampler());
  ASSERT_TRUE(P.Replay.Completed);
  ASSERT_FALSE(P.Replay.Timing.empty());

  uint64_t Cycles = 0, Mispredicts = 0, Executed = 0;
  for (const auto &[Key, St] : P.Replay.Timing.Blocks) {
    Executed += St.Executed;
    Cycles += St.Cycles;
    Mispredicts += St.Mispredicts;
  }
  EXPECT_GT(Executed, 0u);
  // Attribution hands out unperturbed cycles; it can never exceed the
  // unperturbed run's total, and conditional mispredicts are a subset of
  // all mispredicts.
  EXPECT_LE(Cycles, Plain.Cycles);
  EXPECT_GT(Cycles, 0u);
  EXPECT_LE(Mispredicts, Plain.Mispredicts);
}

TEST(TimingGate, IfConvertWeighsMeasuredArmLatency) {
  // Diamond with probes in the branch block and both arms. The gate
  // vetoes only when it has measurements for all three and executing the
  // skipped arm's measured latency every pass costs more than the
  // measured mispredict cycles plus the eliminated control flow. Missing
  // arm timing means the profiling binary converted the diamond itself
  // (dropping the arm probes), so the frequency-only decision stands.
  auto Make = [] {
    auto M = std::make_unique<Module>("m");
    Function *F = M->createFunction("main", 0);
    Builder B(F);
    BasicBlock *E = F->createBlock("entry");
    BasicBlock *P = F->createBlock("p");
    BasicBlock *Q = F->createBlock("q");
    BasicBlock *J = F->createBlock("j");
    B.setInsertBlock(E);
    RegId A = B.emitConst(40);
    RegId Cond = B.emitBinary(Opcode::And, Operand::reg(A), Operand::imm(1));
    B.emitCondBr(Operand::reg(Cond), P, Q);
    RegId R = F->allocReg();
    B.setInsertBlock(P);
    B.emitBinary(Opcode::Add, Operand::reg(A), Operand::imm(2));
    P->Insts.back().Dst = R;
    B.emitBr(J);
    B.setInsertBlock(Q);
    B.emitBinary(Opcode::Sub, Operand::reg(A), Operand::imm(2));
    Q->Insts.back().Dst = R;
    B.emitBr(J);
    B.setInsertBlock(J);
    B.emitRet(Operand::reg(R));
    M->EntryFunction = "main";
    insertProbes(*M, AnchorKind::PseudoProbe);
    return M;
  };

  auto Keys = [](Module &M) {
    Function *F = M.getFunction("main");
    return std::array{probeKeyOf(*F->Blocks[0]), probeKeyOf(*F->Blocks[1]),
                      probeKeyOf(*F->Blocks[2])};
  };

  {
    // Well-predicted branch guarding long-latency arms (20 cycles/exec):
    // skipping an arm is worth far more than the branch costs — veto.
    auto M = Make();
    auto [BK, PK, QK] = Keys(*M);
    TimingProfile T;
    T.Blocks[BK] = {1000, 3000, 0};
    T.Blocks[PK] = {500, 10000, 0};
    T.Blocks[QK] = {500, 10000, 0};
    OptOptions Opts;
    Opts.Timing = &T;
    EXPECT_EQ(runIfConvert(*M->getFunction("main"), Opts), 0u);
  }
  {
    // Same arms at 10 cycles/exec but a 40% mispredict rate: the
    // measured mispredict penalty outweighs the extra arm — convert.
    auto M = Make();
    auto [BK, PK, QK] = Keys(*M);
    TimingProfile T;
    T.Blocks[BK] = {1000, 3000, 400};
    T.Blocks[PK] = {500, 5000, 0};
    T.Blocks[QK] = {500, 5000, 0};
    OptOptions Opts;
    Opts.Timing = &T;
    EXPECT_EQ(runIfConvert(*M->getFunction("main"), Opts), 1u);
  }
  {
    // Well-predicted branch but tiny arms (4 cycles/exec): eliminating
    // the control flow still wins — convert even with zero mispredicts.
    auto M = Make();
    auto [BK, PK, QK] = Keys(*M);
    TimingProfile T;
    T.Blocks[BK] = {1000, 3000, 0};
    T.Blocks[PK] = {500, 2000, 0};
    T.Blocks[QK] = {500, 2000, 0};
    OptOptions Opts;
    Opts.Timing = &T;
    EXPECT_EQ(runIfConvert(*M->getFunction("main"), Opts), 1u);
  }
  {
    // Branch measured but arms unmeasured: the profiling binary already
    // converted this diamond, so its stats describe the converted form —
    // no veto.
    auto M = Make();
    auto [BK, PK, QK] = Keys(*M);
    (void)PK;
    (void)QK;
    TimingProfile T;
    T.Blocks[BK] = {1000, 3000, 0};
    OptOptions Opts;
    Opts.Timing = &T;
    EXPECT_EQ(runIfConvert(*M->getFunction("main"), Opts), 1u);
  }
  {
    auto M = Make(); // No timing: frequency-only behavior unchanged.
    OptOptions Opts;
    EXPECT_EQ(runIfConvert(*M->getFunction("main"), Opts), 1u);
  }
}

TEST(TimingGate, UnrollVetoedOnLongLatencyBody) {
  auto Make = [] {
    auto M = std::make_unique<Module>("m");
    addLoopFunction(*M, "looper");
    M->EntryFunction = "looper";
    insertProbes(*M, AnchorKind::PseudoProbe);
    return M;
  };
  OptOptions Opts;
  Opts.UnrollFactor = 2;

  {
    auto M = Make();
    Function *L = M->getFunction("looper");
    TimingProfile T;
    // 100 cycles/iteration in each block: the removed back-edge jump's 2
    // cycles are a sliver of the iteration — reject.
    T.Blocks[probeKeyOf(*L->Blocks[1])] = {100, 10000, 0};
    T.Blocks[probeKeyOf(*L->Blocks[2])] = {100, 10000, 0};
    OptOptions Gated = Opts;
    Gated.Timing = &T;
    EXPECT_EQ(runLoopUnroll(*L, Gated), 0u);
  }
  {
    auto M = Make();
    Function *L = M->getFunction("looper");
    TimingProfile T;
    // 2 cycles/iteration per block: the jump dominates — unroll.
    T.Blocks[probeKeyOf(*L->Blocks[1])] = {100, 200, 0};
    T.Blocks[probeKeyOf(*L->Blocks[2])] = {100, 200, 0};
    OptOptions Gated = Opts;
    Gated.Timing = &T;
    EXPECT_EQ(runLoopUnroll(*L, Gated), 1u);
  }
  {
    auto M = Make(); // No timing: frequency-only behavior unchanged.
    Function *L = M->getFunction("looper");
    EXPECT_EQ(runLoopUnroll(*L, Opts), 1u);
  }
}

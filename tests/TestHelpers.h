//===- tests/TestHelpers.h - Shared test fixtures ---------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small IR programs shared across unit tests: a branchy leaf function, a
/// caller/callee pair, and a loop, plus a helper to compile and run them.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_TESTS_TESTHELPERS_H
#define CSSPGO_TESTS_TESTHELPERS_H

#include "codegen/Linker.h"
#include "ir/Builder.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "sim/Executor.h"

#include <memory>

namespace csspgo::testing {

/// Builds:
///   func branchy(x):            // diamond: x < 10 ? x+1 : x*2, then ret
inline Function *addBranchyFunction(Module &M, const std::string &Name) {
  Function *F = M.createFunction(Name, 1);
  Builder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Join = F->createBlock("join");

  B.setInsertBlock(Entry);
  RegId Result = B.emitConst(0);
  RegId Cond = B.emitBinary(Opcode::CmpLT, Operand::reg(0), Operand::imm(10));
  B.emitCondBr(Operand::reg(Cond), Then, Else);

  // Both arms write the shared Result register.
  B.setInsertBlock(Then);
  B.emitBinary(Opcode::Add, Operand::reg(0), Operand::imm(1));
  Then->Insts.back().Dst = Result;
  B.emitBr(Join);

  B.setInsertBlock(Else);
  B.emitBinary(Opcode::Mul, Operand::reg(0), Operand::imm(2));
  Else->Insts.back().Dst = Result;
  B.emitBr(Join);

  B.setInsertBlock(Join);
  B.emitRet(Operand::reg(Result));
  return F;
}

/// Builds a counting loop:
///   func looper(n): s=0; for(i=0;i<n;i++) s+=i; ret s
inline Function *addLoopFunction(Module &M, const std::string &Name) {
  Function *F = M.createFunction(Name, 1);
  Builder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");

  B.setInsertBlock(Entry);
  RegId S = B.emitConst(0);
  RegId I = B.emitConst(0);
  B.emitBr(Header);

  B.setInsertBlock(Header);
  RegId Cond = B.emitBinary(Opcode::CmpLT, Operand::reg(I), Operand::reg(0));
  B.emitCondBr(Operand::reg(Cond), Body, Exit);

  B.setInsertBlock(Body);
  // s += i; i += 1 (write back into the same registers via Mov).
  RegId S2 = B.emitBinary(Opcode::Add, Operand::reg(S), Operand::reg(I));
  BasicBlock *BodyBB = B.getInsertBlock();
  BodyBB->Insts.back().Dst = S; // In-place accumulate.
  RegId I2 = B.emitBinary(Opcode::Add, Operand::reg(I), Operand::imm(1));
  BodyBB->Insts.back().Dst = I;
  (void)S2;
  (void)I2;
  B.emitBr(Header);

  B.setInsertBlock(Exit);
  B.emitRet(Operand::reg(S));
  return F;
}

/// Builds a module whose entry calls `leaf` N times in a loop:
///   func main(): acc=0; for(i=0;i<Iters;i++) acc+=leaf(i); ret acc
inline std::unique_ptr<Module> makeCallerModule(int64_t Iters) {
  auto M = std::make_unique<Module>("test");
  addBranchyFunction(*M, "leaf");

  Function *Main = M->createFunction("main", 0);
  Builder B(Main);
  BasicBlock *Entry = Main->createBlock("entry");
  BasicBlock *Header = Main->createBlock("header");
  BasicBlock *Body = Main->createBlock("body");
  BasicBlock *Exit = Main->createBlock("exit");

  B.setInsertBlock(Entry);
  RegId Acc = B.emitConst(0);
  RegId I = B.emitConst(0);
  B.emitBr(Header);

  B.setInsertBlock(Header);
  RegId Cond =
      B.emitBinary(Opcode::CmpLT, Operand::reg(I), Operand::imm(Iters));
  B.emitCondBr(Operand::reg(Cond), Body, Exit);

  B.setInsertBlock(Body);
  RegId Ret = B.emitCall("leaf", {Operand::reg(I)});
  RegId Acc2 = B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(Ret));
  Body->Insts.back().Dst = Acc;
  RegId I2 = B.emitBinary(Opcode::Add, Operand::reg(I), Operand::imm(1));
  Body->Insts.back().Dst = I;
  (void)Acc2;
  (void)I2;
  B.emitBr(Header);

  B.setInsertBlock(Exit);
  B.emitRet(Operand::reg(Acc));

  M->EntryFunction = "main";
  return M;
}

/// Compiles and runs \p M; asserts verification.
inline RunResult compileAndRun(const Module &M, ExecConfig Config = {},
                               uint64_t MemWords = 4096) {
  verifyOrDie(M, "in compileAndRun");
  auto Bin = compileToBinary(M);
  std::vector<int64_t> Memory(MemWords, 0);
  return execute(*Bin, M.EntryFunction, Memory, Config);
}

} // namespace csspgo::testing

#endif // CSSPGO_TESTS_TESTHELPERS_H

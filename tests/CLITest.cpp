//===- tests/CLITest.cpp - csspgo_exp CLI surface tests ---------*- C++ -*-===//
//
// Golden-output tests for the documented CLI surface: the `--help` text
// of every subcommand is pinned verbatim, so any change to the surface
// (flags, operands, semantics) must update the goldens consciously. Plus
// unit tests for the shared flag parser every subcommand goes through.
//
//===----------------------------------------------------------------------===//

#include "ExpCLI.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace csspgo;

namespace {

/// The global-options block, pinned once; every subcommand's help ends
/// with it (that IS the "flags are uniform across subcommands" contract).
const char *const GlobalBlock =
    "global options (every subcommand):\n"
    "  -j, --parallelism N   profile-generation / ingestion shards\n"
    "  --format F            profile transport: "
    "memory|text|binary|binary-lazy\n"
    "  --decay P             ingest decay permille (1000 = plain merge)\n"
    "  --timestamp T         ingest epoch timestamp\n"
    "  --compact             guid name table for written stores\n"
    "  --json                machine-readable output where supported\n";

std::string helpFor(const char *Name) {
  const cli::SubcommandInfo *S = cli::findSubcommand(Name);
  EXPECT_NE(S, nullptr) << Name;
  return S ? cli::helpText(*S) : std::string();
}

/// Mutable argv for the destructive parsers.
struct Argv {
  explicit Argv(std::vector<std::string> Args) : Strings(std::move(Args)) {
    Ptrs.push_back(const_cast<char *>("csspgo_exp"));
    for (std::string &S : Strings)
      Ptrs.push_back(S.data());
    Count = static_cast<int>(Ptrs.size());
  }
  std::vector<std::string> Strings;
  std::vector<char *> Ptrs;
  int Count = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Golden help text, every subcommand.
//===----------------------------------------------------------------------===//

TEST(CLIGolden, GlobalOptionsBlock) {
  EXPECT_EQ(cli::globalOptionsText(), GlobalBlock);
}

TEST(CLIGolden, HelpRun) {
  EXPECT_EQ(helpFor("run"),
            std::string("usage: csspgo_exp run <workload> <variant> [scale]\n"
                        "  end-to-end PGO run\n"
                        "\n"
                        "with --postlink, additionally stacks the post-link "
                        "optimizer on\n"
                        "the optimized binary (the `bolt` pipeline with "
                        "default knobs) and\n"
                        "reports both measurements.\n"
                        "\n"
                        "with --mode, selects how the csspgo variant's "
                        "training profile is\n"
                        "collected: sample (PMU sampling, the default), "
                        "trace (core-\n"
                        "instruction trace replay, plus measured per-block "
                        "timing for the\n"
                        "transform gates) or instr (counters).\n"
                        "\n"
                        "with --json, prints one machine-readable object "
                        "instead: the run\n"
                        "header plus the unified pipeline stats (profgen, "
                        "reduce, loader,\n"
                        "verify) in stable key order.\n"
                        "\n") +
                GlobalBlock);
}

TEST(CLIGolden, HelpTrace) {
  EXPECT_EQ(
      helpFor("trace"),
      std::string(
          "usage: csspgo_exp trace <workload> [scale]\n"
          "  trace-mode diagnostics and sampling-path cross-check\n"
          "\n"
          "collects a core-instruction trace of the training run (TNT/TIP\n"
          "packets, delta-compressed timestamps), replays it into a "
          "context\n"
          "profile and cross-checks it against the PMU-sampling path: the "
          "two\n"
          "profiles must be bit-identical whenever frequencies suffice.\n"
          "Prints trace size and compression, the replay's timestamp\n"
          "validation, per-mode profiling overhead and the measured "
          "per-block\n"
          "timing summary; exits nonzero on a profile mismatch.\n"
          "\n"
          "flags:\n"
          "  --every N       timestamp every N branch events (default 32)\n"
          "  --max-kb N      trace buffer bound in KiB (default 65536)\n"
          "  --no-compress   raw 8-byte timestamps instead of deltas\n"
          "\n") +
          GlobalBlock);
}

TEST(CLIGolden, HelpBolt) {
  EXPECT_EQ(
      helpFor("bolt"),
      std::string(
          "usage: csspgo_exp bolt <workload> <variant> [scale]\n"
          "  post-link optimize the variant's binary, then re-evaluate\n"
          "\n"
          "rewrites the already-linked binary BOLT-style: reconstructs "
          "the\n"
          "binary CFG (gated on a byte-identical disassemble->reassemble\n"
          "round trip), maps training-run LBR samples onto it, folds\n"
          "identical bodies, reorders blocks along Ext-TSP and splits\n"
          "never-executed code into the cold region. `bolt <workload> "
          "none`\n"
          "is the BOLT-only ablation cell; a PGO variant gives the "
          "stacked\n"
          "PGO+BOLT cell.\n"
          "\n"
          "flags:\n"
          "  --no-fold       keep duplicate function bodies\n"
          "  --no-reorder    keep the compiler's block layout\n"
          "  --no-split      keep never-executed code in the hot section\n"
          "  --min-mapped P  permille of LBR endpoints that must resolve\n"
          "                  before the layout transforms run (default "
          "500)\n"
          "\n") +
          GlobalBlock);
}

TEST(CLIGolden, HelpProfile) {
  EXPECT_EQ(helpFor("profile"),
            std::string(
                "usage: csspgo_exp profile <workload> <variant> [scale]\n"
                "  print the profile text\n"
                "\n") +
                GlobalBlock);
}

TEST(CLIGolden, HelpCompare) {
  EXPECT_EQ(helpFor("compare"),
            std::string("usage: csspgo_exp compare <workload> [scale]\n"
                        "  all variants side by side\n"
                        "\n") +
                GlobalBlock);
}

TEST(CLIGolden, HelpIR) {
  EXPECT_EQ(helpFor("ir"),
            std::string("usage: csspgo_exp ir <workload> [scale]\n"
                        "  dump the generated IR\n"
                        "\n") +
                GlobalBlock);
}

TEST(CLIGolden, HelpConvert) {
  EXPECT_EQ(helpFor("convert"),
            std::string("usage: csspgo_exp convert <in> <out>\n"
                        "  convert a profile between text and binary store\n"
                        "\n"
                        "direction is inferred from the input bytes; "
                        "--compact selects guid\n"
                        "name tables for written stores.\n"
                        "\n") +
                GlobalBlock);
}

TEST(CLIGolden, HelpStore) {
  EXPECT_EQ(helpFor("store"),
            std::string("usage: csspgo_exp store inspect [--layout] <file> "
                        "| ingest <file> <workload> <variant> [scale]\n"
                        "  inspect a store / fold in a fresh epoch\n"
                        "\n"
                        "inspect --layout additionally prints the physical "
                        "file layout:\n"
                        "every section's absolute offset and size plus the "
                        "per-function\n"
                        "payload tiles the zero-copy readers address "
                        "directly.\n"
                        "\n"
                        "ingest honors --decay, --timestamp and --compact; "
                        "the fold is\n"
                        "verifier-gated and the file is untouched when the "
                        "gate rejects it.\n"
                        "\n") +
                GlobalBlock);
}

TEST(CLIGolden, HelpFuzz) {
  EXPECT_EQ(helpFor("fuzz"),
            std::string("usage: csspgo_exp fuzz [iterations] [seed]\n"
                        "  differential fuzzing\n"
                        "\n") +
                GlobalBlock);
}

TEST(CLIGolden, HelpServe) {
  EXPECT_EQ(
      helpFor("serve"),
      std::string(
          "usage: csspgo_exp serve [flags]\n"
          "  run the continuous-profiling fleet service\n"
          "\n"
          "streams a simulated fleet end to end: each epoch every host's\n"
          "samples are profiled on one of K ingestion shards (-j), reduced "
          "in\n"
          "host order and folded into its service's binary store\n"
          "(verifier-gated, --decay weighted). Prints the fleet dashboard\n"
          "(text, or JSON with --json) after every pass and serves forever\n"
          "unless told otherwise.\n"
          "\n"
          "flags:\n"
          "  --hosts N           fleet size (default 32)\n"
          "  --services N        distinct services (default 3)\n"
          "  --epochs N          epochs per pass (default 8)\n"
          "  --seed N            fleet seed (default 1)\n"
          "  --scale S           workload scale, permille (default 50)\n"
          "  --queue-bound N     ingestion queue capacity (default 16)\n"
          "  --drift-every N     deploy a drifted release every N epochs\n"
          "  --exit-after-drain  exit after one drained pass\n"
          "\n") +
          GlobalBlock);
}

TEST(CLIGolden, HelpFleet) {
  EXPECT_EQ(helpFor("fleet"),
            std::string("usage: csspgo_exp fleet [flags]\n"
                        "  one drained pass, dashboard only\n"
                        "\n"
                        "equivalent to `serve --exit-after-drain`; accepts "
                        "the same flags.\n"
                        "\n") +
                GlobalBlock);
}

TEST(CLIGolden, HelpTrain) {
  EXPECT_EQ(
      helpFor("train"),
      std::string(
          "usage: csspgo_exp train [scale]\n"
          "  longitudinal release-train staleness simulation\n"
          "\n"
          "simulates a release train: the workload source evolves through\n"
          "--releases seeded drift plans, and each release is built with "
          "the\n"
          "previous release's profile under the selected stale-profile\n"
          "policies (drop / match / ingest), scored against a per-release\n"
          "plain build and a fresh-profile oracle. Prints the per-release\n"
          "trajectory and its aggregates (one stable JSON object with\n"
          "--json); exits nonzero when any release fails Full profile\n"
          "verification or changes program semantics.\n"
          "\n"
          "-j shards the train's builds; any job count is bit-identical.\n"
          "--decay weights the ingest policy's store folds.\n"
          "\n"
          "flags:\n"
          "  --archetype W   workload preset, e.g. one of the archetypes\n"
          "                  RpcFanout|InterpLoop|ColdBoot (default "
          "AdRanker)\n"
          "  --releases N    train length (default 4)\n"
          "  --policy P      drop|match|ingest|all (default all)\n"
          "  --variant V     PGO variant under test (default csspgo)\n"
          "  --postlink      add the PGO+BOLT column: each oracle binary\n"
          "                  rewritten from one-release-stale samples\n"
          "  --seed N        drift-plan seed (default 1)\n"
          "\n") +
          GlobalBlock);
}

TEST(CLIGolden, HelpList) {
  EXPECT_EQ(helpFor("list"),
            std::string("usage: csspgo_exp list\n"
                        "  workloads and variants\n"
                        "\n") +
                GlobalBlock);
}

TEST(CLIGolden, UsageListsEverySubcommandAndEndsWithGlobals) {
  std::string U = cli::usageText();
  size_t Count = 0;
  const cli::SubcommandInfo *Subs = cli::subcommands(Count);
  EXPECT_EQ(Count, 13u);
  size_t Prev = 0;
  for (size_t I = 0; I != Count; ++I) {
    size_t Pos = U.find(std::string("csspgo_exp ") + Subs[I].Name);
    EXPECT_NE(Pos, std::string::npos) << Subs[I].Name;
    EXPECT_GT(Pos, Prev) << "table order must match display order";
    Prev = Pos;
  }
  EXPECT_NE(U.find(GlobalBlock), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Shared flag parsing.
//===----------------------------------------------------------------------===//

TEST(CLIFlags, GlobalFlagsStripUniformly) {
  Argv A({"run", "AdRanker", "csspgo", "-j", "4", "--format", "binary-lazy",
          "--decay", "700", "--timestamp", "42", "--compact", "--json"});
  cli::GlobalOptions G;
  std::string Err;
  ASSERT_TRUE(cli::parseGlobalFlags(A.Count, A.Ptrs.data(), G, Err)) << Err;
  EXPECT_EQ(G.Parallelism, 4u);
  EXPECT_EQ(G.Transport, ProfileTransport::BinaryLazy);
  EXPECT_EQ(G.DecayPermille, 700u);
  EXPECT_EQ(G.EpochTimestamp, 42u);
  EXPECT_TRUE(G.CompactNames);
  EXPECT_TRUE(G.JSON);
  // Only positionals remain, order preserved.
  ASSERT_EQ(A.Count, 4);
  EXPECT_STREQ(A.Ptrs[1], "run");
  EXPECT_STREQ(A.Ptrs[2], "AdRanker");
  EXPECT_STREQ(A.Ptrs[3], "csspgo");
}

TEST(CLIFlags, MalformedValuesAreRejectedWithADiagnostic) {
  for (std::vector<std::string> Bad :
       {std::vector<std::string>{"run", "--decay", "1400"},
        std::vector<std::string>{"run", "--format", "carrier-pigeon"},
        std::vector<std::string>{"run", "-j", "many"}}) {
    Argv A(Bad);
    cli::GlobalOptions G;
    std::string Err;
    EXPECT_FALSE(cli::parseGlobalFlags(A.Count, A.Ptrs.data(), G, Err));
    EXPECT_FALSE(Err.empty());
  }
}

// Regression: strtoull silently wraps negative inputs into huge
// magnitudes ("-3" -> 2^64 - 3), so `-j -3` used to parse as a
// 19-digit shard count and `--decay -1` as more-than-plain merge.
// parseUnsigned must reject a leading '-' (and leading whitespace,
// which strtoull also skips) outright.
TEST(CLIFlags, NegativeAndPaddedValuesAreRejected) {
  unsigned long long N = 0;
  EXPECT_FALSE(cli::parseUnsigned("-3", N));
  EXPECT_FALSE(cli::parseUnsigned("-0", N));
  EXPECT_FALSE(cli::parseUnsigned(" 5", N));
  EXPECT_FALSE(cli::parseUnsigned("\t5", N));
  EXPECT_TRUE(cli::parseUnsigned("5", N));
  EXPECT_EQ(N, 5u);

  for (std::vector<std::string> Bad :
       {std::vector<std::string>{"run", "-j", "-3"},
        std::vector<std::string>{"run", "--decay", "-1"},
        std::vector<std::string>{"run", "--timestamp", "-42"}}) {
    Argv A(Bad);
    cli::GlobalOptions G;
    std::string Err;
    EXPECT_FALSE(cli::parseGlobalFlags(A.Count, A.Ptrs.data(), G, Err))
        << Bad[1] << " " << Bad[2];
    EXPECT_FALSE(Err.empty());
  }
}

TEST(CLIFlags, TakeValueFlagConsumesValueOrReportsMissing) {
  Argv A({"run", "AdRanker", "csspgo", "--mode", "trace"});
  std::string Mode, Err;
  ASSERT_TRUE(cli::takeValueFlag(A.Count, A.Ptrs.data(), "--mode", Mode, Err));
  EXPECT_EQ(Mode, "trace");
  EXPECT_EQ(A.Count, 4); // Flag and value consumed.

  Argv B({"run", "AdRanker", "csspgo"});
  Mode.clear();
  ASSERT_TRUE(cli::takeValueFlag(B.Count, B.Ptrs.data(), "--mode", Mode, Err));
  EXPECT_TRUE(Mode.empty()); // Absent: untouched.

  Argv C({"run", "AdRanker", "csspgo", "--mode"});
  EXPECT_FALSE(
      cli::takeValueFlag(C.Count, C.Ptrs.data(), "--mode", Mode, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(CLIFlags, UnknownFlagsAreLeftForTheSubcommand) {
  Argv A({"serve", "--hosts", "8", "--exit-after-drain"});
  cli::GlobalOptions G;
  std::string Err;
  ASSERT_TRUE(cli::parseGlobalFlags(A.Count, A.Ptrs.data(), G, Err));
  EXPECT_EQ(A.Count, 5); // Untouched: serve parses these itself.
  EXPECT_STREQ(cli::firstFlag(A.Count, A.Ptrs.data()), "--hosts");

  unsigned long long Hosts = 32;
  ASSERT_TRUE(
      cli::takeUnsignedFlag(A.Count, A.Ptrs.data(), "--hosts", Hosts, Err));
  EXPECT_EQ(Hosts, 8u);
  EXPECT_TRUE(cli::takeBoolFlag(A.Count, A.Ptrs.data(), "--exit-after-drain"));
  EXPECT_FALSE(
      cli::takeBoolFlag(A.Count, A.Ptrs.data(), "--exit-after-drain"));
  EXPECT_EQ(cli::firstFlag(A.Count, A.Ptrs.data()), nullptr);
  EXPECT_EQ(A.Count, 2); // Just the subcommand name left.
}

TEST(CLIFlags, TakeUnsignedFlagLeavesDefaultWhenAbsent) {
  Argv A({"serve"});
  unsigned long long N = 123;
  std::string Err;
  ASSERT_TRUE(cli::takeUnsignedFlag(A.Count, A.Ptrs.data(), "--epochs", N,
                                    Err));
  EXPECT_EQ(N, 123u);
  Argv B({"serve", "--epochs", "oops"});
  EXPECT_FALSE(
      cli::takeUnsignedFlag(B.Count, B.Ptrs.data(), "--epochs", N, Err));
}

TEST(CLIFlags, FindSubcommandAndMinOperands) {
  EXPECT_EQ(cli::findSubcommand("nope"), nullptr);
  const cli::SubcommandInfo *Run = cli::findSubcommand("run");
  ASSERT_NE(Run, nullptr);
  EXPECT_EQ(Run->MinOperands, 2);
  EXPECT_TRUE(Run->LocalFlags); // run parses --postlink itself.
  const cli::SubcommandInfo *Bolt = cli::findSubcommand("bolt");
  ASSERT_NE(Bolt, nullptr);
  EXPECT_EQ(Bolt->MinOperands, 2);
  EXPECT_TRUE(Bolt->LocalFlags);
  const cli::SubcommandInfo *Serve = cli::findSubcommand("serve");
  ASSERT_NE(Serve, nullptr);
  EXPECT_TRUE(Serve->LocalFlags);
  const cli::SubcommandInfo *Train = cli::findSubcommand("train");
  ASSERT_NE(Train, nullptr);
  EXPECT_EQ(Train->MinOperands, 0);
  EXPECT_TRUE(Train->LocalFlags); // train parses --releases etc. itself.
}

//===- tests/StoreTest.cpp - binary profile store tests ---------*- C++ -*-===//
//
// The store's contract in three parts: (1) the container is lossless —
// text -> binary -> text reproduces the input, loading what was written
// and re-writing it is byte-identical, and Guid/Checksum metadata the
// text format drops survives; (2) the reader rejects every truncation and
// bit-flip at open() with a diagnostic, never a crash; (3) ingestEpoch's
// decay algebra matches the plain merge at decay 1.0, replacement at
// decay 0.0, respects saturation, and every folded store still passes
// strict Full verification (including head/call-edge conservation, which
// the cumulative-rounding scaler preserves by construction).
//
//===----------------------------------------------------------------------===//

#include "codegen/Linker.h"
#include "ir/Printer.h"
#include "loader/ProfileLoader.h"
#include "probe/ProbeInserter.h"
#include "probe/ProbeTable.h"
#include "profgen/ProfileGenerator.h"
#include "profile/ProfileIO.h"
#include "profile/ProfileMerge.h"
#include "profile/ProfileSummary.h"
#include "sim/Executor.h"
#include "store/ProfileStore.h"
#include "verify/ProfileVerifier.h"
#include "workload/ProgramGenerator.h"

#include <gtest/gtest.h>

using namespace csspgo;

namespace {

/// A two-function sampled probe profile whose head/call edges conserve:
/// main calls foo 40 times, and foo's head count is exactly 40.
FlatProfile sampledFlat() {
  FlatProfile P;
  P.Kind = ProfileKind::ProbeBased;
  FunctionProfile &Main = P.getOrCreate("main");
  Main.addBody({1, 0}, 100);
  Main.addBody({2, 0}, 60);
  Main.addCall({2, 0}, "foo", 40);
  FunctionProfile &Foo = P.getOrCreate("foo");
  Foo.HeadSamples = 40;
  Foo.addBody({1, 0}, 40);
  return P;
}

/// Line-based flat profile exercising discriminators, inlinee nesting and
/// multi-target call sites.
FlatProfile lineFlat() {
  FlatProfile P;
  P.Kind = ProfileKind::LineBased;
  FunctionProfile &Main = P.getOrCreate("main");
  Main.addBody({1, 0}, 50);
  Main.addBody({1, 2}, 7);
  Main.addCall({3, 1}, "a", 20);
  Main.addCall({3, 1}, "b", 10);
  FunctionProfile &Inl = Main.getOrCreateInlinee({4, 0}, "leaf");
  Inl.addBody({1, 0}, 12);
  Inl.addCall({2, 0}, "a", 5);
  FunctionProfile &A = P.getOrCreate("a");
  A.HeadSamples = 25;
  A.addBody({1, 0}, 25);
  FunctionProfile &B = P.getOrCreate("b");
  B.HeadSamples = 10;
  B.addBody({1, 0}, 10);
  return P;
}

WorkloadConfig smallWC() {
  WorkloadConfig C;
  C.Seed = 9;
  C.Requests = 40;
  C.NumServices = 2;
  C.NumMids = 5;
  C.NumUtils = 4;
  return C;
}

/// Generated program + samples + profiles of the requested kind, shared by
/// the CS/loader tests.
struct GeneratedSetup {
  std::unique_ptr<Module> M;
  std::unique_ptr<Binary> Bin;
  ProbeTable PT;
  std::vector<PerfSample> Samples;

  GeneratedSetup() : M(generateProgram(smallWC())) {
    insertProbes(*M, AnchorKind::PseudoProbe);
    Bin = compileToBinary(*M);
    PT = ProbeTable::fromModule(*M);
    ExecConfig EC;
    EC.Sampler.Enabled = true;
    EC.Sampler.PeriodCycles = 997;
    EC.Sampler.Seed = 9;
    auto Mem = generateInput(smallWC(), 9);
    RunResult Train = execute(*Bin, "main", Mem, EC);
    Samples = Train.Samples;
  }

  ProfGenResult generate(ProfGenKind Kind) const {
    ProfGenOptions GO;
    GO.Kind = Kind;
    GO.Verify = VerifyLevel::Full;
    return ProfileGenerator(*Bin, &PT, GO).generate(Samples);
  }
};

ProfileStore openOrDie(const std::string &Bytes) {
  Expected<ProfileStore> S = ProfileStore::open(Bytes);
  EXPECT_TRUE(bool(S)) << S.status().message();
  return S ? S.take() : ProfileStore();
}

FlatProfile loadFlatOrDie(const ProfileStore &S) {
  Expected<FlatProfile> P = S.loadFlat();
  EXPECT_TRUE(bool(P)) << P.status().message();
  return P ? P.take() : FlatProfile();
}

ContextProfile loadContextOrDie(const ProfileStore &S) {
  Expected<ContextProfile> P = S.loadContext();
  EXPECT_TRUE(bool(P)) << P.status().message();
  return P ? P.take() : ContextProfile();
}

} // namespace

//===----------------------------------------------------------------------===//
// Lossless round trips.
//===----------------------------------------------------------------------===//

TEST(Store, FlatRoundTripIsLossless) {
  for (FlatProfile P : {sampledFlat(), lineFlat()}) {
    std::string Bytes = writeStore(P, {{123, P.totalSamples(), 1000}});
    ProfileStore S = openOrDie(Bytes);
    EXPECT_EQ(S.isCS(), false);
    EXPECT_EQ(S.kind(), P.Kind);
    EXPECT_EQ(S.numFunctions(), P.Functions.size());
    EXPECT_EQ(S.totalSamples(), P.totalSamples());

    FlatProfile Back = loadFlatOrDie(S);
    EXPECT_EQ(serializeFlatProfile(Back), serializeFlatProfile(P));

    // Binary fixpoint: writing what was loaded is byte-identical.
    EXPECT_EQ(writeStore(Back, {{123, P.totalSamples(), 1000}}), Bytes);
  }
}

TEST(Store, TextToBinaryToTextIsIdentity) {
  std::string Text = serializeFlatProfile(lineFlat());
  FlatProfile Parsed;
  ASSERT_TRUE(parseFlatProfile(Text, Parsed));
  ProfileStore S = openOrDie(writeStore(Parsed, {}));
  EXPECT_EQ(serializeFlatProfile(loadFlatOrDie(S)), Text);
}

TEST(Store, GuidAndChecksumSurviveUnlikeText) {
  FlatProfile P = sampledFlat();
  P.getOrCreate("main").Guid = 0xDEADBEEF12345678ull;
  P.getOrCreate("main").Checksum = 42;

  // The text format drops top-level Guid...
  FlatProfile Reparsed;
  ASSERT_TRUE(parseFlatProfile(serializeFlatProfile(P), Reparsed));
  EXPECT_EQ(Reparsed.Functions.at("main").Guid, 0u);

  // ...the store keeps it, including an explicit zero.
  ProfileStore S = openOrDie(writeStore(P, {}));
  FlatProfile Back = loadFlatOrDie(S);
  EXPECT_EQ(Back.Functions.at("main").Guid, 0xDEADBEEF12345678ull);
  EXPECT_EQ(Back.Functions.at("main").Checksum, 42u);
  EXPECT_EQ(Back.Functions.at("foo").Guid, 0u);
}

TEST(Store, CSRoundTripIsLossless) {
  GeneratedSetup G;
  ASSERT_FALSE(G.Samples.empty());
  ProfGenResult Res = G.generate(ProfGenKind::CS);
  ASSERT_TRUE(Res.IsCS);
  ASSERT_TRUE(Res.Verify.ok()) << Res.Verify.str();

  std::string Bytes = writeStore(Res.CS, {{7, Res.CS.totalSamples(), 1000}});
  ProfileStore S = openOrDie(Bytes);
  EXPECT_TRUE(S.isCS());
  EXPECT_EQ(S.kind(), ProfileKind::ProbeBased);

  ContextProfile Back = loadContextOrDie(S);
  EXPECT_EQ(serializeContextProfile(Back), serializeContextProfile(Res.CS));
  EXPECT_EQ(writeStore(Back, {{7, Res.CS.totalSamples(), 1000}}), Bytes);

  // The reconstructed trie passes strict verification against the probe
  // table of the producing build.
  VerifierOptions VO;
  VO.Probes = &G.PT;
  VerifyReport R = verifyContextProfile(Back, VO);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(Store, EmptyProfileRoundTrips) {
  FlatProfile Empty;
  ProfileStore S = openOrDie(writeStore(Empty, {}));
  EXPECT_EQ(S.numFunctions(), 0u);
  EXPECT_EQ(S.totalSamples(), 0u);
  EXPECT_TRUE(S.epochs().empty());
  EXPECT_TRUE(loadFlatOrDie(S).Functions.empty());
}

//===----------------------------------------------------------------------===//
// The per-function index: lazy loads, lookups, totals.
//===----------------------------------------------------------------------===//

TEST(Store, LazyUnionEqualsEagerLoad) {
  FlatProfile P = lineFlat();
  ProfileStore S = openOrDie(writeStore(P, {}));

  FlatProfile Union;
  for (size_t I = 0; I != S.numFunctions(); ++I) {
    Status St = S.loadFunction(I, Union);
    ASSERT_TRUE(St.ok()) << St.message();
  }
  EXPECT_EQ(serializeFlatProfile(Union), serializeFlatProfile(P));

  // A single-function load materializes exactly that function, with the
  // totals the index advertised.
  int MainIdx = S.findFunction("main");
  ASSERT_GE(MainIdx, 0);
  FlatProfile One;
  Status St = S.loadFunction(MainIdx, One);
  ASSERT_TRUE(St.ok()) << St.message();
  EXPECT_EQ(One.Functions.size(), 1u);
  EXPECT_EQ(One.Functions.at("main").TotalSamples,
            S.functionTotalSamples(MainIdx));
}

TEST(Store, FunctionLookupByNameAndGuid) {
  FlatProfile P = sampledFlat();
  ProfileStore S = openOrDie(writeStore(P, {}));
  int Foo = S.findFunction("foo");
  ASSERT_GE(Foo, 0);
  EXPECT_EQ(S.functionName(Foo), "foo");
  EXPECT_EQ(S.functionTotalSamples(Foo), 40u);
  EXPECT_EQ(S.findFunction("ghost"), -1);
  EXPECT_EQ(S.findFunctionByGuid(S.functionGuid(Foo)), Foo);
}

TEST(Store, HotThresholdMatchesProfileSummary) {
  GeneratedSetup G;
  ASSERT_FALSE(G.Samples.empty());
  ProfGenResult Flat = G.generate(ProfGenKind::ProbeOnly);
  ProfGenResult CS = G.generate(ProfGenKind::CS);
  ProfileStore SF = openOrDie(writeStore(Flat.Flat, {}));
  ProfileStore SC = openOrDie(writeStore(CS.CS, {}));
  for (double Cutoff : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(SF.hotThreshold(Cutoff), hotThreshold(Flat.Flat, Cutoff));
    EXPECT_EQ(SC.hotThreshold(Cutoff), hotThreshold(CS.CS, Cutoff));
  }
}

TEST(Store, CompactNamesShrinkTheTableAndResolve) {
  // Long C++-style names make the GUID table the clear winner.
  FlatProfile P;
  P.Kind = ProfileKind::LineBased;
  std::vector<std::string> Names;
  for (int I = 0; I != 8; ++I) {
    Names.push_back("namespace_alpha::ClassWithALongName" +
                    std::to_string(I) + "::method_with_a_long_name");
    P.getOrCreate(Names.back()).addBody({1, 0}, 10 + I);
  }
  StoreWriteOptions Compact;
  Compact.CompactNames = true;
  std::string Full = writeStore(P, {});
  std::string Small = writeStore(P, {}, Compact);
  EXPECT_LT(Small.size(), Full.size());

  ProfileStore S = openOrDie(Small);
  EXPECT_TRUE(S.compactNames());
  // Unresolved compact names are stable placeholders...
  EXPECT_EQ(S.functionName(0).rfind("guid.", 0), 0u);
  EXPECT_EQ(S.findFunction(Names[0]), -1);

  // ...and resolve against a module carrying the real functions.
  Module M("resolver");
  for (const std::string &N : Names)
    M.createFunction(N, 0);
  S.resolveNames(M);
  int Idx = S.findFunction(Names[3]);
  ASSERT_GE(Idx, 0);
  FlatProfile Back;
  Status St = S.loadFunction(Idx, Back);
  ASSERT_TRUE(St.ok()) << St.message();
  EXPECT_EQ(Back.Functions.at(Names[3]).bodyAt({1, 0}), 13u);
}

//===----------------------------------------------------------------------===//
// Corruption rejection. Every truncation and bit-flip fails open() with a
// diagnostic; nothing reaches the load path.
//===----------------------------------------------------------------------===//

TEST(Store, EveryTruncationIsRejected) {
  std::string Bytes = writeStore(sampledFlat(), {{1, 240, 1000}});
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    Expected<ProfileStore> S = ProfileStore::open(Bytes.substr(0, Len));
    EXPECT_FALSE(bool(S)) << "prefix of " << Len << " bytes accepted";
    EXPECT_FALSE(S.status().message().empty());
  }
}

TEST(Store, BitFlipsAreRejected) {
  std::string Bytes = writeStore(lineFlat(), {{1, 129, 1000}});
  // Flip one bit in every byte position; the content hash (or the header
  // validation for the hash field itself) must catch each one.
  for (size_t Pos = 0; Pos != Bytes.size(); ++Pos) {
    std::string Bad = Bytes;
    Bad[Pos] = static_cast<char>(Bad[Pos] ^ 0x10);
    EXPECT_FALSE(bool(ProfileStore::open(Bad)))
        << "flip at byte " << Pos << " accepted";
  }
}

//===----------------------------------------------------------------------===//
// Continuous ingestion: decay algebra and post-ingest verification.
//===----------------------------------------------------------------------===//

TEST(StoreIngest, DecayOneEqualsPlainMerge) {
  FlatProfile Epoch = sampledFlat();
  std::string Bytes;
  IngestOptions IO;
  IO.Timestamp = 100;
  IngestResult R1 = ingestEpoch(Bytes, Epoch, IO);
  ASSERT_TRUE(R1.Ok) << R1.Error;
  IO.Timestamp = 200;
  IngestResult R2 = ingestEpoch(Bytes, Epoch, IO);
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(R2.EpochsNow, 2u);

  FlatProfile Merged = sampledFlat();
  mergeFlatProfiles(Merged, Epoch);

  ProfileStore S = openOrDie(Bytes);
  EXPECT_EQ(serializeFlatProfile(loadFlatOrDie(S)),
            serializeFlatProfile(Merged));
}

TEST(StoreIngest, DecayZeroReplacesTheAggregate) {
  std::string Bytes;
  IngestOptions IO;
  IO.Timestamp = 1;
  ASSERT_TRUE(ingestEpoch(Bytes, sampledFlat(), IO).Ok);

  FlatProfile Second;
  Second.Kind = ProfileKind::ProbeBased;
  Second.getOrCreate("fresh_only").addBody({1, 0}, 9);
  IO.Timestamp = 2;
  IO.DecayPermille = 0;
  IngestResult R = ingestEpoch(Bytes, Second, IO);
  ASSERT_TRUE(R.Ok) << R.Error;

  ProfileStore S = openOrDie(Bytes);
  // The prior aggregate is gone; only the fresh epoch remains. The epoch
  // history still records both folds.
  EXPECT_EQ(serializeFlatProfile(loadFlatOrDie(S)),
            serializeFlatProfile(Second));
  ASSERT_EQ(S.epochs().size(), 2u);
  EXPECT_EQ(S.epochs()[1].DecayPermille, 0u);
}

TEST(StoreIngest, HalfDecayPassesStrictVerification) {
  // The decay scaler must preserve the verifier's *exact* head == target
  // edge equation, which naive per-slot rounding breaks. Fold the same
  // edge-conserving profile several times at decay 0.5 and re-verify the
  // loaded aggregate independently at Full level.
  std::string Bytes;
  IngestOptions IO;
  IO.DecayPermille = 500;
  for (uint64_t T = 1; T <= 4; ++T) {
    IO.Timestamp = T;
    IngestResult R = ingestEpoch(Bytes, sampledFlat(), IO);
    ASSERT_TRUE(R.Ok) << "epoch " << T << ": " << R.Error;
    EXPECT_TRUE(R.Verify.ok()) << R.Verify.str();
  }
  ProfileStore S = openOrDie(Bytes);
  FlatProfile Back = loadFlatOrDie(S);
  VerifyReport R = verifyFlatProfile(Back);
  EXPECT_TRUE(R.ok()) << R.str();
  // Geometric series: 100 * (1 + 1/2 + 1/4 + 1/8) = 187 or 188 after
  // rounding — decayed history converges instead of growing unboundedly.
  uint64_t MainBody = Back.Functions.at("main").bodyAt({1, 0});
  EXPECT_GE(MainBody, 186u);
  EXPECT_LE(MainBody, 189u);
}

TEST(StoreIngest, CSIngestKeepsTrieVerified) {
  GeneratedSetup G;
  ASSERT_FALSE(G.Samples.empty());
  ProfGenResult Res = G.generate(ProfGenKind::CS);
  ASSERT_TRUE(Res.Verify.ok()) << Res.Verify.str();

  std::string Bytes;
  IngestOptions IO;
  IO.DecayPermille = 500;
  IO.Timestamp = 10;
  IngestResult R1 = ingestEpoch(Bytes, Res.CS, IO);
  ASSERT_TRUE(R1.Ok) << R1.Error;
  IO.Timestamp = 20;
  IngestResult R2 = ingestEpoch(Bytes, Res.CS, IO);
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_TRUE(R2.Verify.ok()) << R2.Verify.str();

  // Independent strict re-verification of the loaded trie, including the
  // probe-table agreement the ingest path does not have access to.
  ProfileStore S = openOrDie(Bytes);
  ASSERT_TRUE(S.isCS());
  ContextProfile Back = loadContextOrDie(S);
  VerifierOptions VO;
  VO.Probes = &G.PT;
  VerifyReport R = verifyContextProfile(Back, VO);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(StoreIngest, CountsSaturateInsteadOfWrapping) {
  FlatProfile Huge;
  Huge.Kind = ProfileKind::LineBased;
  FunctionProfile &F = Huge.getOrCreate("hot");
  F.addBody({1, 0}, UINT64_MAX - 5);

  std::string Bytes;
  ASSERT_TRUE(ingestEpoch(Bytes, Huge).Ok);
  IngestResult R = ingestEpoch(Bytes, Huge);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.Merge.SaturatedCounts, 0u);

  ProfileStore S = openOrDie(Bytes);
  FlatProfile Back = loadFlatOrDie(S);
  EXPECT_EQ(Back.Functions.at("hot").bodyAt({1, 0}), UINT64_MAX);
  EXPECT_EQ(Back.Functions.at("hot").TotalSamples, UINT64_MAX);
}

TEST(StoreIngest, EpochMetadataPersists) {
  std::string Bytes;
  IngestOptions IO;
  for (uint64_t T : {11u, 22u, 33u}) {
    IO.Timestamp = T;
    IO.DecayPermille = T == 33 ? 750 : 1000;
    ASSERT_TRUE(ingestEpoch(Bytes, sampledFlat(), IO).Ok);
  }
  ProfileStore S = openOrDie(Bytes);
  ASSERT_EQ(S.epochs().size(), 3u);
  EXPECT_EQ(S.epochs()[0].Timestamp, 11u);
  EXPECT_EQ(S.epochs()[2].Timestamp, 33u);
  EXPECT_EQ(S.epochs()[2].DecayPermille, 750u);
  EXPECT_EQ(S.epochs()[0].TotalSamples, sampledFlat().totalSamples());
}

TEST(StoreIngest, MismatchedEpochsFailCleanly) {
  std::string Bytes;
  ASSERT_TRUE(ingestEpoch(Bytes, sampledFlat()).Ok); // probe-based
  std::string Before = Bytes;

  FlatProfile Line = lineFlat();
  IngestResult Kind = ingestEpoch(Bytes, Line);
  EXPECT_FALSE(Kind.Ok);
  EXPECT_FALSE(Kind.Error.empty());
  EXPECT_EQ(Bytes, Before); // Failed ingests never touch the store.

  GeneratedSetup G;
  ProfGenResult CS = G.generate(ProfGenKind::CS);
  IngestResult Shape = ingestEpoch(Bytes, CS.CS);
  EXPECT_FALSE(Shape.Ok);
  EXPECT_FALSE(Shape.Error.empty());
  EXPECT_EQ(Bytes, Before);
}

//===----------------------------------------------------------------------===//
// Loader integration: store-backed loads annotate bit-identically to the
// direct in-memory load, lazily or eagerly.
//===----------------------------------------------------------------------===//

TEST(StoreLoader, LazyEagerAndDirectLoadsAnnotateIdentically) {
  GeneratedSetup G;
  ASSERT_FALSE(G.Samples.empty());
  ProfGenResult Res = G.generate(ProfGenKind::ProbeOnly);
  ASSERT_FALSE(Res.IsCS);

  auto freshModule = [] {
    auto M = generateProgram(smallWC());
    insertProbes(*M, AnchorKind::PseudoProbe);
    return M;
  };

  auto Direct = freshModule();
  LoaderStats DS = loadFlatProfile(*Direct, Res.Flat, /*IsInstr=*/false);

  std::string Bytes =
      writeStore(Res.Flat, {{0, Res.Flat.totalSamples(), 1000}});
  ProfileStore S1 = openOrDie(Bytes);
  auto Lazy = freshModule();
  Expected<LoaderStats> LSE = loadProfileFromStore(*Lazy, S1, {}, true);
  ASSERT_TRUE(bool(LSE)) << LSE.status().message();
  LoaderStats LS = LSE.take();

  ProfileStore S2 = openOrDie(Bytes);
  auto Eager = freshModule();
  Expected<LoaderStats> ESE = loadProfileFromStore(*Eager, S2, {}, false);
  ASSERT_TRUE(bool(ESE)) << ESE.status().message();
  LoaderStats ES = ESE.take();

  std::string Want = printModule(*Direct);
  EXPECT_EQ(printModule(*Lazy), Want);
  EXPECT_EQ(printModule(*Eager), Want);
  EXPECT_EQ(LS.HotThresholdUsed, DS.HotThresholdUsed);
  EXPECT_EQ(LS.InlinedCallsites, DS.InlinedCallsites);
  EXPECT_GT(LS.StoreFunctionsMaterialized, 0u);
  EXPECT_EQ(ES.StoreFunctionsSkipped, 0u);
}

TEST(StoreLoader, LazyLoadSkipsFunctionsAbsentFromTheModule) {
  GeneratedSetup G;
  ASSERT_FALSE(G.Samples.empty());
  ProfGenResult Res = G.generate(ProfGenKind::ProbeOnly);

  // A module with only "main" materializes one function and skips the
  // rest — the lazy-loading payoff.
  Module M("partial");
  M.createFunction("main", 0)->createBlock("entry");
  ProfileStore S = openOrDie(writeStore(Res.Flat, {}));
  Expected<LoaderStats> LS = loadProfileFromStore(M, S);
  ASSERT_TRUE(bool(LS)) << LS.status().message();
  EXPECT_EQ(LS->StoreFunctionsMaterialized, 1u);
  EXPECT_EQ(LS->StoreFunctionsMaterialized + LS->StoreFunctionsSkipped,
            S.numFunctions());
}

//===- tests/ServiceTest.cpp - continuous-profiling service tests -*- C++ -*-===//
//
// Property suite for the fleet service and its ingestion front:
//
//   (a) K-shard ingestion is bit-identical to serial for any K — the
//       stores are a pure function of the config, never of scheduling.
//   (b) A slow consumer never grows the queue past its bound: push()
//       blocking IS the backpressure, and the high-water mark proves it.
//   (c) Epoch fold order under decay is deterministic for a fixed seed —
//       decay makes the fold non-commutative, so this is the property
//       that makes multi-epoch aggregates reproducible at all.
//
//===----------------------------------------------------------------------===//

#include "service/ProfileService.h"
#include "store/ProfileStore.h"
#include "support/BoundedQueue.h"
#include "workload/FleetSim.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace csspgo;

namespace {

/// Small but non-trivial fleet: two services, three hosts each, enough
/// epochs for decay folding to matter.
ServiceConfig smallFleet(unsigned Shards = 1) {
  ServiceConfig SC;
  SC.Fleet.Hosts = 6;
  SC.Fleet.Services = 2;
  SC.Fleet.Epochs = 3;
  SC.Fleet.RequestScale = 0.04;
  SC.Shards = Shards;
  SC.DecayPermille = 900;
  return SC;
}

std::vector<std::string> runAndCollectStores(const ServiceConfig &SC,
                                             unsigned Epochs) {
  ProfileService Svc(SC);
  Status St = Svc.run(Epochs);
  EXPECT_TRUE(St.ok()) << St.message();
  std::vector<std::string> Stores;
  for (unsigned S = 0; S != SC.Fleet.Services; ++S)
    Stores.push_back(Svc.store(S));
  return Stores;
}

} // namespace

//===----------------------------------------------------------------------===//
// FleetSim: the deterministic workload model under the service.
//===----------------------------------------------------------------------===//

TEST(FleetSim, TaskStreamIsAPureFunctionOfConfig) {
  FleetConfig FC;
  FC.Hosts = 8;
  FC.Services = 3;
  FleetSim A(FC), B(FC);
  for (unsigned E = 0; E != 4; ++E) {
    std::vector<HostTask> TA = A.epochTasks(E), TB = B.epochTasks(E);
    ASSERT_EQ(TA.size(), TB.size());
    ASSERT_EQ(TA.size(), FC.Hosts);
    for (size_t I = 0; I != TA.size(); ++I) {
      // Ascending host order: the canonical reduction order.
      EXPECT_EQ(TA[I].Host, static_cast<unsigned>(I));
      EXPECT_EQ(TA[I].InputSeed, TB[I].InputSeed);
      EXPECT_EQ(TA[I].SamplerSeed, TB[I].SamplerSeed);
      EXPECT_EQ(TA[I].SamplePeriodCycles, TB[I].SamplePeriodCycles);
    }
  }
}

TEST(FleetSim, SeedsAreDistinctPerHostAndEpoch) {
  FleetSim Sim({});
  std::vector<uint64_t> Seeds;
  for (unsigned E = 0; E != 3; ++E)
    for (const HostTask &T : Sim.epochTasks(E))
      Seeds.push_back(T.InputSeed);
  std::sort(Seeds.begin(), Seeds.end());
  EXPECT_EQ(std::adjacent_find(Seeds.begin(), Seeds.end()), Seeds.end())
      << "hosts/epochs must see distinct request streams";
}

TEST(FleetSim, DiurnalLoadIsBoundedAndPhaseShifted) {
  FleetConfig FC;
  FC.Services = 3;
  FC.DiurnalPeriod = 8;
  FC.DiurnalAmplitudePermille = 400;
  FleetSim Sim(FC);
  bool AnyPhaseDiff = false;
  for (unsigned E = 0; E != FC.DiurnalPeriod; ++E) {
    for (unsigned S = 0; S != FC.Services; ++S) {
      uint32_t L = Sim.loadPermille(S, E);
      EXPECT_GE(L, 600u);
      EXPECT_LE(L, 1400u);
      if (L != Sim.loadPermille(0, E))
        AnyPhaseDiff = true;
    }
  }
  EXPECT_TRUE(AnyPhaseDiff) << "services must not peak in lockstep";
}

TEST(FleetSim, LoadModulatesSamplingPeriod) {
  FleetConfig FC;
  FC.Hosts = 4;
  FC.Services = 2;
  FleetSim Sim(FC);
  // Busier host => shorter sampling period (more samples), by construction
  // Period = Base * 1000 / Load.
  for (unsigned E = 0; E != 4; ++E)
    for (const HostTask &T : Sim.epochTasks(E)) {
      uint64_t Expect = FC.BaseSamplePeriod * 1000 / T.LoadPermille;
      EXPECT_EQ(T.SamplePeriodCycles, std::max<uint64_t>(1, Expect));
    }
}

//===----------------------------------------------------------------------===//
// (b) BoundedQueue: backpressure and drain semantics.
//===----------------------------------------------------------------------===//

TEST(BoundedQueue, SlowConsumerNeverExceedsBound) {
  BoundedQueue<int> Q(4);
  std::atomic<int> Received{0};
  std::thread Producer([&] {
    for (int I = 0; I != 100; ++I)
      ASSERT_TRUE(Q.push(I));
    Q.close();
  });
  std::thread Consumer([&] {
    int ExpectNext = 0;
    while (std::optional<int> V = Q.pop()) {
      // Slow consumer: the producer must stall at the bound, not race by.
      if (ExpectNext % 10 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      EXPECT_EQ(*V, ExpectNext++) << "FIFO order violated";
      ++Received;
    }
  });
  Producer.join();
  Consumer.join();
  EXPECT_EQ(Received.load(), 100);
  EXPECT_LE(Q.highWater(), 4u) << "backpressure failed: queue grew past bound";
  EXPECT_GE(Q.highWater(), 1u);
}

TEST(BoundedQueue, CloseServesRemainingItemsThenStops) {
  BoundedQueue<int> Q(8);
  ASSERT_TRUE(Q.push(1));
  ASSERT_TRUE(Q.push(2));
  Q.close();
  EXPECT_FALSE(Q.push(3)) << "closed queue must reject pushes";
  EXPECT_EQ(Q.pop(), std::optional<int>(1));
  EXPECT_EQ(Q.pop(), std::optional<int>(2));
  EXPECT_EQ(Q.pop(), std::nullopt);
}

TEST(BoundedQueue, ManyProducersManyConsumersLoseNothing) {
  BoundedQueue<int> Q(3);
  std::atomic<long long> Sum{0};
  std::atomic<int> Count{0};
  std::vector<std::thread> Producers, Consumers;
  for (int P = 0; P != 4; ++P)
    Producers.emplace_back([&, P] {
      for (int I = 0; I != 50; ++I)
        ASSERT_TRUE(Q.push(P * 50 + I));
    });
  for (int Cn = 0; Cn != 3; ++Cn)
    Consumers.emplace_back([&] {
      while (std::optional<int> V = Q.pop()) {
        Sum += *V;
        ++Count;
      }
    });
  for (auto &T : Producers)
    T.join();
  Q.close();
  for (auto &T : Consumers)
    T.join();
  EXPECT_EQ(Count.load(), 200);
  EXPECT_EQ(Sum.load(), 199LL * 200 / 2);
  EXPECT_LE(Q.highWater(), 3u);
}

//===----------------------------------------------------------------------===//
// (a) Sharded ingestion is bit-identical to serial for any K.
//===----------------------------------------------------------------------===//

TEST(ProfileService, ShardedIngestionBitIdenticalToSerial) {
  ServiceConfig SC = smallFleet();
  std::vector<std::string> Serial = runAndCollectStores(smallFleet(1), 3);
  for (unsigned S = 0; S != SC.Fleet.Services; ++S)
    ASSERT_FALSE(Serial[S].empty()) << "service " << S << " never folded";
  for (unsigned K : {2u, 3u, 7u}) {
    std::vector<std::string> Sharded = runAndCollectStores(smallFleet(K), 3);
    for (unsigned S = 0; S != SC.Fleet.Services; ++S)
      EXPECT_EQ(Serial[S], Sharded[S])
          << "store of service " << S << " diverged at K=" << K;
  }
}

TEST(ProfileService, ShardedDashboardMatchesSerial) {
  ProfileService A(smallFleet(1)), B(smallFleet(5));
  ASSERT_TRUE(A.run(3).ok());
  ASSERT_TRUE(B.run(3).ok());
  FleetSnapshot SA = A.snapshot(), SB = B.snapshot();
  ASSERT_EQ(SA.Services.size(), SB.Services.size());
  for (size_t I = 0; I != SA.Services.size(); ++I) {
    // Everything the dashboard derives from profile content must be
    // scheduling-independent; only shard/queue observables may differ.
    EXPECT_EQ(SA.Services[I].SamplesIngested, SB.Services[I].SamplesIngested);
    EXPECT_EQ(SA.Services[I].StoreSamples, SB.Services[I].StoreSamples);
    EXPECT_EQ(SA.Services[I].StoreFunctions, SB.Services[I].StoreFunctions);
    EXPECT_EQ(SA.Services[I].EpochsFolded, SB.Services[I].EpochsFolded);
    EXPECT_EQ(SA.Services[I].FunctionsAnnotated,
              SB.Services[I].FunctionsAnnotated);
  }
}

//===----------------------------------------------------------------------===//
// (b) Service-level backpressure.
//===----------------------------------------------------------------------===//

TEST(ProfileService, QueueHighWaterRespectsBound) {
  ServiceConfig SC = smallFleet(3);
  SC.QueueBound = 2; // Tiny bound, 3 eager shards: heavy contention.
  ProfileService Svc(SC);
  ASSERT_TRUE(Svc.run(3).ok());
  FleetSnapshot Snap = Svc.snapshot();
  EXPECT_LE(Snap.QueueHighWater, SC.QueueBound);
  EXPECT_GE(Snap.QueueHighWater, 1u);
  EXPECT_EQ(Snap.TasksExecuted, 6u * 3u) << "backpressure must not drop work";
  // And the tiny bound must not change the result either.
  std::vector<std::string> Unbounded = runAndCollectStores(smallFleet(3), 3);
  for (unsigned S = 0; S != SC.Fleet.Services; ++S)
    EXPECT_EQ(Svc.store(S), Unbounded[S]);
}

//===----------------------------------------------------------------------===//
// (c) Fold order under decay: deterministic for a fixed seed.
//===----------------------------------------------------------------------===//

TEST(ProfileService, DecayedFoldDeterministicForFixedSeed) {
  ServiceConfig SC = smallFleet(4);
  SC.DecayPermille = 700; // Strong decay: fold order matters a lot.
  std::vector<std::string> A = runAndCollectStores(SC, 3);
  std::vector<std::string> B = runAndCollectStores(SC, 3);
  EXPECT_EQ(A, B);
  // The decay weight must actually bite: a plain-merge run aggregates
  // strictly more weight than a decayed one.
  ServiceConfig Plain = SC;
  Plain.DecayPermille = 1000;
  std::vector<std::string> C = runAndCollectStores(Plain, 3);
  EXPECT_NE(A, C);
}

TEST(ProfileService, DifferentSeedsProduceDifferentProfiles) {
  ServiceConfig A = smallFleet(), B = smallFleet();
  B.Fleet.Seed = 99;
  EXPECT_NE(runAndCollectStores(A, 2), runAndCollectStores(B, 2));
}

TEST(ProfileService, RunIsResumableWithoutChangingTheStream) {
  // run(1); run(2) must land exactly where run(3) lands: the epoch
  // counter, timestamps and decay sequence carry across calls.
  ServiceConfig SC = smallFleet(2);
  ProfileService Split(SC);
  ASSERT_TRUE(Split.run(1).ok());
  ASSERT_TRUE(Split.run(2).ok());
  EXPECT_EQ(Split.epochsRun(), 3u);
  std::vector<std::string> Whole = runAndCollectStores(SC, 3);
  for (unsigned S = 0; S != SC.Fleet.Services; ++S)
    EXPECT_EQ(Split.store(S), Whole[S]);
}

//===----------------------------------------------------------------------===//
// Fold gating, drift recovery and the dashboard.
//===----------------------------------------------------------------------===//

TEST(ProfileService, EveryFoldIsVerifierGated) {
  ProfileService Svc(smallFleet(2));
  ASSERT_TRUE(Svc.run(2).ok());
  for (const ServiceSnapshot &S : Svc.snapshot().Services) {
    EXPECT_EQ(S.EpochsDropped, 0u);
    EXPECT_EQ(S.EpochsFolded, 2u);
    // The ingest gate runs the full verifier on every fold; its work is
    // visible in the accumulated pipeline stats.
    EXPECT_GT(S.Pipeline.Verify.ContextsChecked, 0u);
    EXPECT_EQ(S.Pipeline.Verify.Violations, 0u);
    EXPECT_EQ(S.Pipeline.EpochsFolded, 2u);
  }
}

TEST(ProfileService, DriftedReleasesRecoverSamplesViaStaleMatching) {
  ServiceConfig SC = smallFleet(2);
  SC.DriftEveryEpochs = 2;
  ProfileService Svc(SC);
  ASSERT_TRUE(Svc.run(5).ok());
  for (const ServiceSnapshot &S : Svc.snapshot().Services) {
    EXPECT_GT(S.Releases, 1u) << "drift must deploy new releases";
    EXPECT_GT(S.StaleMatched, 0u)
        << "aggregate profiled on old releases must need stale matching";
    EXPECT_GT(S.CountsRecovered, 0u);
    EXPECT_GT(S.RecoveredSampleRate, 0.0);
    EXPECT_GT(S.FunctionsAnnotated, 0u)
        << "recovery failed: current release got no annotation";
  }
}

TEST(ProfileService, SnapshotReportsFreshnessAndStoreShape) {
  ProfileService Svc(smallFleet(2));
  ASSERT_TRUE(Svc.run(3).ok());
  FleetSnapshot Snap = Svc.snapshot();
  EXPECT_EQ(Snap.EpochsProduced, 3u);
  for (unsigned S = 0; S != 2; ++S) {
    const ServiceSnapshot &Row = Snap.Services[S];
    EXPECT_EQ(Row.Hosts, 3u);
    EXPECT_EQ(Row.LastFoldTimestamp, Svc.fleet().timestamp(2));
    EXPECT_EQ(Row.FreshnessLagSeconds, 0u) << "drained fleet must be fresh";
    EXPECT_GT(Row.StoreSamples, 0u);
    EXPECT_GT(Row.StoreFunctions, 0u);
    // The stored bytes really are an openable store.
    Expected<ProfileStore> St = ProfileStore::open(std::string(Svc.store(S)));
    ASSERT_TRUE(St.hasValue()) << St.status().message();
    EXPECT_EQ(St->epochs().size(), 3u);
  }
}

TEST(ProfileService, DashboardRenderingIsStable) {
  ProfileService Svc(smallFleet(2));
  ASSERT_TRUE(Svc.run(2).ok());
  FleetSnapshot Snap = Svc.snapshot();
  EXPECT_EQ(Snap.toJSON(), Svc.snapshot().toJSON());
  std::string Text = Snap.toText();
  for (unsigned S = 0; S != 2; ++S)
    EXPECT_NE(Text.find(Svc.fleet().serviceName(S)), std::string::npos);
  std::string JSON = Snap.toJSON();
  EXPECT_EQ(JSON.front(), '{');
  EXPECT_EQ(JSON.back(), '}');
  EXPECT_NE(JSON.find("\"recovered_sample_rate_permille\":"),
            std::string::npos);
  EXPECT_NE(JSON.find("\"freshness_lag_seconds\":"), std::string::npos);
}

//===- tests/ArenaTest.cpp - flat arena data-plane tests --------*- C++ -*-===//
//
// Property suite for the arena-backed profile data plane (ProfileArena.h
// and the store's zero-copy read path). The flat representation is only
// allowed to exist because it is *exactly* the map representation with a
// different memory layout, so every test here is an equivalence:
//
//   * view round trips are identities (map -> view -> map, including
//     Guid/Checksum metadata the text format drops);
//   * the k-way slice merges reproduce the sequential map merges bit for
//     bit — values, MergeStats, and UINT64_MAX saturation behavior —
//     through both buildRemaps paths (identical fleet-shard name tables
//     and fully disjoint ones) and both IntoEmptyDst modes;
//   * the view decay scaler matches the map scaler slot for slot;
//   * the borrowed-buffer store open rejects structurally corrupt
//     metadata even when the content hash has been recomputed to match
//     (the fixed-width section validation, not just the hash, holds the
//     line), and the view loaders decode the same bytes to the same
//     profiles as the eager map loads.
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileArena.h"
#include "profile/ProfileIO.h"
#include "profile/ProfileMerge.h"
#include "store/ProfileStore.h"
#include "store/StoreFormat.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

using namespace csspgo;

namespace {

//===----------------------------------------------------------------------===//
// Random profile generation. Merge/scale equivalence holds for *any*
// well-formed profile, not just verifier-conserving ones, so the
// generator aims for shape coverage (discriminators, multi-target call
// sites, nested inlinees, shared and unique names) rather than semantic
// plausibility.
//===----------------------------------------------------------------------===//

const std::vector<std::string> &namePool() {
  static const std::vector<std::string> Pool = {
      "main", "dispatch", "rank", "score", "fetch",
      "parse", "emit",     "fold", "walk",  "probe"};
  return Pool;
}

std::string pickName(Rng &R, const std::string &UniqueSuffix) {
  // Mostly shared names (merge collisions), sometimes part-unique ones
  // (exercises the remap union path).
  if (!UniqueSuffix.empty() && R.nextBelow(4) == 0)
    return namePool()[R.nextBelow(namePool().size())] + UniqueSuffix;
  return namePool()[R.nextBelow(namePool().size())];
}

ProfileKey randomKey(Rng &R) {
  return {static_cast<uint32_t>(1 + R.nextBelow(40)),
          static_cast<uint32_t>(R.nextBelow(3))};
}

void fillProfile(Rng &R, FunctionProfile &P, const std::string &Suffix,
                 unsigned Depth) {
  P.Guid = R.next();
  P.Checksum = R.next();
  P.TotalSamples = R.nextBelow(100000);
  P.HeadSamples = R.nextBelow(10000);
  for (size_t I = 0, N = 1 + R.nextBelow(6); I != N; ++I)
    P.addBody(randomKey(R), 1 + R.nextBelow(5000));
  for (size_t I = 0, N = R.nextBelow(4); I != N; ++I)
    P.addCall(randomKey(R), pickName(R, Suffix), 1 + R.nextBelow(2000));
  if (Depth != 0)
    for (size_t I = 0, N = R.nextBelow(3); I != N; ++I) {
      FunctionProfile &Inl =
          P.getOrCreateInlinee(randomKey(R), pickName(R, Suffix));
      fillProfile(R, Inl, Suffix, Depth - 1);
    }
}

/// Random flat profile. \p Suffix makes a fraction of the names unique to
/// this part ("" keeps every name in the shared pool).
FlatProfile randomFlat(uint64_t Seed, const std::string &Suffix = "") {
  Rng R(Seed);
  FlatProfile P;
  P.Kind = Seed % 2 ? ProfileKind::ProbeBased : ProfileKind::LineBased;
  for (size_t I = 0, N = 2 + R.nextBelow(5); I != N; ++I) {
    FunctionProfile &F = P.getOrCreate(pickName(R, Suffix));
    fillProfile(R, F, Suffix, 2);
  }
  return P;
}

/// Random context profile: a handful of depth-1..3 contexts over the
/// shared pool (plus part-unique names when \p Suffix is set).
ContextProfile randomContext(uint64_t Seed, const std::string &Suffix = "") {
  Rng R(Seed);
  ContextProfile P;
  P.Kind = Seed % 2 ? ProfileKind::ProbeBased : ProfileKind::LineBased;
  for (size_t I = 0, N = 2 + R.nextBelow(7); I != N; ++I) {
    SampleContext Ctx;
    for (size_t D = 0, Depth = 1 + R.nextBelow(3); D != Depth; ++D)
      Ctx.push_back({pickName(R, Suffix),
                     static_cast<uint32_t>(D + 1 == Depth ? 0
                                                          : 1 + R.nextBelow(8))});
    ContextTrieNode &Node = P.getOrCreateNode(Ctx);
    Node.Profile.Name = Ctx.back().Func;
    fillProfile(R, Node.Profile, Suffix, 2);
    Node.HasProfile = true;
    Node.ShouldBeInlined = R.nextBelow(4) == 0;
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Deep equality. serializeFlatProfile/serializeContextProfile drop
// Guid/Checksum (the text format does), so the comparisons walk the
// structures field by field in addition to diffing the dumps.
//===----------------------------------------------------------------------===//

void expectEqualFunctions(const FunctionProfile &A, const FunctionProfile &B,
                          const std::string &Where) {
  EXPECT_EQ(A.Name, B.Name) << Where;
  EXPECT_EQ(A.Guid, B.Guid) << Where << "/" << A.Name;
  EXPECT_EQ(A.Checksum, B.Checksum) << Where << "/" << A.Name;
  EXPECT_EQ(A.TotalSamples, B.TotalSamples) << Where << "/" << A.Name;
  EXPECT_EQ(A.HeadSamples, B.HeadSamples) << Where << "/" << A.Name;
  EXPECT_EQ(A.Body, B.Body) << Where << "/" << A.Name;
  EXPECT_EQ(A.Calls, B.Calls) << Where << "/" << A.Name;
  ASSERT_EQ(A.Inlinees.size(), B.Inlinees.size()) << Where << "/" << A.Name;
  auto ItB = B.Inlinees.begin();
  for (const auto &[Key, MapA] : A.Inlinees) {
    ASSERT_EQ(Key, ItB->first) << Where << "/" << A.Name;
    ASSERT_EQ(MapA.size(), ItB->second.size()) << Where << "/" << A.Name;
    auto SubB = ItB->second.begin();
    for (const auto &[Callee, SubA] : MapA) {
      ASSERT_EQ(Callee, SubB->first) << Where << "/" << A.Name;
      expectEqualFunctions(SubA, SubB->second,
                           Where + "/" + A.Name + "@" + Callee);
      ++SubB;
    }
    ++ItB;
  }
}

void expectEqualFlat(const FlatProfile &A, const FlatProfile &B,
                     const std::string &Where) {
  EXPECT_EQ(A.Kind, B.Kind) << Where;
  EXPECT_EQ(serializeFlatProfile(A), serializeFlatProfile(B)) << Where;
  ASSERT_EQ(A.Functions.size(), B.Functions.size()) << Where;
  auto ItB = B.Functions.begin();
  for (const auto &[Name, FA] : A.Functions) {
    ASSERT_EQ(Name, ItB->first) << Where;
    expectEqualFunctions(FA, ItB->second, Where);
    ++ItB;
  }
}

void expectEqualContext(const ContextProfile &A, const ContextProfile &B,
                        const std::string &Where) {
  EXPECT_EQ(A.Kind, B.Kind) << Where;
  EXPECT_EQ(serializeContextProfile(A), serializeContextProfile(B)) << Where;
  struct Node {
    std::string Ctx;
    const ContextTrieNode *N;
  };
  std::vector<Node> NA, NB;
  A.forEachNode([&](const SampleContext &Ctx, const ContextTrieNode &N) {
    NA.push_back({contextToString(Ctx), &N});
  });
  B.forEachNode([&](const SampleContext &Ctx, const ContextTrieNode &N) {
    NB.push_back({contextToString(Ctx), &N});
  });
  ASSERT_EQ(NA.size(), NB.size()) << Where;
  for (size_t I = 0; I != NA.size(); ++I) {
    EXPECT_EQ(NA[I].Ctx, NB[I].Ctx) << Where;
    EXPECT_EQ(NA[I].N->ShouldBeInlined, NB[I].N->ShouldBeInlined)
        << Where << " " << NA[I].Ctx;
    expectEqualFunctions(NA[I].N->Profile, NB[I].N->Profile,
                         Where + " " + NA[I].Ctx);
  }
}

void expectEqualStats(const MergeStats &A, const MergeStats &B,
                      const std::string &Where) {
  EXPECT_EQ(A.ContextsAdded, B.ContextsAdded) << Where;
  EXPECT_EQ(A.ContextsMerged, B.ContextsMerged) << Where;
  EXPECT_EQ(A.CountsSummed, B.CountsSummed) << Where;
  EXPECT_EQ(A.SaturatedCounts, B.SaturatedCounts) << Where;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips: map -> view -> map is the identity.
//===----------------------------------------------------------------------===//

TEST(Arena, FlatRoundTripIsIdentity) {
  for (uint64_t Seed = 0; Seed != 24; ++Seed) {
    FlatProfile P = randomFlat(Seed);
    FlatProfile Back = flatProfileOf(flatViewOf(P));
    expectEqualFlat(P, Back, "seed " + std::to_string(Seed));
  }
}

TEST(Arena, ContextRoundTripIsIdentity) {
  for (uint64_t Seed = 0; Seed != 24; ++Seed) {
    ContextProfile P = randomContext(Seed);
    ContextProfile Back = contextProfileOf(contextViewOf(P));
    expectEqualContext(P, Back, "seed " + std::to_string(Seed));
  }
}

TEST(Arena, EmptyProfilesRoundTrip) {
  FlatProfile F;
  F.Kind = ProfileKind::ProbeBased;
  expectEqualFlat(F, flatProfileOf(flatViewOf(F)), "empty flat");
  ContextProfile C;
  C.Kind = ProfileKind::LineBased;
  expectEqualContext(C, contextProfileOf(contextViewOf(C)), "empty cs");
}

//===----------------------------------------------------------------------===//
// Merge equivalence: the k-way slice merge is the sequential map merge.
// Each seed runs both IntoEmptyDst modes; odd seeds give every part a
// unique name suffix so the parts' interner tables disagree (the
// buildRemaps union fallback), even seeds share one pool (collision-heavy
// tables of differing first-reference order).
//===----------------------------------------------------------------------===//

TEST(Arena, FlatMergeMatchesMapMerge) {
  for (uint64_t Seed = 0; Seed != 12; ++Seed) {
    ProfileKind Kind = Seed % 2 ? ProfileKind::ProbeBased
                                : ProfileKind::LineBased;
    std::vector<FlatProfile> Parts;
    for (uint64_t P = 0; P != 4; ++P) {
      std::string Suffix = Seed % 2 ? ".p" + std::to_string(P) : "";
      Parts.push_back(randomFlat(Seed * 16 + P * 2, Suffix));
      Parts.back().Kind = Kind;
    }
    std::vector<FlatProfileView> Views;
    Views.reserve(Parts.size());
    for (const FlatProfile &P : Parts)
      Views.push_back(flatViewOf(P));
    std::vector<const FlatProfileView *> Ptrs;
    for (const FlatProfileView &V : Views)
      Ptrs.push_back(&V);

    for (bool IntoEmpty : {false, true}) {
      FlatProfile MapDst;
      MapDst.Kind = Kind;
      MergeStats MapStats;
      size_t First = 0;
      if (!IntoEmpty) {
        MapDst = Parts[0];
        First = 1;
      }
      for (size_t P = First; P != Parts.size(); ++P)
        MapStats += mergeFlatProfiles(MapDst, Parts[P]);

      MergeStats FlatStats;
      FlatProfileView Merged = mergeFlatViews(Ptrs, FlatStats, IntoEmpty);
      std::string Where = "seed " + std::to_string(Seed) +
                          (IntoEmpty ? " empty-dst" : " seeded-dst");
      expectEqualFlat(MapDst, flatProfileOf(Merged), Where);
      expectEqualStats(MapStats, FlatStats, Where);
    }
  }
}

TEST(Arena, ContextMergeMatchesMapMerge) {
  for (uint64_t Seed = 0; Seed != 12; ++Seed) {
    ProfileKind Kind = Seed % 2 ? ProfileKind::ProbeBased
                                : ProfileKind::LineBased;
    std::vector<ContextProfile> Parts;
    for (uint64_t P = 0; P != 4; ++P) {
      std::string Suffix = Seed % 2 ? ".p" + std::to_string(P) : "";
      Parts.push_back(randomContext(Seed * 16 + P * 2 + 1, Suffix));
      Parts.back().Kind = Kind;
    }
    std::vector<ContextProfileView> Views;
    Views.reserve(Parts.size());
    for (const ContextProfile &P : Parts)
      Views.push_back(contextViewOf(P));
    std::vector<const ContextProfileView *> Ptrs;
    for (const ContextProfileView &V : Views)
      Ptrs.push_back(&V);

    for (bool IntoEmpty : {false, true}) {
      ContextProfile MapDst;
      MapDst.Kind = Kind;
      MergeStats MapStats;
      size_t First = 0;
      if (!IntoEmpty) {
        MapDst = Parts[0];
        First = 1;
      }
      for (size_t P = First; P != Parts.size(); ++P)
        MapStats += mergeContextProfiles(MapDst, Parts[P]);

      MergeStats FlatStats;
      ContextProfileView Merged = mergeContextViews(Ptrs, FlatStats, IntoEmpty);
      std::string Where = "seed " + std::to_string(Seed) +
                          (IntoEmpty ? " empty-dst" : " seeded-dst");
      expectEqualContext(MapDst, contextProfileOf(Merged), Where);
      expectEqualStats(MapStats, FlatStats, Where);
    }
  }
}

TEST(Arena, IdenticalNameTableFastPathMatchesMapMerge) {
  // K clones of one profile carry element-wise identical interner tables —
  // the fleet-shard case buildRemaps short-circuits. The result must still
  // be the sequential map fold exactly.
  ContextProfile Base = randomContext(99);
  std::vector<ContextProfile> Parts(5, Base);
  std::vector<ContextProfileView> Views;
  for (const ContextProfile &P : Parts)
    Views.push_back(contextViewOf(P));
  std::vector<const ContextProfileView *> Ptrs;
  for (const ContextProfileView &V : Views)
    Ptrs.push_back(&V);

  ContextProfile MapDst;
  MapDst.Kind = Base.Kind;
  MergeStats MapStats;
  for (const ContextProfile &P : Parts)
    MapStats += mergeContextProfiles(MapDst, P);

  MergeStats FlatStats;
  ContextProfileView Merged = mergeContextViews(Ptrs, FlatStats, true);
  expectEqualContext(MapDst, contextProfileOf(Merged), "clone merge");
  expectEqualStats(MapStats, FlatStats, "clone merge");
}

TEST(Arena, DisjointNameTablesMatchMapMerge) {
  // Fully disjoint parts: nothing collides, every context is an add, and
  // buildRemaps takes the sorted-union fallback end to end.
  std::vector<FlatProfile> Parts;
  for (uint64_t P = 0; P != 3; ++P)
    Parts.push_back(randomFlat(40 + P * 2, ".only" + std::to_string(P)));
  for (FlatProfile &P : Parts) {
    P.Kind = ProfileKind::ProbeBased;
    // Strip pool-shared top-level names so the parts are truly disjoint.
    for (auto It = P.Functions.begin(); It != P.Functions.end();)
      It = It->first.find(".only") == std::string::npos ? P.Functions.erase(It)
                                                        : std::next(It);
  }
  std::vector<FlatProfileView> Views;
  for (const FlatProfile &P : Parts)
    Views.push_back(flatViewOf(P));
  std::vector<const FlatProfileView *> Ptrs;
  for (const FlatProfileView &V : Views)
    Ptrs.push_back(&V);

  FlatProfile MapDst;
  MapDst.Kind = ProfileKind::ProbeBased;
  MergeStats MapStats;
  for (const FlatProfile &P : Parts)
    MapStats += mergeFlatProfiles(MapDst, P);

  MergeStats FlatStats;
  FlatProfileView Merged = mergeFlatViews(Ptrs, FlatStats, true);
  expectEqualFlat(MapDst, flatProfileOf(Merged), "disjoint merge");
  expectEqualStats(MapStats, FlatStats, "disjoint merge");
}

//===----------------------------------------------------------------------===//
// Saturation: counts clamp at UINT64_MAX on both planes, through the one
// shared saturatingAccum implementation, with matching SaturatedCounts.
//===----------------------------------------------------------------------===//

TEST(Arena, CallTargetSaturationMatchesMapMerge) {
  constexpr uint64_t Max = std::numeric_limits<uint64_t>::max();
  FlatProfile A;
  A.Kind = ProfileKind::ProbeBased;
  FunctionProfile &FA = A.getOrCreate("hot");
  FA.TotalSamples = Max - 1;
  FA.HeadSamples = Max - 3;
  FA.addBody({1, 0}, Max - 5);
  FA.addCall({2, 0}, "callee", Max - 2);

  FlatProfile B;
  B.Kind = ProfileKind::ProbeBased;
  FunctionProfile &FB = B.getOrCreate("hot");
  FB.TotalSamples = 100;
  FB.HeadSamples = 100;
  FB.addBody({1, 0}, 100);
  FB.addCall({2, 0}, "callee", 100);

  FlatProfile MapDst = A;
  MergeStats MapStats = mergeFlatProfiles(MapDst, B);
  const FunctionProfile *Merged = MapDst.find("hot");
  ASSERT_NE(Merged, nullptr);
  EXPECT_EQ(Merged->TotalSamples, Max);
  EXPECT_EQ(Merged->HeadSamples, Max);
  EXPECT_EQ(Merged->bodyAt({1, 0}), Max);
  EXPECT_EQ(Merged->Calls.at({2, 0}).at("callee"), Max);
  EXPECT_GT(MapStats.SaturatedCounts, 0u);

  FlatProfileView VA = flatViewOf(A), VB = flatViewOf(B);
  MergeStats FlatStats;
  FlatProfileView MergedV = mergeFlatViews({&VA, &VB}, FlatStats, false);
  expectEqualFlat(MapDst, flatProfileOf(MergedV), "saturating merge");
  expectEqualStats(MapStats, FlatStats, "saturating merge");
}

//===----------------------------------------------------------------------===//
// Scaling: the in-place view scaler is the map scaler slot for slot.
//===----------------------------------------------------------------------===//

TEST(Arena, ScaleFlatMatchesMapScale) {
  const std::pair<uint64_t, uint64_t> Ratios[] = {
      {1, 1}, {1, 2}, {333, 1000}, {999, 1000}, {0, 1}};
  for (uint64_t Seed = 0; Seed != 6; ++Seed)
    for (auto [Num, Den] : Ratios)
      for (bool Exact : {false, true}) {
        FlatProfile P = randomFlat(Seed + 70);
        FlatProfile MapScaled = P;
        scaleFlatProfile(MapScaled, Num, Den, Exact);
        FlatProfileView V = flatViewOf(P);
        scaleFlatView(V, Num, Den, Exact);
        expectEqualFlat(MapScaled, flatProfileOf(V),
                        "seed " + std::to_string(Seed) + " " +
                            std::to_string(Num) + "/" + std::to_string(Den) +
                            (Exact ? " exact" : ""));
      }
}

TEST(Arena, ScaleContextMatchesMapScale) {
  const std::pair<uint64_t, uint64_t> Ratios[] = {
      {1, 1}, {1, 2}, {333, 1000}, {999, 1000}, {0, 1}};
  for (uint64_t Seed = 0; Seed != 6; ++Seed)
    for (auto [Num, Den] : Ratios) {
      ContextProfile P = randomContext(Seed + 80);
      ContextProfile MapScaled = P;
      scaleContextProfile(MapScaled, Num, Den);
      ContextProfileView V = contextViewOf(P);
      scaleContextView(V, Num, Den);
      expectEqualContext(MapScaled, contextProfileOf(V),
                         "seed " + std::to_string(Seed) + " " +
                             std::to_string(Num) + "/" + std::to_string(Den));
    }
}

//===----------------------------------------------------------------------===//
// The zero-copy store path: borrowed opens decode to the same profiles as
// owning opens, and structural corruption is rejected even when the
// content hash is made to match (the fixed-width section validation is a
// check of its own, not a rider on the hash).
//===----------------------------------------------------------------------===//

namespace {

/// Recomputes the content hash over bytes [16, end) and patches it into
/// header bytes [8, 16) — turns a structural corruption into one the hash
/// can no longer catch.
void rehash(std::string &Bytes) {
  ASSERT_GE(Bytes.size(), StoreHeaderSize);
  uint64_t H = hashStoreBytes(std::string_view(Bytes).substr(16));
  for (int I = 0; I != 8; ++I)
    Bytes[8 + I] = static_cast<char>(H >> (8 * I));
}

/// (offset, size) of section \p Name in \p Bytes, via a valid open.
std::pair<uint64_t, uint64_t> sectionSpan(const std::string &Bytes,
                                          const std::string &Name) {
  Expected<ProfileStore> S = ProfileStore::open(Bytes);
  EXPECT_TRUE(bool(S)) << S.status().message();
  if (S)
    for (const auto &[N, Off, Size] : S->sectionLayout())
      if (N == Name)
        return {Off, Size};
  ADD_FAILURE() << "section " << Name << " not found";
  return {0, 0};
}

void putU32(std::string &Bytes, size_t Pos, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Bytes[Pos + I] = static_cast<char>(V >> (8 * I));
}

} // namespace

TEST(ArenaStore, EveryRehashedTruncationIsRejected) {
  std::string Bytes = writeStore(randomFlat(5), {{1, 100, 1000}});
  // A plain truncation fails the hash; re-hashing the prefix removes that
  // shield, so what rejects these is the structural validation alone
  // (header size, section-table bounds, fixed-width section shapes).
  std::string Backing;
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    Backing = Bytes.substr(0, Len);
    if (Backing.size() >= StoreHeaderSize)
      rehash(Backing);
    Expected<ProfileStore> S = ProfileStore::openBorrowed(Backing);
    EXPECT_FALSE(bool(S)) << "rehashed prefix of " << Len << " bytes accepted";
    EXPECT_FALSE(S.status().message().empty());
  }
}

TEST(ArenaStore, CorruptStringTableOffsetsAreRejected) {
  std::string Bytes = writeStore(randomFlat(6), {{1, 100, 1000}});
  auto [Off, Size] = sectionSpan(Bytes, "string-table");
  ASSERT_GE(Size, 8u);
  // The last cumulative end offset must equal the blob size; pointing it
  // past the end must fail even with a fresh hash.
  uint32_t Count = loadStoreWord32(Bytes.data() + Off);
  ASSERT_GT(Count, 0u);
  std::string Bad = Bytes;
  putU32(Bad, Off + 4 + 4ull * (Count - 1), 0x7fffffff);
  rehash(Bad);
  Expected<ProfileStore> S = ProfileStore::openBorrowed(Bad);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.status().message().find("string table"), std::string::npos)
      << S.status().message();

  // Non-monotone offsets (end before the previous end) are also malformed.
  if (Count > 1) {
    std::string Bad2 = Bytes;
    putU32(Bad2, Off + 4 + 4ull * (Count - 1), 0);
    uint32_t FirstEnd = loadStoreWord32(Bytes.data() + Off + 4);
    if (FirstEnd > 0) {
      rehash(Bad2);
      EXPECT_FALSE(bool(ProfileStore::openBorrowed(Bad2)));
    }
  }
}

TEST(ArenaStore, CorruptFuncIndexIsRejected) {
  std::string Bytes = writeStore(randomFlat(7), {{1, 100, 1000}});
  auto [Off, Size] = sectionSpan(Bytes, "func-index");
  ASSERT_GE(Size, 36u);
  ASSERT_EQ(Size % 36, 0u);
  // A name index beyond the string table is a malformed entry.
  std::string Bad = Bytes;
  putU32(Bad, Off, 0xffffffffu);
  rehash(Bad);
  Expected<ProfileStore> S = ProfileStore::openBorrowed(Bad);
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.status().message().find("index"), std::string::npos)
      << S.status().message();
}

TEST(ArenaStore, BorrowedViewsAliasTheCallerBuffer) {
  FlatProfile P = randomFlat(8);
  std::string Bytes = writeStore(P, {{1, 100, 1000}});
  Expected<ProfileStore> S = ProfileStore::openBorrowed(Bytes);
  ASSERT_TRUE(bool(S)) << S.status().message();
  ASSERT_GT(S->numFunctions(), 0u);
  for (size_t I = 0; I != S->numFunctions(); ++I) {
    std::string_view Name = S->functionName(I);
    EXPECT_GE(Name.data(), Bytes.data());
    EXPECT_LE(Name.data() + Name.size(), Bytes.data() + Bytes.size());
  }
}

TEST(ArenaStore, FlatViewLoaderUnionEqualsEagerLoad) {
  FlatProfile P = randomFlat(9);
  std::string Bytes = writeStore(P, {{1, 100, 1000}});
  Expected<ProfileStore> S = ProfileStore::openBorrowed(Bytes);
  ASSERT_TRUE(bool(S)) << S.status().message();

  Expected<FlatProfile> Eager = S->loadFlat();
  ASSERT_TRUE(bool(Eager)) << Eager.status().message();

  FlatViewLoader Loader(*S);
  for (size_t I = 0; I != S->numFunctions(); ++I) {
    Status St = Loader.load(I);
    ASSERT_TRUE(St.ok()) << St.message();
  }
  expectEqualFlat(*Eager, flatProfileOf(Loader.view()), "lazy union");

  Expected<FlatProfileView> EagerView = S->loadFlatView();
  ASSERT_TRUE(bool(EagerView)) << EagerView.status().message();
  expectEqualFlat(*Eager, flatProfileOf(*EagerView), "eager view");
}

TEST(ArenaStore, ContextViewLoaderUnionEqualsEagerLoad) {
  ContextProfile P = randomContext(10);
  std::string Bytes = writeStore(P, {{1, 100, 1000}});
  Expected<ProfileStore> S = ProfileStore::openBorrowed(Bytes);
  ASSERT_TRUE(bool(S)) << S.status().message();

  Expected<ContextProfile> Eager = S->loadContext();
  ASSERT_TRUE(bool(Eager)) << Eager.status().message();

  ContextViewLoader Loader(*S);
  for (size_t I = 0; I != S->numFunctions(); ++I) {
    Status St = Loader.load(I);
    ASSERT_TRUE(St.ok()) << St.message();
  }
  // The per-leaf tile order differs from global DFS order, but the
  // rebuilt trie is keyed, so the materialized profiles must agree.
  expectEqualContext(*Eager, contextProfileOf(Loader.view()), "lazy union");

  Expected<ContextProfileView> EagerView = S->loadContextView();
  ASSERT_TRUE(bool(EagerView)) << EagerView.status().message();
  expectEqualContext(*Eager, contextProfileOf(*EagerView), "eager view");
}

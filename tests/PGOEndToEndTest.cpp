//===- tests/PGOEndToEndTest.cpp - end-to-end pipeline tests ----*- C++ -*-===//
//
// Integration tests over the complete profile-guided optimization loop:
// build -> profile -> regenerate -> rebuild -> measure, for every variant.
// These are the "does the whole system hold together" tests; the benches
// then quantify the paper's claims on top.
//
//===----------------------------------------------------------------------===//

#include "pgo/PGODriver.h"
#include "profile/ProfileIO.h"
#include "quality/BlockOverlap.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

using namespace csspgo;

namespace {

ExperimentConfig smallExperiment(const char *Name = "AdRanker") {
  ExperimentConfig Config;
  Config.Workload = workloadPreset(Name, 0.15);
  Config.EvalRuns = 2;
  return Config;
}

} // namespace

TEST(PGOEndToEnd, AllVariantsPreserveSemantics) {
  PGODriver Driver(smallExperiment());
  const VariantOutcome &Base = Driver.baseline();
  ASSERT_NE(Base.ExitValue, 0);
  for (PGOVariant V : {PGOVariant::Instr, PGOVariant::AutoFDO,
                       PGOVariant::CSSPGOProbeOnly, PGOVariant::CSSPGOFull}) {
    VariantOutcome Out = Driver.run(V);
    EXPECT_EQ(Out.ExitValue, Base.ExitValue)
        << variantName(V) << " changed program semantics";
    EXPECT_GT(Out.CodeSizeBytes, 0u);
  }
}

TEST(PGOEndToEnd, SamplingVariantsHaveNearZeroProfilingOverhead) {
  PGODriver Driver(smallExperiment());
  Driver.baseline();
  VariantOutcome Auto = Driver.run(PGOVariant::AutoFDO);
  VariantOutcome Probe = Driver.run(PGOVariant::CSSPGOProbeOnly);
  EXPECT_NEAR(Auto.ProfilingOverheadPct, 0.0, 0.5);
  EXPECT_LT(std::abs(Probe.ProfilingOverheadPct), 3.0)
      << "probes must be near-zero overhead";
}

TEST(PGOEndToEnd, InstrumentationHasLargeProfilingOverhead) {
  PGODriver Driver(smallExperiment());
  Driver.baseline();
  VariantOutcome Instr = Driver.run(PGOVariant::Instr);
  EXPECT_GT(Instr.ProfilingOverheadPct, 30.0)
      << "counter increments must slow the profiling binary substantially";
}

TEST(PGOEndToEnd, ProfilesImprovePerformance) {
  PGODriver Driver(smallExperiment("HHVM"));
  const VariantOutcome &Base = Driver.baseline();
  VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
  EXPECT_LT(Full.EvalCyclesMean, Base.EvalCyclesMean)
      << "full CSSPGO must beat the plain build";
}

TEST(PGOEndToEnd, CSProfileIsContextSensitive) {
  PGODriver Driver(smallExperiment());
  VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
  ASSERT_TRUE(Full.Profile.IsCS);
  bool HasDeepContext = false;
  Full.Profile.CS.forEachNode(
      [&HasDeepContext](const SampleContext &Ctx, const ContextTrieNode &) {
        HasDeepContext |= Ctx.size() >= 2;
      });
  EXPECT_TRUE(HasDeepContext);
}

TEST(PGOEndToEnd, ProfileQualityOrdering) {
  PGODriver Driver(smallExperiment("HHVM"));
  VariantOutcome Instr = Driver.run(PGOVariant::Instr);
  VariantOutcome Auto = Driver.run(PGOVariant::AutoFDO);
  VariantOutcome Probe = Driver.run(PGOVariant::CSSPGOProbeOnly);

  auto GT = annotateForQuality(Driver.source(), Instr.Profile);
  auto InstrSelf = annotateForQuality(Driver.source(), Instr.Profile);
  double SelfOverlap = computeBlockOverlap(*InstrSelf, *GT).ProgramOverlap;
  EXPECT_NEAR(SelfOverlap, 1.0, 1e-9);

  auto AAuto = annotateForQuality(Driver.source(), Auto.Profile);
  auto AProbe = annotateForQuality(Driver.source(), Probe.Profile);
  double OAuto = computeBlockOverlap(*AAuto, *GT).ProgramOverlap;
  double OProbe = computeBlockOverlap(*AProbe, *GT).ProgramOverlap;
  EXPECT_GT(OAuto, 0.5);
  EXPECT_GT(OProbe, OAuto - 0.02)
      << "probe correlation must not be worse than line correlation";
}

TEST(PGOEndToEnd, ProfilesSerializeAndReload) {
  PGODriver Driver(smallExperiment());
  VariantOutcome Auto = Driver.run(PGOVariant::AutoFDO);
  std::string Text = serializeFlatProfile(Auto.Profile.Flat);
  FlatProfile Back;
  ASSERT_TRUE(parseFlatProfile(Text, Back));
  EXPECT_EQ(Back.Functions.size(), Auto.Profile.Flat.Functions.size());
  EXPECT_EQ(serializeFlatProfile(Back), Text) << "round trip must be stable";

  VariantOutcome Full = Driver.run(PGOVariant::CSSPGOFull);
  std::string CSText = serializeContextProfile(Full.Profile.CS);
  ContextProfile CSBack;
  ASSERT_TRUE(parseContextProfile(CSText, CSBack));
  EXPECT_EQ(serializeContextProfile(CSBack), CSText);
}

TEST(PGOEndToEnd, DeterministicAcrossRuns) {
  PGODriver D1(smallExperiment());
  PGODriver D2(smallExperiment());
  VariantOutcome A = D1.run(PGOVariant::CSSPGOFull);
  VariantOutcome B = D2.run(PGOVariant::CSSPGOFull);
  EXPECT_EQ(A.EvalCyclesMean, B.EvalCyclesMean);
  EXPECT_EQ(A.CodeSizeBytes, B.CodeSizeBytes);
}

TEST(PGOEndToEnd, TrimmingKeepsSemanticsAndShrinksProfile) {
  ExperimentConfig WithTrim = smallExperiment();
  ExperimentConfig NoTrim = smallExperiment();
  NoTrim.TrimColdContexts = false;
  PGODriver D1(WithTrim), D2(NoTrim);
  VariantOutcome T = D1.run(PGOVariant::CSSPGOFull);
  VariantOutcome U = D2.run(PGOVariant::CSSPGOFull);
  EXPECT_EQ(T.ExitValue, U.ExitValue);
  // Trimming merges cold contexts into base profiles. The pre-inliner
  // also reshapes both tries afterwards, so compare with a small slack
  // rather than exactly.
  EXPECT_LE(T.Profile.CS.numProfiles(), U.Profile.CS.numProfiles() + 3);
  EXPECT_LE(profileSizeBytes(T.Profile.CS),
            profileSizeBytes(U.Profile.CS) * 105 / 100);
}

TEST(PGOEndToEnd, IterativeProfilingStaysCorrect) {
  ExperimentConfig Config = smallExperiment();
  Config.ProfileIterations = 2;
  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  VariantOutcome Out = Driver.run(PGOVariant::AutoFDO);
  EXPECT_EQ(Out.ExitValue, Base.ExitValue);
}

//===- tests/OptTest.cpp - optimizer pass tests -----------------*- C++ -*-===//

#include "ir/CFG.h"
#include "ir/Verifier.h"
#include "opt/InlineCost.h"
#include "opt/Inliner.h"
#include "opt/PassManager.h"
#include "probe/ProbeInserter.h"
#include "workload/ProgramGenerator.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace csspgo;
using namespace csspgo::testing;

namespace {

/// Runs M through compile+execute and returns the exit value; verifies.
int64_t runExit(const Module &M) {
  auto R = compileAndRun(M);
  EXPECT_TRUE(R.Completed) << R.Error;
  return R.ExitValue;
}

/// Builds a module with two identical-tail blocks feeding a join.
std::unique_ptr<Module> makeDupTailModule() {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", 0);
  Builder B(F);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *TA = F->createBlock("tailA");
  BasicBlock *TB = F->createBlock("tailB");
  BasicBlock *Join = F->createBlock("join");

  B.setInsertBlock(Entry);
  RegId Acc = B.emitConst(5);
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(Acc), Operand::imm(10));
  B.emitCondBr(Operand::reg(C), TA, TB);

  B.setInsertBlock(TA);
  B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::imm(7));
  TA->Insts.back().Dst = Acc;
  B.emitBr(Join);
  TB->Insts = TA->Insts; // Identical tail.

  B.setInsertBlock(Join);
  B.emitRet(Operand::reg(Acc));
  M->EntryFunction = "main";
  return M;
}

} // namespace

TEST(SimplifyCFG, FoldsConstantCondBr) {
  Module M("m");
  Function *F = M.createFunction("f", 0);
  Builder B(F);
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *T = F->createBlock("t");
  BasicBlock *X = F->createBlock("x");
  B.setInsertBlock(E);
  B.emitCondBr(Operand::imm(1), T, X);
  B.setInsertBlock(T);
  B.emitRet(Operand::imm(1));
  B.setInsertBlock(X);
  B.emitRet(Operand::imm(2));

  OptOptions Opts;
  EXPECT_GT(runSimplifyCFG(*F, Opts), 0u);
  EXPECT_TRUE(verifyFunction(*F).empty());
  // Unreachable 'x' removed, straight-line merged.
  EXPECT_EQ(F->Blocks.size(), 1u);
}

TEST(SimplifyCFG, MergesStraightLineAndPreservesSemantics) {
  Module M("m");
  Function *F = M.createFunction("main", 0);
  Builder B(F);
  BasicBlock *A = F->createBlock("a");
  BasicBlock *Bb = F->createBlock("b");
  B.setInsertBlock(A);
  RegId R = B.emitConst(21);
  B.emitBr(Bb);
  B.setInsertBlock(Bb);
  RegId R2 = B.emitBinary(Opcode::Mul, Operand::reg(R), Operand::imm(2));
  B.emitRet(Operand::reg(R2));
  M.EntryFunction = "main";

  int64_t Before = runExit(M);
  OptOptions Opts;
  runSimplifyCFG(*F, Opts);
  EXPECT_EQ(F->Blocks.size(), 1u);
  EXPECT_EQ(runExit(M), Before);
}

TEST(TailMerge, MergesIdenticalBlocksWithoutAnchors) {
  auto M = makeDupTailModule();
  int64_t Before = runExit(*M);
  OptOptions Opts;
  unsigned Changed = runTailMerge(*M->getFunction("main"), Opts);
  EXPECT_EQ(Changed, 1u);
  EXPECT_EQ(M->getFunction("main")->Blocks.size(), 3u);
  EXPECT_EQ(runExit(*M), Before);
}

TEST(TailMerge, BlockedByPseudoProbes) {
  auto M = makeDupTailModule();
  insertProbes(*M, AnchorKind::PseudoProbe);
  OptOptions Opts;
  EXPECT_EQ(runTailMerge(*M->getFunction("main"), Opts), 0u)
      << "distinct probe ids must block code merge";
}

TEST(TailMerge, BlockedByCounters) {
  auto M = makeDupTailModule();
  insertProbes(*M, AnchorKind::InstrCounter);
  OptOptions Opts;
  EXPECT_EQ(runTailMerge(*M->getFunction("main"), Opts), 0u);
}

TEST(TailMerge, SumsProfileCounts) {
  auto M = makeDupTailModule();
  Function *F = M->getFunction("main");
  F->Blocks[1]->setCount(70);
  F->Blocks[2]->setCount(30);
  OptOptions Opts;
  runTailMerge(*F, Opts);
  EXPECT_EQ(F->Blocks[1]->Count, 100u);
}

namespace {

/// if (x&1) r = a + i; else r = a - i;  join returns r.
std::unique_ptr<Module> makeDiamondModule(bool WithProbes) {
  auto M = std::make_unique<Module>("m");
  Function *F = M->createFunction("main", 0);
  Builder B(F);
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *P = F->createBlock("p");
  BasicBlock *Q = F->createBlock("q");
  BasicBlock *J = F->createBlock("j");
  B.setInsertBlock(E);
  RegId A = B.emitConst(40);
  RegId Cond = B.emitBinary(Opcode::And, Operand::reg(A), Operand::imm(1));
  B.emitCondBr(Operand::reg(Cond), P, Q);
  RegId R = F->allocReg();
  B.setInsertBlock(P);
  B.emitBinary(Opcode::Add, Operand::reg(A), Operand::imm(2));
  P->Insts.back().Dst = R;
  B.emitBr(J);
  B.setInsertBlock(Q);
  B.emitBinary(Opcode::Sub, Operand::reg(A), Operand::imm(2));
  Q->Insts.back().Dst = R;
  B.emitBr(J);
  B.setInsertBlock(J);
  B.emitRet(Operand::reg(R));
  M->EntryFunction = "main";
  if (WithProbes)
    insertProbes(*M, AnchorKind::PseudoProbe);
  return M;
}

} // namespace

TEST(IfConvert, ConvertsDiamondToSelects) {
  auto M = makeDiamondModule(false);
  int64_t Before = runExit(*M);
  OptOptions Opts;
  EXPECT_EQ(runIfConvert(*M->getFunction("main"), Opts), 1u);
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(runExit(*M), Before);
  // No conditional branch left.
  for (auto &BB : M->getFunction("main")->Blocks)
    for (auto &I : BB->Insts)
      EXPECT_NE(I.Op, Opcode::CondBr);
}

TEST(IfConvert, WeakBarrierAllowsProbedArms) {
  auto M = makeDiamondModule(true);
  OptOptions Opts;
  Opts.Barrier = ProbeBarrier::Weak;
  EXPECT_EQ(runIfConvert(*M->getFunction("main"), Opts), 1u)
      << "the paper's tuning unblocks if-convert under probes";
}

TEST(IfConvert, StrongBarrierBlocksProbedArms) {
  auto M = makeDiamondModule(true);
  OptOptions Opts;
  Opts.Barrier = ProbeBarrier::Strong;
  EXPECT_EQ(runIfConvert(*M->getFunction("main"), Opts), 0u);
}

TEST(IfConvert, CountersAlwaysBlock) {
  auto M = makeDiamondModule(false);
  insertProbes(*M, AnchorKind::InstrCounter);
  OptOptions Opts;
  EXPECT_EQ(runIfConvert(*M->getFunction("main"), Opts), 0u);
}

TEST(LoopUnroll, DuplicatesBodyAndPreservesResult) {
  Module M("m");
  addLoopFunction(M, "looper");
  Function *Main = M.createFunction("main", 0);
  Builder B(Main);
  BasicBlock *E = Main->createBlock("entry");
  B.setInsertBlock(E);
  RegId R = B.emitCall("looper", {Operand::imm(37)});
  B.emitRet(Operand::reg(R));
  M.EntryFunction = "main";

  int64_t Before = runExit(M);
  OptOptions Opts;
  Opts.UnrollFactor = 2;
  Function *L = M.getFunction("looper");
  size_t BlocksBefore = L->Blocks.size();
  EXPECT_EQ(runLoopUnroll(*L, Opts), 1u);
  EXPECT_GT(L->Blocks.size(), BlocksBefore);
  EXPECT_TRUE(verifyModule(M).empty());
  EXPECT_EQ(runExit(M), Before);
}

TEST(LoopUnroll, ScalesProfileCounts) {
  Module M("m");
  Function *L = addLoopFunction(M, "looper");
  L->Blocks[1]->setCount(1000); // header
  L->Blocks[2]->setCount(990);  // body
  OptOptions Opts;
  Opts.UnrollFactor = 2;
  runLoopUnroll(*L, Opts);
  EXPECT_EQ(L->Blocks[1]->Count, 500u);
  EXPECT_EQ(L->Blocks[2]->Count, 495u);
}

TEST(CodeMotion, HoistsInvariantFromHeader) {
  // Loop header computes mode*13 (params never change): hoistable.
  Module M("m");
  Function *F = M.createFunction("main", 0);
  Builder B(F);
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *H = F->createBlock("h");
  BasicBlock *Body = F->createBlock("b");
  BasicBlock *X = F->createBlock("x");
  B.setInsertBlock(E);
  RegId Mode = B.emitConst(6);
  RegId I = B.emitConst(0);
  RegId Acc = B.emitConst(0);
  B.emitBr(H);
  B.setInsertBlock(H);
  RegId Inv = B.emitBinary(Opcode::Mul, Operand::reg(Mode), Operand::imm(13));
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(I), Operand::imm(10));
  B.emitCondBr(Operand::reg(C), Body, X);
  B.setInsertBlock(Body);
  B.emitBinary(Opcode::Add, Operand::reg(Acc), Operand::reg(Inv));
  Body->Insts.back().Dst = Acc;
  B.emitBinary(Opcode::Add, Operand::reg(I), Operand::imm(1));
  Body->Insts.back().Dst = I;
  B.emitBr(H);
  B.setInsertBlock(X);
  B.emitRet(Operand::reg(Acc));
  M.EntryFunction = "main";

  int64_t Before = runExit(M);
  OptOptions Opts;
  unsigned Hoisted = runCodeMotion(*F, Opts);
  EXPECT_EQ(Hoisted, 1u);
  EXPECT_TRUE(verifyModule(M).empty());
  EXPECT_EQ(runExit(M), Before);
  // The multiply left the header.
  for (auto &Inst : F->Blocks[1]->Insts)
    EXPECT_NE(Inst.Op, Opcode::Mul);
}

TEST(DCE, RemovesUnreadPureInstructions) {
  Module M("m");
  Function *F = M.createFunction("main", 0);
  Builder B(F);
  BasicBlock *E = F->createBlock("entry");
  B.setInsertBlock(E);
  B.emitConst(111); // Dead.
  RegId Live = B.emitConst(5);
  B.emitBinary(Opcode::Mul, Operand::reg(Live), Operand::imm(0)); // Dead.
  B.emitRet(Operand::reg(Live));
  M.EntryFunction = "main";
  OptOptions Opts;
  EXPECT_EQ(runDCE(*F, Opts), 2u);
  EXPECT_EQ(runExit(M), 5);
}

TEST(ConstantFold, FoldsAndPropagatesLocally) {
  Module M("m");
  Function *F = M.createFunction("main", 0);
  Builder B(F);
  BasicBlock *E = F->createBlock("entry");
  B.setInsertBlock(E);
  RegId A = B.emitConst(6);
  RegId Bv = B.emitConst(7);
  RegId C = B.emitBinary(Opcode::Mul, Operand::reg(A), Operand::reg(Bv));
  B.emitRet(Operand::reg(C));
  M.EntryFunction = "main";
  OptOptions Opts;
  EXPECT_GT(runConstantFold(*F, Opts), 0u);
  // The multiply became a constant move.
  EXPECT_EQ(F->Blocks[0]->Insts[2].Op, Opcode::Mov);
  EXPECT_EQ(runExit(M), 42);
}

TEST(ExtTSP, ReordersTowardHotFallthrough) {
  // entry -> (hot) far, (cold) near: layout should move 'far' next to
  // entry.
  Module M("m");
  Function *F = M.createFunction("main", 0);
  Builder B(F);
  BasicBlock *E = F->createBlock("entry");
  BasicBlock *Cold = F->createBlock("cold");
  BasicBlock *Hot = F->createBlock("hot");
  BasicBlock *X = F->createBlock("exit");
  B.setInsertBlock(E);
  RegId C = B.emitConst(1);
  B.emitCondBr(Operand::reg(C), Hot, Cold);
  B.setInsertBlock(Cold);
  B.emitBr(X);
  B.setInsertBlock(Hot);
  B.emitBr(X);
  B.setInsertBlock(X);
  B.emitRet(Operand::imm(0));
  M.EntryFunction = "main";

  E->setCount(100);
  E->SuccWeights = {99, 1};
  Hot->setCount(99);
  Cold->setCount(1);
  X->setCount(100);

  OptOptions Opts;
  EXPECT_EQ(runExtTSPLayout(*F, Opts), 1u);
  EXPECT_EQ(F->Blocks[0].get(), E);
  EXPECT_EQ(F->Blocks[1]->getLabel(), Hot->getLabel());
  EXPECT_TRUE(verifyModule(M).empty());
}

TEST(ExtTSP, NoProfileNoReorder) {
  auto M = makeCallerModule(5);
  Function *F = M->getFunction("leaf");
  OptOptions Opts;
  EXPECT_EQ(runExtTSPLayout(*F, Opts), 0u);
}

TEST(FunctionSplit, MarksZeroCountBlocksCold) {
  auto M = makeCallerModule(5);
  Function *F = M->getFunction("leaf");
  F->Blocks[0]->setCount(100);
  F->Blocks[1]->setCount(100);
  F->Blocks[2]->setCount(0);
  F->Blocks[3]->setCount(100);
  OptOptions Opts;
  EXPECT_EQ(runFunctionSplit(*F, Opts), 1u);
  EXPECT_TRUE(F->Blocks[2]->IsColdSection);
  EXPECT_FALSE(F->Blocks[0]->IsColdSection);
}

TEST(FunctionSplit, WholeColdFunctionMovesEntirely) {
  auto M = makeCallerModule(5);
  Function *F = M->getFunction("leaf");
  for (auto &BB : F->Blocks)
    BB->setCount(0);
  OptOptions Opts;
  EXPECT_EQ(runFunctionSplit(*F, Opts), 4u);
  for (auto &BB : F->Blocks)
    EXPECT_TRUE(BB->IsColdSection);
  // Still compiles and runs correctly with a fully cold callee.
  auto R = compileAndRun(*M);
  ASSERT_TRUE(R.Completed);
}

TEST(Inliner, MechanicsPreserveSemantics) {
  auto M = makeCallerModule(30);
  int64_t Before = runExit(*M);
  Function *Main = M->getFunction("main");
  Function *Leaf = M->getFunction("leaf");
  // Find the call.
  bool Inlined = false;
  for (auto &BB : Main->Blocks) {
    for (size_t I = 0; I != BB->Insts.size(); ++I) {
      if (BB->Insts[I].isCall()) {
        InlinedBody Body = inlineCallSite(*Main, BB.get(), I, *Leaf);
        ASSERT_TRUE(Body.Success);
        Inlined = true;
        break;
      }
    }
    if (Inlined)
      break;
  }
  ASSERT_TRUE(Inlined);
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_EQ(runExit(*M), Before);
}

TEST(Inliner, InlineStacksTrackContext) {
  auto M = makeCallerModule(5);
  Function *Main = M->getFunction("main");
  Function *Leaf = M->getFunction("leaf");
  insertProbes(*M, AnchorKind::PseudoProbe);
  uint32_t CallProbe = 0;
  for (auto &BB : Main->Blocks)
    for (size_t I = 0; I != BB->Insts.size(); ++I)
      if (BB->Insts[I].isCall()) {
        CallProbe = BB->Insts[I].ProbeId;
        InlinedBody Body = inlineCallSite(*Main, BB.get(), I, *Leaf);
        ASSERT_TRUE(Body.Success);
        for (const auto &[Orig, Clone] : Body.BlockMap)
          for (const Instruction &Inst : Clone->Insts)
            if (Inst.isProbe() && Inst.OriginGuid == Leaf->getGuid()) {
              ASSERT_EQ(Inst.InlineStack.size(), 1u);
              EXPECT_EQ(Inst.InlineStack[0].FuncGuid, Main->getGuid());
              EXPECT_EQ(Inst.InlineStack[0].CallProbeId, CallProbe);
            }
        goto done;
      }
done:
  EXPECT_GT(CallProbe, 0u);
}

TEST(Inliner, BottomUpInlinesSmallCallees) {
  auto M = makeCallerModule(30);
  int64_t Before = runExit(*M);
  InlineParams Params;
  InlinerStats Stats = runBottomUpInliner(*M, Params);
  EXPECT_GE(Stats.NumInlined, 1u);
  // 'leaf' has no remaining callers and is removed.
  EXPECT_EQ(M->getFunction("leaf"), nullptr);
  EXPECT_EQ(Stats.NumDeadFunctionsRemoved, 1u);
  EXPECT_EQ(runExit(*M), Before);
}

TEST(Inliner, RespectsNoInline) {
  auto M = makeCallerModule(30);
  M->getFunction("leaf")->NoInline = true;
  InlineParams Params;
  InlinerStats Stats = runBottomUpInliner(*M, Params);
  EXPECT_EQ(Stats.NumInlined, 0u);
}

TEST(Inliner, ColdCallsiteOnlyTinyCallees) {
  auto M = makeCallerModule(30);
  Function *Main = M->getFunction("main");
  for (auto &BB : Main->Blocks)
    BB->setCount(0); // Known cold.
  InlineParams Params;
  Params.HotCallsiteCount = 1000;
  InlineDecision D = shouldInline(*Main, *M->getFunction("leaf"), 0, Params);
  // leaf is ~10 instructions <= ColdSizeThreshold -> still inlined.
  EXPECT_TRUE(D.Inline);
  Params.ColdSizeThreshold = 2;
  D = shouldInline(*Main, *M->getFunction("leaf"), 0, Params);
  EXPECT_FALSE(D.Inline);
}

TEST(Pipeline, MidLevelPreservesSemanticsOnWorkload) {
  // Fuller integration: the whole mid-level pipeline on a generated
  // workload must not change program output.
  WorkloadConfig C;
  C.Seed = 77;
  C.Requests = 40;
  C.NumMids = 6;
  C.NumUtils = 4;
  C.NumServices = 2;
  auto M = generateProgram(C);
  auto Mem0 = generateInput(C, 5);
  auto Bin0 = compileToBinary(*M);
  auto MemA = Mem0;
  int64_t Before = execute(*Bin0, "main", MemA, {}).ExitValue;

  OptOptions Opts;
  runMidLevelPipeline(*M, Opts);
  runLatePipeline(*M, Opts);
  auto Bin1 = compileToBinary(*M);
  auto MemB = Mem0;
  EXPECT_EQ(execute(*Bin1, "main", MemB, {}).ExitValue, Before);
}

//===- tests/ProfileTest.cpp - profile container tests ----------*- C++ -*-===//

#include "profile/ContextTrie.h"
#include "profile/FunctionProfile.h"
#include "profile/ProfileIO.h"
#include "profile/ProfileMerge.h"
#include "profile/Trimmer.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace csspgo;

namespace {

FunctionProfile makeProfile(const std::string &Name, uint64_t Scale) {
  FunctionProfile P;
  P.Name = Name;
  P.Guid = computeFunctionGuid(Name);
  P.addBody({1, 0}, 10 * Scale);
  P.addBody({2, 0}, 7 * Scale);
  P.addCall({3, 0}, "callee_a", 5 * Scale);
  P.addCall({3, 0}, "callee_b", 2 * Scale);
  P.HeadSamples = Scale;
  return P;
}

} // namespace

TEST(FunctionProfile, AddAndQuery) {
  FunctionProfile P = makeProfile("f", 1);
  EXPECT_EQ(P.bodyAt({1, 0}), 10u);
  EXPECT_EQ(P.bodyAt({9, 0}), 0u);
  EXPECT_EQ(P.callAt({3, 0}), 7u);
  EXPECT_EQ(P.TotalSamples, 17u);
  EXPECT_EQ(P.maxBodyCount(), 10u);
}

TEST(FunctionProfile, MaxSemantics) {
  FunctionProfile P;
  P.maxBody({1, 0}, 5);
  P.maxBody({1, 0}, 3);
  EXPECT_EQ(P.bodyAt({1, 0}), 5u);
  P.maxBody({1, 0}, 9);
  EXPECT_EQ(P.bodyAt({1, 0}), 9u);
  EXPECT_EQ(P.TotalSamples, 9u);
}

TEST(FunctionProfile, DiscriminatorsSeparateRecords) {
  FunctionProfile P;
  P.addBody({4, 0}, 1);
  P.addBody({4, 2}, 2);
  EXPECT_EQ(P.bodyAt({4, 0}), 1u);
  EXPECT_EQ(P.bodyAt({4, 2}), 2u);
}

TEST(FunctionProfile, MergeSumsAndScales) {
  FunctionProfile A = makeProfile("f", 1);
  FunctionProfile B = makeProfile("f", 3);
  A.merge(B);
  EXPECT_EQ(A.bodyAt({1, 0}), 40u);
  EXPECT_EQ(A.HeadSamples, 4u);
  FunctionProfile C = makeProfile("f", 1);
  FunctionProfile D = makeProfile("f", 1);
  C.merge(D, 1, 2); // Half weight.
  EXPECT_EQ(C.bodyAt({1, 0}), 15u);
}

TEST(FunctionProfile, NestedInlinees) {
  FunctionProfile P = makeProfile("f", 1);
  FunctionProfile &Inl = P.getOrCreateInlinee({3, 0}, "callee_a");
  Inl.addBody({1, 0}, 99);
  const FunctionProfile *Found = P.inlineeAt({3, 0}, "callee_a");
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->bodyAt({1, 0}), 99u);
  EXPECT_EQ(P.inlineeAt({3, 0}, "other"), nullptr);
  EXPECT_EQ(P.totalBodySamples(), 17u + 99u);
}

TEST(ContextTrie, RoundTripString) {
  SampleContext Ctx = {{"main", 12}, {"foo", 3}, {"bar", 0}};
  std::string S = contextToString(Ctx);
  EXPECT_EQ(S, "[main:12 @ foo:3 @ bar]");
  SampleContext Back;
  ASSERT_TRUE(contextFromString(S, Back));
  EXPECT_EQ(Back, Ctx);
}

TEST(ContextTrie, RejectsMalformedStrings) {
  SampleContext Out;
  EXPECT_FALSE(contextFromString("", Out));
  EXPECT_FALSE(contextFromString("main", Out));
  EXPECT_FALSE(contextFromString("[]", Out));
  EXPECT_FALSE(contextFromString("[main @ foo]", Out)); // Missing site.
}

TEST(ContextTrie, CreateAndFind) {
  ContextProfile CP;
  SampleContext Ctx = {{"main", 12}, {"foo", 3}, {"bar", 0}};
  ContextTrieNode &N = CP.getOrCreateNode(Ctx);
  N.HasProfile = true;
  N.Profile.addBody({1, 0}, 5);

  EXPECT_EQ(CP.findNode(Ctx), &N);
  EXPECT_EQ(CP.findNode({{"main", 12}, {"baz", 0}}), nullptr);
  EXPECT_NE(CP.findNode({{"main", 0}}), nullptr); // Intermediate node.
  EXPECT_EQ(CP.numProfiles(), 1u);
  EXPECT_EQ(CP.totalSamples(), 5u);
}

TEST(ContextTrie, ForEachNodeReportsFullContext) {
  ContextProfile CP;
  SampleContext C1 = {{"main", 1}, {"a", 0}};
  SampleContext C2 = {{"main", 2}, {"a", 0}};
  CP.getOrCreateNode(C1).HasProfile = true;
  CP.getOrCreateNode(C1).Profile.addBody({1, 0}, 1);
  CP.getOrCreateNode(C2).HasProfile = true;
  CP.getOrCreateNode(C2).Profile.addBody({1, 0}, 2);

  std::vector<std::string> Seen;
  CP.forEachNode([&](const SampleContext &Ctx, const ContextTrieNode &) {
    Seen.push_back(contextToString(Ctx));
  });
  ASSERT_EQ(Seen.size(), 2u);
  EXPECT_NE(std::find(Seen.begin(), Seen.end(), "[main:1 @ a]"), Seen.end());
  EXPECT_NE(std::find(Seen.begin(), Seen.end(), "[main:2 @ a]"), Seen.end());
}

TEST(ContextTrie, FlattenMergesContexts) {
  ContextProfile CP;
  SampleContext C1 = {{"main", 1}, {"a", 0}};
  SampleContext C2 = {{"main", 2}, {"a", 0}};
  ContextTrieNode &N1 = CP.getOrCreateNode(C1);
  N1.HasProfile = true;
  N1.Profile.addBody({1, 0}, 10);
  ContextTrieNode &N2 = CP.getOrCreateNode(C2);
  N2.HasProfile = true;
  N2.Profile.addBody({1, 0}, 20);

  FlatProfile Flat = CP.flatten();
  const FunctionProfile *A = Flat.find("a");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->bodyAt({1, 0}), 30u);
}

TEST(ProfileIO, FlatRoundTrip) {
  FlatProfile P;
  P.Kind = ProfileKind::ProbeBased;
  FunctionProfile &F = P.getOrCreate("foo");
  F.Checksum = 777;
  F.HeadSamples = 3;
  F.addBody({1, 0}, 100);
  F.addBody({2, 1}, 50);
  F.addCall({3, 0}, "bar", 40);
  FunctionProfile &Inl = F.getOrCreateInlinee({4, 0}, "baz");
  Inl.addBody({1, 0}, 25);
  Inl.HeadSamples = 5;

  std::string Text = serializeFlatProfile(P);
  FlatProfile Back;
  ASSERT_TRUE(parseFlatProfile(Text, Back)) << Text;
  EXPECT_EQ(Back.Kind, ProfileKind::ProbeBased);
  const FunctionProfile *BF = Back.find("foo");
  ASSERT_NE(BF, nullptr);
  EXPECT_EQ(BF->Checksum, 777u);
  EXPECT_EQ(BF->HeadSamples, 3u);
  EXPECT_EQ(BF->bodyAt({1, 0}), 100u);
  EXPECT_EQ(BF->bodyAt({2, 1}), 50u);
  EXPECT_EQ(BF->callAt({3, 0}), 40u);
  const FunctionProfile *BInl = BF->inlineeAt({4, 0}, "baz");
  ASSERT_NE(BInl, nullptr);
  EXPECT_EQ(BInl->bodyAt({1, 0}), 25u);
  EXPECT_EQ(BInl->HeadSamples, 5u);
}

TEST(ProfileIO, ContextRoundTrip) {
  ContextProfile CP;
  CP.Kind = ProfileKind::ProbeBased;
  SampleContext Ctx = {{"main", 12}, {"foo", 3}, {"bar", 0}};
  ContextTrieNode &N = CP.getOrCreateNode(Ctx);
  N.HasProfile = true;
  N.ShouldBeInlined = true;
  N.Profile.Checksum = 42;
  N.Profile.HeadSamples = 9;
  N.Profile.addBody({1, 0}, 11);
  N.Profile.addCall({2, 0}, "qux", 5);

  std::string Text = serializeContextProfile(CP);
  ContextProfile Back;
  ASSERT_TRUE(parseContextProfile(Text, Back)) << Text;
  const ContextTrieNode *BN = Back.findNode(Ctx);
  ASSERT_NE(BN, nullptr);
  EXPECT_TRUE(BN->HasProfile);
  EXPECT_TRUE(BN->ShouldBeInlined);
  EXPECT_EQ(BN->Profile.Checksum, 42u);
  EXPECT_EQ(BN->Profile.HeadSamples, 9u);
  EXPECT_EQ(BN->Profile.bodyAt({1, 0}), 11u);
  EXPECT_EQ(BN->Profile.callAt({2, 0}), 5u);
}

TEST(ProfileIO, SizeGrowsWithContexts) {
  ContextProfile Small, Big;
  for (int I = 0; I != 2; ++I) {
    SampleContext Ctx = {{"main", static_cast<uint32_t>(I)}, {"f", 0}};
    ContextTrieNode &N = Small.getOrCreateNode(Ctx);
    N.HasProfile = true;
    N.Profile.addBody({1, 0}, 1);
  }
  for (int I = 0; I != 40; ++I) {
    SampleContext Ctx = {{"main", static_cast<uint32_t>(I)}, {"f", 0}};
    ContextTrieNode &N = Big.getOrCreateNode(Ctx);
    N.HasProfile = true;
    N.Profile.addBody({1, 0}, 1);
  }
  EXPECT_GT(profileSizeBytes(Big), 5 * profileSizeBytes(Small));
}

TEST(Merge, FlatProfilesSum) {
  FlatProfile A, B;
  A.Kind = B.Kind = ProfileKind::LineBased;
  A.getOrCreate("f").addBody({1, 0}, 10);
  B.getOrCreate("f").addBody({1, 0}, 5);
  B.getOrCreate("g").addBody({2, 0}, 7);
  mergeFlatProfiles(A, B);
  EXPECT_EQ(A.find("f")->bodyAt({1, 0}), 15u);
  EXPECT_EQ(A.find("g")->bodyAt({2, 0}), 7u);
}

TEST(Merge, ContextProfilesSum) {
  ContextProfile A, B;
  SampleContext Ctx = {{"main", 1}, {"f", 0}};
  ContextTrieNode &NA = A.getOrCreateNode(Ctx);
  NA.HasProfile = true;
  NA.Profile.addBody({1, 0}, 10);
  ContextTrieNode &NB = B.getOrCreateNode(Ctx);
  NB.HasProfile = true;
  NB.Profile.addBody({1, 0}, 32);
  mergeContextProfiles(A, B);
  EXPECT_EQ(A.findNode(Ctx)->Profile.bodyAt({1, 0}), 42u);
}

TEST(Trimmer, MergesColdContextsIntoBase) {
  ContextProfile CP;
  SampleContext Hot = {{"main", 1}, {"f", 0}};
  SampleContext Cold = {{"main", 2}, {"f", 0}};
  ContextTrieNode &NH = CP.getOrCreateNode(Hot);
  NH.HasProfile = true;
  NH.Profile.addBody({1, 0}, 1000);
  ContextTrieNode &NC = CP.getOrCreateNode(Cold);
  NC.HasProfile = true;
  NC.Profile.addBody({1, 0}, 3);

  TrimStats Stats = trimColdContexts(CP, 100);
  EXPECT_EQ(Stats.ContextsMerged, 1u);
  EXPECT_EQ(CP.findNode(Cold), nullptr);
  EXPECT_NE(CP.findNode(Hot), nullptr);
  const ContextTrieNode *Base = CP.findBase("f");
  ASSERT_NE(Base, nullptr);
  EXPECT_EQ(Base->Profile.bodyAt({1, 0}), 3u);
  // Total samples preserved.
  EXPECT_EQ(CP.totalSamples(), 1003u);
}

TEST(Trimmer, ReducesSerializedSize) {
  ContextProfile CP;
  for (uint32_t I = 0; I != 50; ++I) {
    SampleContext Ctx = {{"main", I}, {"f", 0}};
    ContextTrieNode &N = CP.getOrCreateNode(Ctx);
    N.HasProfile = true;
    N.Profile.addBody({1, 0}, I == 0 ? 10000 : 2);
  }
  size_t Before = profileSizeBytes(CP);
  trimColdContexts(CP, 100);
  size_t After = profileSizeBytes(CP);
  EXPECT_LT(After * 3, Before);
  // The hot context survives with full fidelity.
  EXPECT_NE(CP.findNode({{"main", 0u}, {"f", 0u}}), nullptr);
}

TEST(Trimmer, PercentileThreshold) {
  ContextProfile CP;
  for (uint32_t I = 1; I <= 10; ++I) {
    SampleContext Ctx = {{"main", I}, {"f", 0}};
    ContextTrieNode &N = CP.getOrCreateNode(Ctx);
    N.HasProfile = true;
    N.Profile.addBody({1, 0}, I * 100);
  }
  uint64_t T = coldThresholdForPercentile(CP, 0.5);
  EXPECT_GE(T, 100u);
  EXPECT_LE(T, 1000u);
}

TEST(Merge, ReportsStats) {
  FlatProfile A, B;
  A.Kind = B.Kind = ProfileKind::LineBased;
  A.getOrCreate("f").addBody({1, 0}, 10);
  B.getOrCreate("f").addBody({1, 0}, 5);
  B.getOrCreate("g").addBody({2, 0}, 7);
  B.getOrCreate("g").HeadSamples = 3;
  MergeStats S = mergeFlatProfiles(A, B);
  EXPECT_EQ(S.ContextsMerged, 1u); // "f" existed in dst
  EXPECT_EQ(S.ContextsAdded, 1u);  // "g" was new
  EXPECT_EQ(S.CountsSummed, 15u);  // 5 + 7 body + 3 head from src

  ContextProfile CA, CB;
  SampleContext Ctx = {{"main", 1}, {"f", 0}};
  ContextTrieNode &NA = CA.getOrCreateNode(Ctx);
  NA.HasProfile = true;
  NA.Profile.addBody({1, 0}, 10);
  ContextTrieNode &NB = CB.getOrCreateNode(Ctx);
  NB.HasProfile = true;
  NB.Profile.addBody({1, 0}, 32);
  SampleContext Ctx2 = {{"main", 2}, {"g", 0}};
  ContextTrieNode &NB2 = CB.getOrCreateNode(Ctx2);
  NB2.HasProfile = true;
  NB2.Profile.addBody({1, 0}, 4);
  MergeStats CS = mergeContextProfiles(CA, CB);
  EXPECT_EQ(CS.ContextsMerged, 1u);
  EXPECT_EQ(CS.ContextsAdded, 1u);
  EXPECT_EQ(CS.CountsSummed, 36u);

  MergeStats Sum = S;
  Sum += CS;
  EXPECT_EQ(Sum.ContextsAdded, 2u);
  EXPECT_EQ(Sum.ContextsMerged, 2u);
  EXPECT_EQ(Sum.CountsSummed, 51u);
}

TEST(Merge, EmptyDstAdoptsSrcKind) {
  FlatProfile Dst, Src;
  Src.Kind = ProfileKind::ProbeBased;
  Src.getOrCreate("f").addBody({1, 0}, 1);
  mergeFlatProfiles(Dst, Src);
  EXPECT_EQ(Dst.Kind, ProfileKind::ProbeBased);

  ContextProfile CDst, CSrc;
  CSrc.Kind = ProfileKind::LineBased;
  ContextTrieNode &N = CSrc.getOrCreateNode({{"main", 1}, {"f", 0}});
  N.HasProfile = true;
  N.Profile.addBody({1, 0}, 1);
  mergeContextProfiles(CDst, CSrc);
  EXPECT_EQ(CDst.Kind, ProfileKind::LineBased);
}

TEST(MergeDeathTest, KindMismatchIsFatal) {
  FlatProfile A, B;
  A.Kind = ProfileKind::LineBased;
  A.getOrCreate("f").addBody({1, 0}, 1);
  B.Kind = ProfileKind::ProbeBased;
  B.getOrCreate("f").addBody({1, 0}, 1);
  EXPECT_DEATH(mergeFlatProfiles(A, B), "different kinds");
}

TEST(Merge, PropagatesInlineeMetadata) {
  // An inlinee first seen from Src must arrive with its Guid/Checksum —
  // shard reduction depends on this for bit-identical serialization.
  FlatProfile Dst, Src;
  Dst.Kind = Src.Kind = ProfileKind::ProbeBased;
  Dst.getOrCreate("caller").addBody({1, 0}, 2);
  FunctionProfile &SC = Src.getOrCreate("caller");
  SC.addBody({1, 0}, 3);
  FunctionProfile &Inlinee = SC.getOrCreateInlinee({2, 0}, "leaf");
  Inlinee.Guid = 0xABCD;
  Inlinee.Checksum = 0x1234;
  Inlinee.addBody({1, 0}, 9);
  mergeFlatProfiles(Dst, Src);
  const FunctionProfile *D = Dst.find("caller");
  ASSERT_NE(D, nullptr);
  auto SiteIt = D->Inlinees.find({2, 0});
  ASSERT_TRUE(SiteIt != D->Inlinees.end());
  auto LeafIt = SiteIt->second.find("leaf");
  ASSERT_TRUE(LeafIt != SiteIt->second.end());
  EXPECT_EQ(LeafIt->second.Guid, 0xABCDu);
  EXPECT_EQ(LeafIt->second.Checksum, 0x1234u);
  EXPECT_EQ(LeafIt->second.bodyAt({1, 0}), 9u);
}

TEST(Merge, MatchedProfilePreservesMetadataAndFreshKeys) {
  // A stale-matcher recovery is stamped with the fresh GUID/checksum and
  // keyed entirely in the fresh probe-id space {1,2,3}; aggregating it
  // with a fresh-collected profile (the continuous-profiling workflow)
  // must keep that metadata and must not resurrect stale-only ids.
  FlatProfile Fresh;
  Fresh.Kind = ProfileKind::ProbeBased;
  FunctionProfile &F = Fresh.getOrCreate("f");
  F.Guid = 0x77;
  F.Checksum = 0xC0FFEE;
  F.addBody({1, 0}, 10);
  F.addBody({2, 0}, 20);
  F.addBody({3, 0}, 5);
  F.addCall({3, 0}, "g", 5);

  FlatProfile Recovered;
  Recovered.Kind = ProfileKind::ProbeBased;
  FunctionProfile &R = Recovered.getOrCreate("f");
  R.Guid = 0x77;
  R.Checksum = 0xC0FFEE; // Fresh checksum, stamped by the matcher.
  R.addBody({1, 0}, 4);  // Remapped: the stale ids {1,2,9} became {1,3}.
  R.addBody({3, 0}, 6);
  R.addCall({3, 0}, "g", 2);

  mergeFlatProfiles(Fresh, Recovered);
  const FunctionProfile *D = Fresh.find("f");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Guid, 0x77u);
  EXPECT_EQ(D->Checksum, 0xC0FFEEu);
  for (const auto &[K, N] : D->Body)
    EXPECT_TRUE(K.Index >= 1 && K.Index <= 3)
        << "stale id resurrected: " << K.Index;
  EXPECT_EQ(D->bodyAt({1, 0}), 14u);
  EXPECT_EQ(D->bodyAt({2, 0}), 20u);
  EXPECT_EQ(D->bodyAt({3, 0}), 11u);
  EXPECT_EQ(D->callAt({3, 0}), 7u);
}

//===----------------------------------------------------------------------===//
// Parser hardening: malformed text must be rejected, not silently
// misparsed. Each case is a minimized regression for a bug the fuzz
// harness / verifier surfaced in the original permissive parser.
//===----------------------------------------------------------------------===//

namespace {

bool parsesFlat(const std::string &Text) {
  FlatProfile P;
  return parseFlatProfile(Text, P);
}

bool parsesContext(const std::string &Text) {
  ContextProfile P;
  return parseContextProfile(Text, P);
}

} // namespace

TEST(ProfileIOHardening, RejectsBadKindLine) {
  EXPECT_FALSE(parsesFlat("!kind: bogus\n"));
  EXPECT_FALSE(parsesFlat("!kind:probe\n"));
  EXPECT_TRUE(parsesFlat("!kind: probe\n"));
  EXPECT_TRUE(parsesFlat("!kind: line\n"));
}

TEST(ProfileIOHardening, RejectsOverflowingCounts) {
  // 2^64 and beyond: the old strtoull path clamped to ULLONG_MAX and
  // accepted the line; an overflowing count field is corruption.
  EXPECT_FALSE(parsesFlat("!kind: probe\n"
                          "f:99999999999999999999999:0\n"));
  EXPECT_FALSE(parsesFlat("!kind: probe\n"
                          "f:99999999999999999999999:0\n"
                          " 1: 99999999999999999999999\n"));
}

TEST(ProfileIOHardening, RejectsGarbageNumbers) {
  // strtoul("abc") == 0 with no error; the strict parser requires an
  // all-digit token.
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:5:0\n abc: 5\n"));
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:5:0\n 1: 5x\n"));
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:5:0\n 1: -5\n"));
}

TEST(ProfileIOHardening, RejectsDuplicateChecksum) {
  EXPECT_FALSE(parsesFlat("!kind: probe\n"
                          "f:5:0\n"
                          " !CFGChecksum: 1\n"
                          " !CFGChecksum: 2\n"
                          " 1: 5\n"));
}

TEST(ProfileIOHardening, RejectsHeaderTotalMismatch) {
  // The header TOTAL is redundant with the body sum; a disagreement means
  // the text was edited or truncated.
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:6:0\n 1: 5\n"));
  EXPECT_TRUE(parsesFlat("!kind: probe\nf:5:0\n 1: 5\n"));
  EXPECT_FALSE(parsesContext("!kind: probe\n[f]:6:0\n 1: 5\n"));
  EXPECT_TRUE(parsesContext("!kind: probe\n[f]:5:0\n 1: 5\n"));
}

TEST(ProfileIOHardening, RejectsDuplicateRecords) {
  // Duplicate function header.
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:5:0\n 1: 5\nf:0:0\n"));
  // Duplicate body key.
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:10:0\n 1: 5\n 1: 5\n"));
  // Duplicate call-site line and duplicate callee within one line.
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:0:0\n 2: @ g:3\n 2: @ h:4\n"));
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:0:0\n 2: @ g:3 g:4\n"));
  // Duplicate context.
  EXPECT_FALSE(parsesContext("!kind: probe\n[f]:5:0\n 1: 5\n[f]:5:0\n 1: 5\n"));
}

TEST(ProfileIOHardening, RejectsTruncatedInlinee) {
  std::string Full = "!kind: probe\n"
                     "f:5:0\n"
                     " 1: 5\n"
                     " 2: > g:7:1 {\n"
                     "  1: 7\n"
                     " }\n";
  EXPECT_TRUE(parsesFlat(Full));
  // Missing closing brace (EOF inside the inlinee body).
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:5:0\n 1: 5\n 2: > g:7:1 {\n  1: 7\n"));
  // Inlinee body truncated: declared total 7, body sums to 0.
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:5:0\n 1: 5\n 2: > g:7:1 {\n }\n"));
  // Duplicate inlinee at the same (site, callee).
  EXPECT_FALSE(parsesFlat("!kind: probe\nf:5:0\n 1: 5\n"
                          " 2: > g:7:1 {\n  1: 7\n }\n"
                          " 2: > g:7:1 {\n  1: 7\n }\n"));
}

TEST(ProfileIOHardening, EmptyCallSiteLineRoundTrips) {
  // The serializer emits " K: @" with no targets for an empty target map;
  // parse must preserve the empty map so serialize(parse(T)) == T.
  FlatProfile P;
  P.Kind = ProfileKind::ProbeBased;
  FunctionProfile &F = P.getOrCreate("f");
  F.addBody({1, 0}, 5);
  F.Calls[{2, 0}]; // Deliberately empty.
  std::string T1 = serializeFlatProfile(P);
  FlatProfile Back;
  ASSERT_TRUE(parseFlatProfile(T1, Back));
  EXPECT_EQ(serializeFlatProfile(Back), T1);
  EXPECT_EQ(Back.find("f")->Calls.count({2, 0}), 1u);
}

//===----------------------------------------------------------------------===//
// Merge saturation: counts clamp at UINT64_MAX instead of wrapping, and
// the clamping is reported.
//===----------------------------------------------------------------------===//

TEST(Merge, SaturatesInsteadOfWrapping) {
  FlatProfile A, B;
  A.Kind = B.Kind = ProfileKind::ProbeBased;
  FunctionProfile &FA = A.getOrCreate("f");
  FA.addBody({1, 0}, UINT64_MAX - 10);
  FA.HeadSamples = UINT64_MAX - 10;
  FunctionProfile &FB = B.getOrCreate("f");
  FB.addBody({1, 0}, 100);
  FB.HeadSamples = 100;

  MergeStats Stats = mergeFlatProfiles(A, B);
  const FunctionProfile *D = A.find("f");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->bodyAt({1, 0}), UINT64_MAX); // Clamped, not wrapped to ~89.
  EXPECT_EQ(D->HeadSamples, UINT64_MAX);
  EXPECT_EQ(D->TotalSamples, UINT64_MAX);
  EXPECT_GT(Stats.SaturatedCounts, 0u);
}

TEST(Merge, AddBodySaturatesTotal) {
  FunctionProfile P;
  P.Name = "f";
  P.addBody({1, 0}, UINT64_MAX - 1);
  P.addBody({2, 0}, 5);
  EXPECT_EQ(P.TotalSamples, UINT64_MAX);
  P.addBody({1, 0}, 7);
  EXPECT_EQ(P.bodyAt({1, 0}), UINT64_MAX);
  EXPECT_EQ(P.TotalSamples, UINT64_MAX);
}

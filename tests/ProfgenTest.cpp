//===- tests/ProfgenTest.cpp - profile generation tests ---------*- C++ -*-===//

#include "codegen/Linker.h"
#include "probe/ProbeInserter.h"
#include "probe/ProbeTable.h"
#include "profgen/AutoFDOGenerator.h"
#include "profgen/BinarySizeExtractor.h"
#include "profgen/CSProfileGenerator.h"
#include "profgen/InstrProfileGenerator.h"
#include "profgen/MissingFrameInferrer.h"
#include "profgen/ProfileGenerator.h"
#include "profgen/ShardedProfGen.h"
#include "profgen/Symbolizer.h"
#include "profile/ProfileIO.h"
#include "profile/ProfileMerge.h"
#include "opt/Inliner.h"
#include "sim/InstrRuntime.h"
#include "support/Hashing.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace csspgo;
using namespace csspgo::testing;

namespace {

/// main -> {svcA, svcB} -> shared(mode): the Fig. 3/4 shape. shared's
/// branch direction is fully determined by the caller (mode 0 vs 1).
std::unique_ptr<Module> makeContextModule(int64_t Iters) {
  auto M = std::make_unique<Module>("ctx");

  Function *Shared = M->createFunction("shared", 1);
  {
    Builder B(Shared);
    BasicBlock *E = Shared->createBlock("entry");
    BasicBlock *AddP = Shared->createBlock("addpath");
    BasicBlock *SubP = Shared->createBlock("subpath");
    BasicBlock *J = Shared->createBlock("join");
    B.setInsertBlock(E);
    RegId R = B.emitConst(0);
    B.emitCondBr(Operand::reg(0), AddP, SubP);
    B.setInsertBlock(AddP);
    B.emitBinary(Opcode::Add, Operand::imm(10), Operand::imm(1));
    AddP->Insts.back().Dst = R;
    B.emitBr(J);
    B.setInsertBlock(SubP);
    B.emitBinary(Opcode::Sub, Operand::imm(10), Operand::imm(1));
    SubP->Insts.back().Dst = R;
    B.emitBr(J);
    B.setInsertBlock(J);
    B.emitRet(Operand::reg(R));
  }

  for (const char *Svc : {"svcA", "svcB"}) {
    Function *S = M->createFunction(Svc, 0);
    Builder B(S);
    BasicBlock *E = S->createBlock("entry");
    B.setInsertBlock(E);
    RegId R = B.emitCall("shared",
                         {Operand::imm(Svc[3] == 'A' ? 1 : 0)});
    B.emitRet(Operand::reg(R));
  }

  Function *Main = M->createFunction("main", 0);
  {
    Builder B(Main);
    BasicBlock *E = Main->createBlock("entry");
    BasicBlock *H = Main->createBlock("h");
    BasicBlock *Body = Main->createBlock("b");
    BasicBlock *X = Main->createBlock("x");
    B.setInsertBlock(E);
    RegId Acc = B.emitConst(0);
    RegId I = B.emitConst(0);
    B.emitBr(H);
    B.setInsertBlock(H);
    RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(I),
                           Operand::imm(Iters));
    B.emitCondBr(Operand::reg(C), Body, X);
    B.setInsertBlock(Body);
    RegId A = B.emitCall("svcA", {});
    RegId Bv = B.emitCall("svcB", {});
    B.emitBinary(Opcode::Add, Operand::reg(A), Operand::reg(Bv));
    Body->Insts.back().Dst = Acc;
    B.emitBinary(Opcode::Add, Operand::reg(I), Operand::imm(1));
    Body->Insts.back().Dst = I;
    B.emitBr(H);
    B.setInsertBlock(X);
    B.emitRet(Operand::reg(Acc));
  }
  M->EntryFunction = "main";
  return M;
}

struct Profiled {
  std::unique_ptr<Module> M;
  std::unique_ptr<Binary> Bin;
  ProbeTable Probes;
  std::vector<PerfSample> Samples;
};

Profiled profileContextModule(int64_t Iters, bool Precise = true) {
  Profiled P;
  P.M = makeContextModule(Iters);
  insertProbes(*P.M, AnchorKind::PseudoProbe);
  P.Probes = ProbeTable::fromModule(*P.M);
  P.Bin = compileToBinary(*P.M);
  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = 97;
  EC.Sampler.Precise = Precise;
  std::vector<int64_t> Mem(64, 0);
  RunResult R = execute(*P.Bin, "main", Mem, EC);
  EXPECT_TRUE(R.Completed);
  P.Samples = R.Samples;
  return P;
}

} // namespace

TEST(Symbolizer, ClassifiesBranches) {
  auto P = profileContextModule(50);
  Symbolizer Sym(*P.Bin);
  bool SawCall = false, SawRet = false, SawCond = false;
  for (size_t I = 0; I != P.Bin->Code.size(); ++I) {
    switch (Sym.classify(I)) {
    case BranchKind::Call:
      SawCall = true;
      break;
    case BranchKind::Return:
      SawRet = true;
      break;
    case BranchKind::Conditional:
      SawCond = true;
      break;
    default:
      break;
    }
  }
  EXPECT_TRUE(SawCall && SawRet && SawCond);
}

TEST(Symbolizer, ResolvesNamesIncludingDebugNames) {
  auto P = profileContextModule(10);
  Symbolizer Sym(*P.Bin);
  EXPECT_EQ(Sym.nameOfGuid(computeFunctionGuid("shared")), "shared");
  EXPECT_EQ(Sym.nameOfGuid(12345), "");
}

TEST(CSProfile, SeparatesCallingContexts) {
  auto P = profileContextModule(3000);
  ContextProfile CS = generateCSProfile(*P.Bin, P.Probes, P.Samples);

  // Find shared's contexts under svcA and svcB.
  uint64_t AddViaA = 0, SubViaA = 0, AddViaB = 0, SubViaB = 0;
  CS.forEachNode([&](const SampleContext &Ctx, const ContextTrieNode &N) {
    if (Ctx.back().Func != "shared" || Ctx.size() < 2)
      return;
    const std::string &Caller = Ctx[Ctx.size() - 2].Func;
    // Probe ids: entry=1, addpath=2, subpath=3 (insertion order).
    uint64_t Add = N.Profile.bodyAt({2, 0});
    uint64_t Sub = N.Profile.bodyAt({3, 0});
    if (Caller == "svcA") {
      AddViaA += Add;
      SubViaA += Sub;
    } else if (Caller == "svcB") {
      AddViaB += Add;
      SubViaB += Sub;
    }
  });
  // svcA passes mode=1 -> add path; svcB -> sub path (Fig. 3b shape).
  EXPECT_GT(AddViaA, 0u);
  EXPECT_EQ(SubViaA, 0u);
  EXPECT_GT(SubViaB, 0u);
  EXPECT_EQ(AddViaB, 0u);
}

TEST(CSProfile, ChecksumsPersisted) {
  auto P = profileContextModule(500);
  ContextProfile CS = generateCSProfile(*P.Bin, P.Probes, P.Samples);
  const ContextTrieNode *Base = CS.findBase("main");
  ASSERT_NE(Base, nullptr);
  EXPECT_EQ(Base->Profile.Checksum,
            P.M->getFunction("main")->ProbeCFGChecksum);
}

TEST(CSProfile, FlattenedMatchesProbeOnlyScale) {
  auto P = profileContextModule(2000);
  ContextProfile CS = generateCSProfile(*P.Bin, P.Probes, P.Samples);
  FlatProfile Probe = generateProbeOnlyProfile(*P.Bin, P.Probes, P.Samples);
  FlatProfile Flat = CS.flatten();
  // Context-merged totals should be close to the flat probe totals (same
  // ranges, same probes; flat keeps nested inlinees separate so compare
  // per-function totals including inlinees).
  const FunctionProfile *A = Flat.find("shared");
  const FunctionProfile *B = Probe.find("shared");
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_NEAR(static_cast<double>(A->TotalSamples),
              static_cast<double>(B->totalBodySamples()),
              0.2 * A->TotalSamples + 5);
}

TEST(AutoFDOProfile, RecordsBodyAndCallTargets) {
  auto P = profileContextModule(2000);
  FlatProfile Auto = generateAutoFDOProfile(*P.Bin, P.Samples);
  const FunctionProfile *Main = Auto.find("main");
  ASSERT_NE(Main, nullptr);
  EXPECT_GT(Main->TotalSamples, 0u);
  // Call targets for svcA/svcB recorded somewhere in main's body.
  uint64_t CallsSeen = 0;
  for (const auto &[K, Targets] : Main->Calls)
    for (const auto &[Callee, N] : Targets)
      if (Callee == "svcA" || Callee == "svcB")
        CallsSeen += N;
  EXPECT_GT(CallsSeen, 0u);
  // Head samples for callees.
  ASSERT_NE(Auto.find("shared"), nullptr);
  EXPECT_GT(Auto.find("shared")->HeadSamples, 0u);
}

TEST(AutoFDOProfile, MaxHeuristicUsedForDuplicates) {
  // Directly verify maxBody semantics drive the generator: the same line
  // at two addresses yields max, not sum.
  FunctionProfile P;
  P.maxBody({5, 0}, 100);
  P.maxBody({5, 0}, 80);
  EXPECT_EQ(P.bodyAt({5, 0}), 100u);
}

TEST(InstrProfile, ExactCountsFromCounters) {
  auto M = makeContextModule(100);
  insertProbes(*M, AnchorKind::InstrCounter);
  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(64, 0);
  RunResult R = execute(*Bin, "main", Mem, {});
  FlatProfile Instr = generateInstrProfile(dumpCounters(*Bin, R));
  const FunctionProfile *Shared = Instr.find("shared");
  ASSERT_NE(Shared, nullptr);
  EXPECT_EQ(Shared->bodyAt({1, 0}), 200u); // entry: 2 calls x 100 iters
  EXPECT_EQ(Shared->bodyAt({2, 0}), 100u); // add path via svcA
  EXPECT_EQ(Shared->bodyAt({3, 0}), 100u); // sub path via svcB
  EXPECT_EQ(Shared->HeadSamples, 200u);
}

TEST(MissingFrames, UniquePathRecovered) {
  MissingFrameInferrer Inf;
  Inf.addTailCallEdge("a", 3, "b");
  Inf.addTailCallEdge("b", 4, "c");
  std::vector<MissingFrameInferrer::RecoveredFrame> Out;
  EXPECT_TRUE(Inf.inferMissingFrames("a", "c", Out));
  ASSERT_EQ(Out.size(), 2u);
  EXPECT_EQ(Out[0].Func, "a");
  EXPECT_EQ(Out[0].SiteProbe, 3u);
  EXPECT_EQ(Out[1].Func, "b");
  EXPECT_EQ(Out[1].SiteProbe, 4u);
  EXPECT_EQ(Inf.stats().Recovered, 1u);
}

TEST(MissingFrames, AmbiguousPathFails) {
  MissingFrameInferrer Inf;
  Inf.addTailCallEdge("a", 1, "b");
  Inf.addTailCallEdge("b", 2, "d");
  Inf.addTailCallEdge("a", 3, "c");
  Inf.addTailCallEdge("c", 4, "d");
  std::vector<MissingFrameInferrer::RecoveredFrame> Out;
  EXPECT_FALSE(Inf.inferMissingFrames("a", "d", Out));
  EXPECT_EQ(Inf.stats().AmbiguousPaths, 1u);
}

TEST(MissingFrames, NoPathFails) {
  MissingFrameInferrer Inf;
  Inf.addTailCallEdge("a", 1, "b");
  std::vector<MissingFrameInferrer::RecoveredFrame> Out;
  EXPECT_FALSE(Inf.inferMissingFrames("a", "z", Out));
  EXPECT_EQ(Inf.stats().NoPath, 1u);
}

TEST(MissingFrames, CyclesDoNotHang) {
  MissingFrameInferrer Inf;
  Inf.addTailCallEdge("a", 1, "b");
  Inf.addTailCallEdge("b", 2, "a");
  std::vector<MissingFrameInferrer::RecoveredFrame> Out;
  EXPECT_TRUE(Inf.inferMissingFrames("a", "b", Out));
}

TEST(SizeExtractor, MeasuresFunctionSizes) {
  auto P = profileContextModule(100);
  FuncSizeTable Sizes = extractFuncSizes(*P.Bin);
  uint64_t SharedSize = Sizes.sizeForContext({{"shared", 0}});
  EXPECT_GT(SharedSize, 0u);
  // The measured size roughly matches the summed encoded sizes.
  uint64_t Expect = 0;
  uint32_t FIdx = P.Bin->funcIndexByName("shared");
  const MachineFunction &MF = P.Bin->Funcs[FIdx];
  for (size_t I = MF.HotBegin; I != MF.HotEnd; ++I)
    Expect += P.Bin->Code[I].Size;
  EXPECT_EQ(SharedSize, Expect);
}

TEST(SizeExtractor, InlinedCopiesMeasuredSeparately) {
  // Inline shared into svcA, then sizes for [svcA @ shared] exist and the
  // standalone context keeps its own size.
  auto M = makeContextModule(10);
  insertProbes(*M, AnchorKind::PseudoProbe);
  Function *SvcA = M->getFunction("svcA");
  Function *Shared = M->getFunction("shared");
  for (auto &BB : SvcA->Blocks)
    for (size_t I = 0; I != BB->Insts.size(); ++I)
      if (BB->Insts[I].isCall() && BB->Insts[I].Callee == "shared") {
        ASSERT_TRUE(inlineCallSite(*SvcA, BB.get(), I, *Shared).Success);
        goto inlined;
      }
inlined:
  auto Bin = compileToBinary(*M);
  FuncSizeTable Sizes = extractFuncSizes(*Bin);
  uint64_t Standalone = Sizes.sizeForContext({{"shared", 0}});
  EXPECT_GT(Standalone, 0u);
  // The inlined copy context exists (site = the call's probe id).
  bool FoundInlinedCopy = false;
  for (uint32_t Site = 1; Site != 16 && !FoundInlinedCopy; ++Site)
    FoundInlinedCopy =
        Sizes.sizeForContext({{"svcA", Site}, {"shared", 0}}) > 0 &&
        Sizes.numContexts() > 0;
  EXPECT_TRUE(FoundInlinedCopy);
}

TEST(Unwinder, SkidDegradesSyncedFraction) {
  auto Precise = profileContextModule(3000, /*Precise=*/true);
  auto Skid = profileContextModule(3000, /*Precise=*/false);
  CSProfileGenStats SPrecise, SSkid;
  generateCSProfile(*Precise.Bin, Precise.Probes, Precise.Samples, {},
                    &SPrecise);
  generateCSProfile(*Skid.Bin, Skid.Probes, Skid.Samples, {}, &SSkid);
  ASSERT_GT(SPrecise.Samples, 0u);
  ASSERT_GT(SSkid.Samples, 0u);
  double PreciseUnsynced =
      static_cast<double>(SPrecise.UnsyncedSamples) / SPrecise.Samples;
  double SkidUnsynced =
      static_cast<double>(SSkid.UnsyncedSamples) / SSkid.Samples;
  EXPECT_LT(PreciseUnsynced, 0.05);
  EXPECT_GT(SkidUnsynced, PreciseUnsynced);
}

TEST(ShardedProfGen, PlansNearEqualContiguousShards) {
  auto Plan = planShards(10, 4);
  ASSERT_EQ(Plan.size(), 4u);
  EXPECT_EQ(Plan.front().Begin, 0u);
  EXPECT_EQ(Plan.back().End, 10u);
  size_t Prev = 0;
  for (const ShardRange &R : Plan) {
    EXPECT_EQ(R.Begin, Prev);
    EXPECT_GE(R.End - R.Begin, 2u);
    EXPECT_LE(R.End - R.Begin, 3u);
    Prev = R.End;
  }
  // More shards than items: one shard per item, none empty.
  EXPECT_EQ(planShards(3, 8).size(), 3u);
  EXPECT_TRUE(planShards(0, 4).empty());
}

TEST(ShardedProfGen, CSBitIdenticalToSerialForAnyShardCount) {
  auto P = profileContextModule(3000);
  CSProfileGenStats SerialStats;
  ContextProfile Serial = generateCSProfile(*P.Bin, P.Probes, P.Samples, {},
                                            &SerialStats);
  std::string SerialDump = serializeContextProfile(Serial);
  ASSERT_GT(SerialStats.Samples, 0u);
  for (unsigned K : {1u, 2u, 4u, 7u}) {
    CSProfileGenStats Stats;
    MergeStats Reduce;
    ContextProfile Sharded = generateCSProfileSharded(
        *P.Bin, P.Probes, P.Samples, {}, K, &Stats, &Reduce);
    EXPECT_EQ(serializeContextProfile(Sharded), SerialDump)
        << "shard count " << K;
    EXPECT_EQ(Stats.Samples, SerialStats.Samples) << K;
    EXPECT_EQ(Stats.UnsyncedSamples, SerialStats.UnsyncedSamples) << K;
    EXPECT_EQ(Stats.RangesProcessed, SerialStats.RangesProcessed) << K;
    if (K > 1) {
      EXPECT_GT(Reduce.CountsSummed, 0u) << K;
    }
  }
}

TEST(ShardedProfGen, CSIdenticalUnderSkidAndInference) {
  // Skidded samples exercise the unsynced-degradation path; the shared
  // tail-call edge graph keeps inference identical across partitions.
  auto P = profileContextModule(3000, /*Precise=*/false);
  CSProfileGenStats SerialStats;
  ContextProfile Serial = generateCSProfile(*P.Bin, P.Probes, P.Samples, {},
                                            &SerialStats);
  std::string SerialDump = serializeContextProfile(Serial);
  for (unsigned K : {2u, 5u}) {
    CSProfileGenStats Stats;
    ContextProfile Sharded = generateCSProfileSharded(
        *P.Bin, P.Probes, P.Samples, {}, K, &Stats);
    EXPECT_EQ(serializeContextProfile(Sharded), SerialDump) << K;
    EXPECT_EQ(Stats.UnsyncedSamples, SerialStats.UnsyncedSamples) << K;
    EXPECT_EQ(Stats.TailCallStats.Attempts, SerialStats.TailCallStats.Attempts)
        << K;
    EXPECT_EQ(Stats.TailCallStats.Recovered,
              SerialStats.TailCallStats.Recovered)
        << K;
  }
}

TEST(ShardedProfGen, ProbeOnlyBitIdenticalToSerial) {
  auto P = profileContextModule(2000);
  CSProfileGenStats SerialStats;
  FlatProfile Serial = generateProbeOnlyProfile(*P.Bin, P.Probes, P.Samples,
                                                &SerialStats);
  std::string SerialDump = serializeFlatProfile(Serial);
  for (unsigned K : {1u, 2u, 4u, 7u}) {
    CSProfileGenStats Stats;
    MergeStats Reduce;
    FlatProfile Sharded = generateProbeOnlyProfileSharded(
        *P.Bin, P.Probes, P.Samples, K, &Stats, &Reduce);
    EXPECT_EQ(serializeFlatProfile(Sharded), SerialDump) << K;
    EXPECT_EQ(Stats.Samples, SerialStats.Samples) << K;
    EXPECT_EQ(Stats.RangesProcessed, SerialStats.RangesProcessed) << K;
  }
}

TEST(ShardedProfGen, MergeOfSplitSampleSetsEqualsFullSet) {
  // The ProfileMerge property the reduction relies on: profiles of any
  // partition of the samples merge to the profile of the full set.
  auto P = profileContextModule(2000);
  size_t Half = P.Samples.size() / 2;
  std::vector<PerfSample> A(P.Samples.begin(), P.Samples.begin() + Half);
  std::vector<PerfSample> B(P.Samples.begin() + Half, P.Samples.end());

  FlatProfile FullFlat =
      generateProbeOnlyProfile(*P.Bin, P.Probes, P.Samples);
  FlatProfile MergedFlat = generateProbeOnlyProfile(*P.Bin, P.Probes, A);
  MergeStats FS =
      mergeFlatProfiles(MergedFlat, generateProbeOnlyProfile(*P.Bin, P.Probes, B));
  EXPECT_EQ(serializeFlatProfile(MergedFlat), serializeFlatProfile(FullFlat));
  EXPECT_GT(FS.ContextsAdded + FS.ContextsMerged, 0u);

  // CS with inference off: per-half edge graphs would differ, but pure
  // accumulation is exactly partition-invariant.
  CSProfileOptions NoInfer;
  NoInfer.InferMissingFrames = false;
  ContextProfile FullCS =
      generateCSProfile(*P.Bin, P.Probes, P.Samples, NoInfer);
  ContextProfile MergedCS = generateCSProfile(*P.Bin, P.Probes, A, NoInfer);
  mergeContextProfiles(MergedCS,
                       generateCSProfile(*P.Bin, P.Probes, B, NoInfer));
  EXPECT_EQ(serializeContextProfile(MergedCS),
            serializeContextProfile(FullCS));
}

TEST(ProfileGeneratorFacade, StatsLiveInTheResult) {
  auto P = profileContextModule(1500);
  ProfGenOptions Opts;
  Opts.Kind = ProfGenKind::CS;
  ProfGenResult R = ProfileGenerator(*P.Bin, &P.Probes, Opts)
                        .generate(P.Samples);
  EXPECT_TRUE(R.IsCS);
  EXPECT_GT(R.Stats.Samples, 0u);
  EXPECT_EQ(R.ShardsUsed, 1u);
  EXPECT_GT(R.CS.numProfiles(), 0u);

  Opts.Kind = ProfGenKind::CS;
  Opts.Parallelism = 4;
  ProfGenResult RP = ProfileGenerator(*P.Bin, &P.Probes, Opts)
                         .generate(P.Samples);
  EXPECT_EQ(RP.ShardsUsed, 4u);
  EXPECT_EQ(serializeContextProfile(RP.CS), serializeContextProfile(R.CS));
  EXPECT_GT(RP.Reduce.ContextsAdded + RP.Reduce.ContextsMerged, 0u);
}

TEST(ProfileGeneratorFacade, DispatchesEveryKind) {
  auto P = profileContextModule(1000);

  ProfGenOptions Probe;
  Probe.Kind = ProfGenKind::ProbeOnly;
  ProfGenResult RP = ProfileGenerator(*P.Bin, &P.Probes, Probe)
                         .generate(P.Samples);
  EXPECT_FALSE(RP.IsCS);
  EXPECT_EQ(RP.Flat.Kind, ProfileKind::ProbeBased);
  EXPECT_EQ(serializeFlatProfile(RP.Flat),
            serializeFlatProfile(
                generateProbeOnlyProfile(*P.Bin, P.Probes, P.Samples)));

  ProfGenOptions Auto;
  Auto.Kind = ProfGenKind::AutoFDO;
  ProfGenResult RA = ProfileGenerator(*P.Bin, nullptr, Auto)
                         .generate(P.Samples);
  EXPECT_FALSE(RA.IsCS);
  EXPECT_EQ(RA.Flat.Kind, ProfileKind::LineBased);
  EXPECT_EQ(RA.Stats.Samples, P.Samples.size());
  EXPECT_EQ(serializeFlatProfile(RA.Flat),
            serializeFlatProfile(generateAutoFDOProfile(*P.Bin, P.Samples)));

  // Instr kind consumes a counter dump.
  auto M = makeContextModule(100);
  insertProbes(*M, AnchorKind::InstrCounter);
  auto Bin = compileToBinary(*M);
  std::vector<int64_t> Mem(64, 0);
  RunResult R = execute(*Bin, "main", Mem, {});
  ProfGenOptions Instr;
  Instr.Kind = ProfGenKind::Instr;
  ProfGenResult RI = ProfileGenerator(*Bin, nullptr, Instr)
                         .generate(dumpCounters(*Bin, R), &R);
  EXPECT_FALSE(RI.IsCS);
  ASSERT_NE(RI.Flat.find("shared"), nullptr);
  EXPECT_EQ(RI.Flat.find("shared")->bodyAt({1, 0}), 200u);
}

//===- tests/WorkloadTest.cpp - workload generator tests --------*- C++ -*-===//

#include "codegen/Linker.h"
#include "ir/Verifier.h"
#include "probe/ProbeInserter.h"
#include "sim/Executor.h"
#include "workload/DriftPlan.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

using namespace csspgo;

namespace {

WorkloadConfig tinyConfig(uint64_t Seed = 3) {
  WorkloadConfig C;
  C.Seed = Seed;
  C.Requests = 60;
  C.NumServices = 3;
  C.NumMids = 8;
  C.NumUtils = 5;
  C.NumColdHandlers = 3;
  C.MidsPerService = 4;
  return C;
}

} // namespace

TEST(Workload, GeneratesVerifiableProgram) {
  auto M = generateProgram(tinyConfig());
  EXPECT_TRUE(verifyModule(*M).empty());
  EXPECT_NE(M->getFunction("main"), nullptr);
  EXPECT_GE(M->Functions.size(), 3u + 8u + 5u + 3u + 2u);
}

TEST(Workload, DeterministicGeneration) {
  auto M1 = generateProgram(tinyConfig());
  auto M2 = generateProgram(tinyConfig());
  ASSERT_EQ(M1->Functions.size(), M2->Functions.size());
  auto In1 = generateInput(tinyConfig(), 11);
  auto In2 = generateInput(tinyConfig(), 11);
  EXPECT_EQ(In1, In2);

  auto B1 = compileToBinary(*M1);
  auto B2 = compileToBinary(*M2);
  auto MemA = In1, MemB = In2;
  EXPECT_EQ(execute(*B1, "main", MemA, {}).ExitValue,
            execute(*B2, "main", MemB, {}).ExitValue);
}

TEST(Workload, DifferentSeedsDifferentPrograms) {
  auto M1 = generateProgram(tinyConfig(3));
  auto M2 = generateProgram(tinyConfig(4));
  auto B1 = compileToBinary(*M1);
  auto B2 = compileToBinary(*M2);
  auto In = generateInput(tinyConfig(3), 11);
  auto MemA = In, MemB = In;
  EXPECT_NE(execute(*B1, "main", MemA, {}).ExitValue,
            execute(*B2, "main", MemB, {}).ExitValue);
}

TEST(Workload, InputShiftChangesDistributionNotLayout) {
  WorkloadConfig C = tinyConfig();
  auto Base = generateInput(C, 11, 0.0);
  auto Shifted = generateInput(C, 11, 0.5);
  EXPECT_EQ(Base.size(), Shifted.size());
  EXPECT_NE(Base, Shifted);
}

TEST(Workload, RunsToCompletionAndExercisesFeatures) {
  auto M = generateProgram(tinyConfig());
  auto Bin = compileToBinary(*M);
  auto Mem = generateInput(tinyConfig(), 11);
  RunResult R = execute(*Bin, "main", Mem, {});
  ASSERT_TRUE(R.Completed) << R.Error;
  EXPECT_GT(R.Calls, 100u);
  EXPECT_GT(R.CondBranches, 500u);
}

TEST(Workload, ContainsTailCalls) {
  WorkloadConfig C = tinyConfig();
  C.TailCallProb = 1.0;
  auto M = generateProgram(C);
  bool Found = false;
  for (auto &F : M->Functions)
    for (auto &BB : F->Blocks)
      for (auto &I : BB->Insts)
        Found |= I.isCall() && I.IsTailCall;
  EXPECT_TRUE(Found);
}

TEST(Workload, PresetsDistinctAndScalable) {
  for (const std::string &Name : serverWorkloadNames()) {
    WorkloadConfig C = workloadPreset(Name, 0.01);
    EXPECT_EQ(C.Name, Name);
    EXPECT_GE(C.Requests, 1u);
  }
  WorkloadConfig Clang = workloadPreset("ClangProxy", 1.0);
  EXPECT_GT(Clang.NumMids, workloadPreset("HaaS", 1.0).NumMids)
      << "client workload has the broadest code";
}

namespace {

int64_t runModule(const Module &M, const WorkloadConfig &C) {
  auto Bin = compileToBinary(M);
  auto Mem = generateInput(C, 11);
  return execute(*Bin, "main", Mem, {}).ExitValue;
}

} // namespace

TEST(Workload, ArchetypesGenerateRunnableDeterministicPrograms) {
  for (const std::string &Name : archetypeWorkloadNames()) {
    WorkloadConfig C = workloadPreset(Name, 0.05);
    EXPECT_EQ(C.Name, Name);
    auto M = generateProgram(C);
    EXPECT_TRUE(verifyModule(*M).empty()) << Name;
    auto Bin = compileToBinary(*M);
    auto Mem = generateInput(C, 11);
    RunResult R = execute(*Bin, "main", Mem, {});
    ASSERT_TRUE(R.Completed) << Name << ": " << R.Error;
    EXPECT_GT(R.Calls, 20u) << Name;
    EXPECT_GT(R.CondBranches, 100u) << Name;
    // Same (config, seed) regenerates the identical program and input.
    auto Mem2 = generateInput(C, 11);
    RunResult R2 = execute(*compileToBinary(*generateProgram(C)), "main",
                           Mem2, {});
    EXPECT_EQ(R2.ExitValue, R.ExitValue) << Name;
  }
}

TEST(Workload, ArchetypesAreStructurallyDistinct) {
  auto Rpc = generateProgram(workloadPreset("RpcFanout", 0.05));
  auto Interp = generateProgram(workloadPreset("InterpLoop", 0.05));
  auto Boot = generateProgram(workloadPreset("ColdBoot", 0.05));
  // Interpreter: a dispatch loop over opcode handlers.
  EXPECT_NE(Interp->getFunction("interp"), nullptr);
  EXPECT_NE(Interp->getFunction("op_0"), nullptr);
  EXPECT_EQ(Rpc->getFunction("interp"), nullptr);
  // Cold boot: one-shot init phases ahead of the steady loop.
  EXPECT_NE(Boot->getFunction("init_phase_0"), nullptr);
  EXPECT_EQ(Interp->getFunction("init_phase_0"), nullptr);
  // RPC fan-out: every frontend dispatches to its backends indirectly
  // (one site in the fan-out loop plus the retry recall), far more
  // static indirect sites than the other archetypes carry.
  auto countIndirect = [](const Module &M) {
    unsigned N = 0;
    for (auto &F : M.Functions)
      for (auto &BB : F->Blocks)
        for (auto &I : BB->Insts)
          N += I.Op == Opcode::CallIndirect;
    return N;
  };
  unsigned Fanout = countIndirect(*Rpc);
  EXPECT_GE(Fanout, workloadPreset("RpcFanout", 0.05).NumServices);
  EXPECT_GT(Fanout, countIndirect(*Interp));
  EXPECT_GT(Fanout, countIndirect(*Boot));
}

TEST(Workload, ArchetypeDriftPreservesSemantics) {
  for (const std::string &Name : archetypeWorkloadNames()) {
    WorkloadConfig C = workloadPreset(Name, 0.05);
    auto M1 = generateProgram(C);
    auto M2 = generateProgram(C);
    unsigned Edits = applyDriftPlan(*M2, releaseDriftPlan(1, 1));
    EXPECT_GT(Edits, 0u) << Name;
    EXPECT_TRUE(verifyModule(*M2).empty()) << Name;
    EXPECT_EQ(runModule(*M1, C), runModule(*M2, C)) << Name;
  }
}

TEST(Workload, ReleaseDriftPlansAreDeterministicAndCycleEditors) {
  WorkloadConfig C = tinyConfig();
  std::string Names;
  for (unsigned R = 1; R <= 4; ++R) {
    DriftPlan P1 = releaseDriftPlan(7, R);
    DriftPlan P2 = releaseDriftPlan(7, R);
    EXPECT_EQ(driftPlanName(P1), driftPlanName(P2));
    EXPECT_GT(P1.ShiftLines, 0u);
    auto M1 = generateProgram(C);
    auto M2 = generateProgram(C);
    EXPECT_EQ(applyDriftPlan(*M1, P1), applyDriftPlan(*M2, P2))
        << "release " << R;
    EXPECT_TRUE(verifyModule(*M1).empty()) << "release " << R;
    auto M0 = generateProgram(C);
    EXPECT_EQ(runModule(*M0, C), runModule(*M1, C)) << "release " << R;
    Names += driftPlanName(P1) + ";";
  }
  // The four-release cycle exercises every editor and both directions.
  EXPECT_NE(Names.find("insert"), std::string::npos);
  EXPECT_NE(Names.find("split"), std::string::npos);
  EXPECT_NE(Names.find("rename"), std::string::npos);
  EXPECT_NE(Names.find("delete"), std::string::npos);
}

TEST(Workload, SharedDriftPlansMatchTheAblationsCells) {
  // The ablation's insert/delete cells and the plans must stay one
  // source of truth: insert stages guard+split+rename with no prep;
  // delete preps the guards it later folds out.
  DriftPlan Ins = insertDriftPlan();
  EXPECT_TRUE(Ins.PrepSteps.empty());
  EXPECT_EQ(Ins.Steps.size(), 3u);
  EXPECT_EQ(driftPlanName(Ins), "insert+split+rename");
  DriftPlan Del = deleteDriftPlan();
  ASSERT_EQ(Del.PrepSteps.size(), 1u);
  EXPECT_EQ(Del.PrepSteps[0].Kind, CFGDriftKind::GuardInsert);
  ASSERT_EQ(Del.Steps.size(), 1u);
  EXPECT_EQ(Del.Steps[0].Kind, CFGDriftKind::GuardDelete);
}

TEST(Workload, CFGDriftPreservesSemanticsAndStalesChecksums) {
  WorkloadConfig C = tinyConfig();
  for (CFGDriftKind K : {CFGDriftKind::GuardInsert, CFGDriftKind::BlockSplit,
                         CFGDriftKind::CalleeRename}) {
    auto M1 = generateProgram(C);
    auto M2 = generateProgram(C);
    unsigned Edits = applyCFGDrift(*M2, K);
    EXPECT_GT(Edits, 0u) << "drift kind " << static_cast<int>(K);
    EXPECT_TRUE(verifyModule(*M2).empty());
    // Semantics preserved exactly.
    EXPECT_EQ(runModule(*M1, C), runModule(*M2, C))
        << "drift kind " << static_cast<int>(K);
    if (K == CFGDriftKind::CalleeRename) {
      // Rename drift stales profiles via the vanished symbol, not
      // checksums: the victim is gone, _v2 and _helper replace it.
      bool FoundV2 = false, FoundHelper = false;
      for (auto &F : M2->Functions) {
        FoundV2 |= F->getName().size() > 3 &&
                   F->getName().substr(F->getName().size() - 3) == "_v2";
        FoundHelper |=
            F->getName().size() > 7 &&
            F->getName().substr(F->getName().size() - 7) == "_helper";
      }
      EXPECT_TRUE(FoundV2 && FoundHelper);
      continue;
    }
    // Probe CFG checksums of shared functions actually go stale.
    insertProbes(*M1, AnchorKind::PseudoProbe);
    insertProbes(*M2, AnchorKind::PseudoProbe);
    unsigned Mismatched = 0;
    for (auto &F1 : M1->Functions)
      if (Function *F2 = M2->getFunction(F1->getName()))
        Mismatched += F1->ProbeCFGChecksum != F2->ProbeCFGChecksum;
    EXPECT_GT(Mismatched, 0u) << "drift kind " << static_cast<int>(K);
  }
}

TEST(Workload, GuardDeleteUndoesGuardInsert) {
  WorkloadConfig C = tinyConfig();
  auto M1 = generateProgram(C);
  auto M2 = generateProgram(C);
  ASSERT_GT(applyCFGDrift(*M2, CFGDriftKind::GuardInsert), 0u);
  unsigned Deleted = applyCFGDrift(*M2, CFGDriftKind::GuardDelete);
  EXPECT_GT(Deleted, 0u);
  EXPECT_TRUE(verifyModule(*M2).empty());
  EXPECT_EQ(runModule(*M1, C), runModule(*M2, C));
}

TEST(Workload, SourceDriftShiftsLinesKeepsCFG) {
  auto M1 = generateProgram(tinyConfig());
  auto M2 = generateProgram(tinyConfig());
  applySourceDrift(*M2, 3);

  Function *F1 = M1->Functions[0].get();
  Function *F2 = M2->Functions[0].get();
  ASSERT_EQ(F1->Blocks.size(), F2->Blocks.size());
  bool AnyShift = false;
  for (size_t B = 0; B != F1->Blocks.size(); ++B) {
    ASSERT_EQ(F1->Blocks[B]->Insts.size(), F2->Blocks[B]->Insts.size());
    for (size_t I = 0; I != F1->Blocks[B]->Insts.size(); ++I) {
      uint32_t L1 = F1->Blocks[B]->Insts[I].DL.Line;
      uint32_t L2 = F2->Blocks[B]->Insts[I].DL.Line;
      EXPECT_TRUE(L2 == L1 || L2 == L1 + 3);
      AnyShift |= L2 != L1;
    }
  }
  EXPECT_TRUE(AnyShift);
  // Semantics unchanged.
  auto B1 = compileToBinary(*M1);
  auto B2 = compileToBinary(*M2);
  auto In = generateInput(tinyConfig(), 11);
  auto MemA = In, MemB = In;
  EXPECT_EQ(execute(*B1, "main", MemA, {}).ExitValue,
            execute(*B2, "main", MemB, {}).ExitValue);
}

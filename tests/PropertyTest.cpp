//===- tests/PropertyTest.cpp - parameterized property tests ----*- C++ -*-===//
//
// Property-style sweeps (TEST_P): invariants that must hold across many
// randomly generated programs, profiles and configurations:
//  - every optimization pass preserves program semantics and IR validity;
//  - profile inference always produces flow-consistent profiles;
//  - profile text serialization round-trips losslessly;
//  - the virtual unwinder only emits intra-function ranges;
//  - whole PGO pipelines preserve semantics for every variant x seed.
//
//===----------------------------------------------------------------------===//

#include "codegen/Linker.h"
#include "inference/ProfileInference.h"
#include "ir/Verifier.h"
#include "opt/PassManager.h"
#include "pgo/PGODriver.h"
#include "probe/ProbeInserter.h"
#include "profgen/ContextUnwinder.h"
#include "profile/ProfileIO.h"
#include "sim/Executor.h"
#include "support/Random.h"
#include "workload/Workloads.h"

#include <gtest/gtest.h>

#include <cctype>

using namespace csspgo;

namespace {

WorkloadConfig propConfig(uint64_t Seed) {
  WorkloadConfig C;
  C.Seed = Seed;
  C.Requests = 50;
  C.NumServices = 3;
  C.NumMids = 10;
  C.NumUtils = 6;
  C.NumColdHandlers = 3;
  C.MidsPerService = 4;
  C.TailCallProb = 0.4;
  C.DupTailProb = 0.6;
  return C;
}

int64_t runModule(const Module &M, uint64_t InputSeed) {
  auto Bin = compileToBinary(M);
  auto Mem = generateInput(propConfig(1), InputSeed);
  RunResult R = execute(*Bin, "main", Mem, {});
  EXPECT_TRUE(R.Completed) << R.Error;
  return R.ExitValue;
}

using PassFn = unsigned (*)(Function &, const OptOptions &);

struct NamedPass {
  const char *Name;
  PassFn Fn;
};

constexpr NamedPass AllPasses[] = {
    {"SimplifyCFG", runSimplifyCFG}, {"TailMerge", runTailMerge},
    {"IfConvert", runIfConvert},     {"JumpThreading", runJumpThreading},
    {"LoopUnroll", runLoopUnroll},   {"CodeMotion", runCodeMotion},
    {"DCE", runDCE},                 {"ConstantFold", runConstantFold},
    {"ExtTSP", runExtTSPLayout},     {"FunctionSplit", runFunctionSplit},
};

} // namespace

//===----------------------------------------------------------------------===//
// Pass semantics property.
//===----------------------------------------------------------------------===//

class PassSemantics
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, bool>> {};

TEST_P(PassSemantics, PreservesSemanticsAndVerifies) {
  auto [PassIdx, Seed, WithProbes] = GetParam();
  const NamedPass &Pass = AllPasses[PassIdx];

  WorkloadConfig C = propConfig(Seed);
  auto M = generateProgram(C);
  if (WithProbes)
    insertProbes(*M, AnchorKind::PseudoProbe);
  // Pseudo-random profile annotation so profile-dependent passes run too.
  Rng R(Seed * 31 + 7);
  for (auto &F : M->Functions)
    for (auto &BB : F->Blocks)
      BB->setCount(R.nextBelow(1000));

  int64_t Before = runModule(*M, Seed + 100);
  OptOptions Opts;
  for (auto &F : M->Functions)
    Pass.Fn(*F, Opts);
  auto Problems = verifyModule(*M);
  EXPECT_TRUE(Problems.empty())
      << Pass.Name << " broke the IR: " << Problems.front();
  EXPECT_EQ(runModule(*M, Seed + 100), Before)
      << Pass.Name << " changed program semantics (seed " << Seed << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllPassesManySeeds, PassSemantics,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(11u, 22u, 33u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<PassSemantics::ParamType> &Info) {
      return std::string(AllPasses[std::get<0>(Info.param)].Name) + "_s" +
             std::to_string(std::get<1>(Info.param)) +
             (std::get<2>(Info.param) ? "_probed" : "_plain");
    });

//===----------------------------------------------------------------------===//
// Inference consistency property.
//===----------------------------------------------------------------------===//

class InferenceConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InferenceConsistency, ProducesFlowConsistentProfiles) {
  uint64_t Seed = GetParam();
  auto M = generateProgram(propConfig(Seed));
  Rng R(Seed);
  for (auto &F : M->Functions)
    for (auto &BB : F->Blocks)
      BB->setCount(R.nextBelow(5000));
  inferModuleProfile(*M);
  for (auto &F : M->Functions) {
    if (F->Blocks.size() > 150)
      continue; // Fallback path is only approximately consistent.
    EXPECT_TRUE(isProfileConsistent(*F, 1))
        << F->getName() << " inconsistent after inference (seed " << Seed
        << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferenceConsistency,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

//===----------------------------------------------------------------------===//
// Profile IO round-trip property.
//===----------------------------------------------------------------------===//

class ProfileRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProfileRoundTrip, FlatAndContextProfilesAreStable) {
  uint64_t Seed = GetParam();
  Rng R(Seed);

  FlatProfile Flat;
  Flat.Kind = R.nextBool(0.5) ? ProfileKind::ProbeBased
                              : ProfileKind::LineBased;
  for (int F = 0; F != 5; ++F) {
    FunctionProfile &P = Flat.getOrCreate("func" + std::to_string(F));
    P.Checksum = R.next();
    P.HeadSamples = R.nextBelow(1000);
    for (int B = 0; B != 8; ++B)
      P.addBody({static_cast<uint32_t>(R.nextBelow(60)),
                 static_cast<uint32_t>(R.nextBelow(3))},
                R.nextBelow(100000));
    P.addCall({static_cast<uint32_t>(1 + R.nextBelow(50)), 0},
              "func" + std::to_string((F + 1) % 5), R.nextBelow(500));
    FunctionProfile &Inl =
        P.getOrCreateInlinee({static_cast<uint32_t>(1 + R.nextBelow(50)), 0},
                             "inlinee" + std::to_string(F));
    Inl.HeadSamples = R.nextBelow(100);
    Inl.addBody({1, 0}, R.nextBelow(1000));
  }
  std::string T1 = serializeFlatProfile(Flat);
  FlatProfile Back;
  ASSERT_TRUE(parseFlatProfile(T1, Back));
  EXPECT_EQ(serializeFlatProfile(Back), T1);

  ContextProfile CS;
  for (int N = 0; N != 10; ++N) {
    SampleContext Ctx;
    unsigned Depth = 1 + R.nextBelow(4);
    for (unsigned D = 0; D != Depth; ++D)
      Ctx.push_back({"f" + std::to_string(R.nextBelow(6)),
                     static_cast<uint32_t>(R.nextBelow(20))});
    Ctx.back().Site = 0;
    ContextTrieNode &Node = CS.getOrCreateNode(Ctx);
    Node.HasProfile = true;
    Node.ShouldBeInlined = R.nextBool(0.3);
    Node.Profile.addBody({static_cast<uint32_t>(1 + R.nextBelow(30)), 0},
                         R.nextBelow(100000));
  }
  std::string T2 = serializeContextProfile(CS);
  ContextProfile CSBack;
  ASSERT_TRUE(parseContextProfile(T2, CSBack));
  EXPECT_EQ(serializeContextProfile(CSBack), T2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileRoundTrip,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

//===----------------------------------------------------------------------===//
// Unwinder range property.
//===----------------------------------------------------------------------===//

class UnwinderRanges : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnwinderRanges, RangesStayWithinOneFunction) {
  uint64_t Seed = GetParam();
  WorkloadConfig C = propConfig(Seed);
  auto M = generateProgram(C);
  insertProbes(*M, AnchorKind::PseudoProbe);
  auto Bin = compileToBinary(*M);
  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = 997;
  auto Mem = generateInput(C, Seed);
  RunResult R = execute(*Bin, "main", Mem, EC);
  ASSERT_TRUE(R.Completed);

  Symbolizer Sym(*Bin);
  ContextUnwinder Unwinder(Sym, nullptr);
  size_t Ranges = 0;
  for (const PerfSample &S : R.Samples) {
    UnwoundSample U = Unwinder.unwind(S);
    for (const RangeWithContext &Range : U.Ranges) {
      ++Ranges;
      ASSERT_LE(Range.BeginIdx, Range.EndIdx);
      EXPECT_EQ(Sym.funcIndexOf(Range.BeginIdx),
                Sym.funcIndexOf(Range.EndIdx))
          << "linear range crosses a function boundary";
      // Caller frames must name real functions.
      for (const ContextFrame &F : Range.CallerContext)
        EXPECT_FALSE(F.Func.empty());
    }
  }
  EXPECT_GT(Ranges, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnwinderRanges,
                         ::testing::Values(7u, 17u, 27u));

//===----------------------------------------------------------------------===//
// End-to-end variant x workload property.
//===----------------------------------------------------------------------===//

class VariantSemantics
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(VariantSemantics, PipelinePreservesSemantics) {
  auto [VariantIdx, Workload] = GetParam();
  PGOVariant V = static_cast<PGOVariant>(VariantIdx);
  ExperimentConfig Config;
  Config.Workload = workloadPreset(Workload, 0.08);
  Config.EvalRuns = 1;
  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  VariantOutcome Out = Driver.run(V);
  EXPECT_EQ(Out.ExitValue, Base.ExitValue)
      << variantName(V) << " on " << Workload;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, VariantSemantics,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(PGOVariant::Instr),
                          static_cast<int>(PGOVariant::AutoFDO),
                          static_cast<int>(PGOVariant::CSSPGOProbeOnly),
                          static_cast<int>(PGOVariant::CSSPGOFull)),
        ::testing::Values("AdRanker", "AdRetriever", "AdFinder", "HHVM",
                          "HaaS", "ClangProxy")),
    [](const ::testing::TestParamInfo<VariantSemantics::ParamType> &Info) {
      std::string Name = variantName(
          static_cast<PGOVariant>(std::get<0>(Info.param)));
      Name += "_" + std::get<1>(Info.param);
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Executor fast-path equivalence property.
//===----------------------------------------------------------------------===//

namespace {

void expectBitIdentical(const RunResult &Ref, const RunResult &Fast,
                        const std::string &Label) {
  EXPECT_EQ(Ref.Completed, Fast.Completed) << Label;
  EXPECT_EQ(Ref.Error, Fast.Error) << Label;
  EXPECT_EQ(Ref.ExitValue, Fast.ExitValue) << Label;
  EXPECT_EQ(Ref.Cycles, Fast.Cycles) << Label;
  EXPECT_EQ(Ref.Instructions, Fast.Instructions) << Label;
  EXPECT_EQ(Ref.TakenBranches, Fast.TakenBranches) << Label;
  EXPECT_EQ(Ref.CondBranches, Fast.CondBranches) << Label;
  EXPECT_EQ(Ref.CondTaken, Fast.CondTaken) << Label;
  EXPECT_EQ(Ref.UncondJumps, Fast.UncondJumps) << Label;
  EXPECT_EQ(Ref.Mispredicts, Fast.Mispredicts) << Label;
  EXPECT_EQ(Ref.ICacheMisses, Fast.ICacheMisses) << Label;
  EXPECT_EQ(Ref.Calls, Fast.Calls) << Label;
  EXPECT_EQ(Ref.IndirectCalls, Fast.IndirectCalls) << Label;
  EXPECT_EQ(Ref.IndirectMispredicts, Fast.IndirectMispredicts) << Label;
  EXPECT_EQ(Ref.InstCounts, Fast.InstCounts) << Label;
  EXPECT_EQ(Ref.Counters, Fast.Counters) << Label;

  ASSERT_EQ(Ref.Samples.size(), Fast.Samples.size()) << Label;
  for (size_t I = 0; I != Ref.Samples.size(); ++I) {
    const PerfSample &A = Ref.Samples[I];
    const PerfSample &B = Fast.Samples[I];
    EXPECT_EQ(A.Stack, B.Stack) << Label << " sample " << I;
    ASSERT_EQ(A.LBR.size(), B.LBR.size()) << Label << " sample " << I;
    for (size_t J = 0; J != A.LBR.size(); ++J) {
      EXPECT_EQ(A.LBR[J].Src, B.LBR[J].Src)
          << Label << " sample " << I << " lbr " << J;
      EXPECT_EQ(A.LBR[J].Dst, B.LBR[J].Dst)
          << Label << " sample " << I << " lbr " << J;
    }
  }

  ASSERT_EQ(Ref.ValueProfile.size(), Fast.ValueProfile.size()) << Label;
  EXPECT_TRUE(Ref.ValueProfile == Fast.ValueProfile) << Label;
}

/// Runs \p Bin twice — reference interpreter and fast path — on identical
/// memory images and asserts every observable output matches.
void runBothAndCompare(const Binary &Bin, ExecConfig Config,
                       const WorkloadConfig &WC, uint64_t InputSeed,
                       const std::string &Label) {
  std::vector<int64_t> MemRef = generateInput(WC, InputSeed);
  std::vector<int64_t> MemFast = MemRef;

  Config.ReferenceMode = true;
  RunResult Ref = execute(Bin, "main", MemRef, Config);
  Config.ReferenceMode = false;
  RunResult Fast = execute(Bin, "main", MemFast, Config);

  expectBitIdentical(Ref, Fast, Label);
  EXPECT_EQ(MemRef, MemFast) << Label << ": final memory images differ";
}

} // namespace

class ExecutorEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(ExecutorEquivalence, FastPathBitIdenticalToReference) {
  auto [Seed, Precise] = GetParam();
  // Randomized workloads with tail calls and indirect dispatch, both
  // plain and probed, so calls, returns, sampling, value profiling and
  // instruction counting all get exercised.
  WorkloadConfig WC = propConfig(Seed);
  WC.TailCallProb = 0.5;
  WC.IndirectDispatchProb = 0.6;

  for (bool Probed : {false, true}) {
    auto M = generateProgram(WC);
    if (Probed)
      insertProbes(*M, AnchorKind::InstrCounter);
    auto Bin = compileToBinary(*M);

    ExecConfig Config;
    Config.Sampler.Enabled = true;
    Config.Sampler.PeriodCycles = 97; // Dense sampling stresses the PMU.
    Config.Sampler.Precise = Precise;
    Config.Sampler.Seed = Seed;
    Config.CollectInstCounts = true;
    Config.CollectValueProfile = true;
    std::string Label = std::string(Precise ? "precise" : "skid") +
                        (Probed ? "/probed" : "/plain") + " seed " +
                        std::to_string(Seed);
    runBothAndCompare(*Bin, Config, WC, Seed + 100, Label);

    // Error paths must match too: truncate at the instruction limit.
    ExecConfig Limited = Config;
    Limited.MaxInstructions = 2000;
    runBothAndCompare(*Bin, Limited, WC, Seed + 100, Label + "/limited");
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsBySampling, ExecutorEquivalence,
    ::testing::Combine(::testing::Values(3u, 13u, 23u, 43u),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<ExecutorEquivalence::ParamType> &Info) {
      return "s" + std::to_string(std::get<0>(Info.param)) +
             (std::get<1>(Info.param) ? "_precise" : "_skid");
    });

//===----------------------------------------------------------------------===//
// Generated-profile serialization fixpoint property.
//===----------------------------------------------------------------------===//

#include "probe/ProbeTable.h"
#include "profgen/ProfileGenerator.h"
#include "verify/ProfileVerifier.h"

class GeneratedProfileRoundTrip : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(GeneratedProfileRoundTrip, SerializeParseSerializeIsFixpoint) {
  // The handcrafted ProfileRoundTrip sweep covers the container shapes;
  // this one feeds the parser what profgen actually emits (real contexts,
  // checksums, call targets) and additionally requires the profiles to
  // verify clean against the producing build's probe table.
  uint64_t Seed = GetParam();
  WorkloadConfig WC = propConfig(Seed);
  auto M = generateProgram(WC);
  insertProbes(*M, AnchorKind::PseudoProbe);
  auto Bin = compileToBinary(*M);
  ProbeTable PT = ProbeTable::fromModule(*M);

  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = 997;
  EC.Sampler.Seed = Seed;
  auto Mem = generateInput(WC, Seed);
  RunResult Train = execute(*Bin, "main", Mem, EC);
  ASSERT_TRUE(Train.Completed) << Train.Error;

  ProfGenOptions GO;
  GO.Verify = VerifyLevel::Full;

  GO.Kind = ProfGenKind::CS;
  ProfileGenerator CSGen(*Bin, &PT, GO);
  ProfGenResult CSRes = CSGen.generate(Train.Samples);
  EXPECT_TRUE(CSRes.Verify.ok()) << CSRes.Verify.str();
  std::string T1 = serializeContextProfile(CSRes.CS);
  ContextProfile CSBack;
  ASSERT_TRUE(parseContextProfile(T1, CSBack));
  EXPECT_EQ(serializeContextProfile(CSBack), T1);

  GO.Kind = ProfGenKind::ProbeOnly;
  ProfileGenerator FlatGen(*Bin, &PT, GO);
  ProfGenResult FlatRes = FlatGen.generate(Train.Samples);
  EXPECT_TRUE(FlatRes.Verify.ok()) << FlatRes.Verify.str();
  std::string F1 = serializeFlatProfile(FlatRes.Flat);
  FlatProfile FlatBack;
  ASSERT_TRUE(parseFlatProfile(F1, FlatBack));
  EXPECT_EQ(serializeFlatProfile(FlatBack), F1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedProfileRoundTrip,
                         ::testing::Values(19u, 29u, 39u));

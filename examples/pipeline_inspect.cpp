//===- examples/pipeline_inspect.cpp - PGO pipeline inspection ----*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Deep-dive example: for each PGO variant, shows what the pipeline did —
// profile shape and size, loader statistics (annotated functions, stale
// drops, top-down inlines), bottom-up inlines, block-overlap profile
// quality against the instrumentation ground truth, and the resulting
// performance. Useful both as an API tour and for tuning.
//
//===----------------------------------------------------------------------===//

#include "pgo/PGODriver.h"
#include "profile/ProfileIO.h"
#include "quality/BlockOverlap.h"
#include "support/SourceText.h"
#include "workload/Workloads.h"

#include <cstdio>
#include <map>

using namespace csspgo;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "AdRanker";
  double Scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  ExperimentConfig Config;
  Config.Workload = workloadPreset(Name, Scale);
  PGODriver Driver(Config);

  const VariantOutcome &Base = Driver.baseline();
  std::printf("== %s: plain eval cycles %.0f, text %s ==\n\n", Name.c_str(),
              Base.EvalCyclesMean, formatBytes(Base.CodeSizeBytes).c_str());

  std::vector<PGOVariant> Order = {
      PGOVariant::AutoFDO, PGOVariant::CSSPGOProbeOnly,
      PGOVariant::CSSPGOFull, PGOVariant::Instr};
  std::map<PGOVariant, VariantOutcome> Outcomes;
  for (PGOVariant V : Order)
    Outcomes[V] = Driver.run(V);

  // Ground truth for quality: the instrumentation profile.
  auto GroundTruth = annotateForQuality(
      Driver.source(), Outcomes[PGOVariant::Instr].Profile);
  double AutoCycles = Outcomes[PGOVariant::AutoFDO].EvalCyclesMean;

  TextTable Table({"variant", "overlap", "vs plain", "vs AutoFDO", "size",
                   "annotated", "stale", "topdown-inl", "bottomup-inl",
                   "profile bytes"});
  for (PGOVariant V : Order) {
    const VariantOutcome &Out = Outcomes[V];
    auto Annotated = annotateForQuality(Driver.source(), Out.Profile);
    OverlapReport Quality = computeBlockOverlap(*Annotated, *GroundTruth);
    size_t ProfBytes = Out.Profile.IsCS
                           ? profileSizeBytes(Out.Profile.CS)
                           : profileSizeBytes(Out.Profile.Flat);
    double VsAuto = AutoCycles
                        ? 100.0 * (AutoCycles - Out.EvalCyclesMean) / AutoCycles
                        : 0.0;
    Table.addRow({variantName(V), formatPercent(Quality.ProgramOverlap * 100),
                  formatSignedPercent(PGODriver::improvementPct(Out, Base)),
                  formatSignedPercent(VsAuto),
                  formatBytes(Out.CodeSizeBytes),
                  std::to_string(Out.Build->Loader.FunctionsAnnotated),
                  std::to_string(Out.Build->Loader.StaleDropped),
                  std::to_string(Out.Build->Loader.InlinedCallsites),
                  std::to_string(Out.Build->Inliner.NumInlined),
                  std::to_string(ProfBytes)});
  }
  std::printf("%s\n", Table.render().c_str());

  TextTable Micro({"variant", "insts", "icache miss", "mispredict",
                   "taken br", "calls"});
  Micro.addRow({"plain", std::to_string(Base.EvalInstructions),
                std::to_string(Base.EvalICacheMisses),
                std::to_string(Base.EvalMispredicts),
                std::to_string(Base.EvalTakenBranches),
                std::to_string(Base.EvalCalls)});
  for (PGOVariant V : Order) {
    const VariantOutcome &Out = Outcomes[V];
    Micro.addRow({variantName(V), std::to_string(Out.EvalInstructions),
                  std::to_string(Out.EvalICacheMisses),
                  std::to_string(Out.EvalMispredicts),
                  std::to_string(Out.EvalTakenBranches),
                  std::to_string(Out.EvalCalls)});
  }
  std::printf("%s\n", Micro.render().c_str());
  return 0;
}

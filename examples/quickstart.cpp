//===- examples/quickstart.cpp - CSSPGO quickstart ---------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: runs every PGO variant end-to-end on one workload and prints
// the headline comparison — profiling overhead, optimized performance, and
// code size. This is the 60-second tour of the whole system:
//
//   workload IR -> (anchors) -> profiling binary -> simulated run with
//   LBR+stack sampling -> profile generation (incl. context trie and
//   pre-inliner for full CSSPGO) -> optimized rebuild -> measured cycles.
//
//===----------------------------------------------------------------------===//

#include "pgo/PGODriver.h"
#include "support/SourceText.h"
#include "workload/Workloads.h"

#include <cstdio>

using namespace csspgo;

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "AdRanker";
  double Scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  ExperimentConfig Config;
  Config.Workload = workloadPreset(Name, Scale);
  PGODriver Driver(Config);

  std::printf("workload: %s (%u requests)\n", Name.c_str(),
              Config.Workload.Requests);

  const VariantOutcome &Base = Driver.baseline();
  std::printf("plain build: %llu eval cycles, %s text\n\n",
              static_cast<unsigned long long>(Base.EvalCyclesMean),
              formatBytes(Base.CodeSizeBytes).c_str());

  TextTable Table({"variant", "profiling overhead", "speedup vs plain",
                   "code size", "exit value"});
  PGOVariant Variants[] = {PGOVariant::Instr, PGOVariant::AutoFDO,
                           PGOVariant::CSSPGOProbeOnly,
                           PGOVariant::CSSPGOFull};
  for (PGOVariant V : Variants) {
    VariantOutcome Out = Driver.run(V);
    Table.addRow({variantName(V),
                  formatSignedPercent(Out.ProfilingOverheadPct),
                  formatSignedPercent(PGODriver::improvementPct(Out, Base)),
                  formatBytes(Out.CodeSizeBytes),
                  std::to_string(Out.ExitValue)});
    if (Out.ExitValue != Base.ExitValue)
      std::printf("WARNING: %s changed program semantics!\n",
                  variantName(V));
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("All variants must print the same exit value: PGO must\n"
              "never change program semantics.\n");
  return 0;
}

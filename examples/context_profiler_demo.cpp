//===- examples/context_profiler_demo.cpp - Algorithm 1 walkthrough -------===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
//
// A guided tour of the context-sensitive profiler (§III-B): builds the
// paper's Fig. 4-style program (two vector heads sharing a scalar helper),
// runs it with synchronized LBR + stack sampling, reconstructs calling
// contexts with the virtual unwinder (Algorithm 1), and prints the
// resulting context trie — showing that the shared helper's branch
// behavior is fully separated per caller (Fig. 3b), which a flat profile
// cannot express (Fig. 3a). Finishes with the pre-inliner's decisions.
//
//===----------------------------------------------------------------------===//

#include "codegen/Linker.h"
#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "preinline/PreInliner.h"
#include "probe/ProbeInserter.h"
#include "probe/ProbeTable.h"
#include "profgen/BinarySizeExtractor.h"
#include "profgen/CSProfileGenerator.h"
#include "profile/ProfileIO.h"
#include "sim/Executor.h"

#include <cstdio>

using namespace csspgo;

namespace {

/// The paper's Fig. 4 shape:
///   addVectorHead -> scalarOp(mode=ADD) -> scalarAdd path
///   subVectorHead -> scalarOp(mode=SUB) -> scalarSub path
std::unique_ptr<Module> makeFig4Program(int64_t Iters) {
  auto M = std::make_unique<Module>("fig4");

  Function *ScalarOp = M->createFunction("scalarOp", 2); // (x, mode)
  {
    Builder B(ScalarOp);
    BasicBlock *E = ScalarOp->createBlock("entry");
    BasicBlock *AddP = ScalarOp->createBlock("scalarAdd");
    BasicBlock *SubP = ScalarOp->createBlock("scalarSub");
    BasicBlock *J = ScalarOp->createBlock("join");
    B.setInsertBlock(E);
    RegId R = B.emitConst(0);
    B.emitCondBr(Operand::reg(1), AddP, SubP);
    B.setInsertBlock(AddP);
    B.emitBinary(Opcode::Add, Operand::reg(0), Operand::imm(1));
    AddP->Insts.back().Dst = R;
    B.emitBr(J);
    B.setInsertBlock(SubP);
    B.emitBinary(Opcode::Sub, Operand::reg(0), Operand::imm(1));
    SubP->Insts.back().Dst = R;
    B.emitBr(J);
    B.setInsertBlock(J);
    B.emitRet(Operand::reg(R));
  }

  for (const char *Head : {"addVectorHead", "subVectorHead"}) {
    Function *F = M->createFunction(Head, 1);
    Builder B(F);
    BasicBlock *E = F->createBlock("entry");
    B.setInsertBlock(E);
    RegId R = B.emitCall(
        "scalarOp", {Operand::reg(0), Operand::imm(Head[0] == 'a' ? 1 : 0)});
    B.emitRet(Operand::reg(R));
  }

  Function *Main = M->createFunction("main", 0);
  Builder B(Main);
  BasicBlock *E = Main->createBlock("entry");
  BasicBlock *H = Main->createBlock("h");
  BasicBlock *Body = Main->createBlock("b");
  BasicBlock *X = Main->createBlock("x");
  B.setInsertBlock(E);
  RegId Acc = B.emitConst(0);
  RegId I = B.emitConst(0);
  B.emitBr(H);
  B.setInsertBlock(H);
  RegId C = B.emitBinary(Opcode::CmpLT, Operand::reg(I), Operand::imm(Iters));
  B.emitCondBr(Operand::reg(C), Body, X);
  B.setInsertBlock(Body);
  RegId A = B.emitCall("addVectorHead", {Operand::reg(I)});
  RegId S = B.emitCall("subVectorHead", {Operand::reg(I)});
  B.emitBinary(Opcode::Add, Operand::reg(A), Operand::reg(S));
  Body->Insts.back().Dst = Acc;
  B.emitBinary(Opcode::Add, Operand::reg(I), Operand::imm(1));
  Body->Insts.back().Dst = I;
  B.emitBr(H);
  B.setInsertBlock(X);
  B.emitRet(Operand::reg(Acc));
  M->EntryFunction = "main";
  verifyOrDie(*M, "fig4 demo program");
  return M;
}

} // namespace

int main() {
  std::printf("Fig. 3/4 walkthrough: context-sensitive profiling\n"
              "=================================================\n\n");

  // 1. Build + pseudo-instrument.
  auto M = makeFig4Program(5000);
  insertProbes(*M, AnchorKind::PseudoProbe);
  ProbeTable Probes = ProbeTable::fromModule(*M);
  auto Bin = compileToBinary(*M);
  std::printf("program: %zu functions, %llu bytes of code, %zu probes\n",
              M->Functions.size(),
              static_cast<unsigned long long>(Bin->textSize()),
              Bin->Probes.size());

  // 2. Run with synchronized LBR + stack sampling.
  ExecConfig EC;
  EC.Sampler.Enabled = true;
  EC.Sampler.PeriodCycles = 211;
  std::vector<int64_t> Mem(64, 0);
  RunResult R = execute(*Bin, "main", Mem, EC);
  std::printf("profiling run: %llu cycles, %zu PMU samples "
              "(16-deep LBR + stack each)\n\n",
              static_cast<unsigned long long>(R.Cycles), R.Samples.size());

  // 3. Reconstruct contexts (Algorithm 1) and build the trie.
  CSProfileGenStats Stats;
  ContextProfile CS = generateCSProfile(*Bin, Probes, R.Samples, {}, &Stats);
  std::printf("unwinder: %llu samples, %llu unsynced\n",
              static_cast<unsigned long long>(Stats.Samples),
              static_cast<unsigned long long>(Stats.UnsyncedSamples));
  std::printf("\ncontext trie (scalarOp probe 2 = add path, probe 3 = sub "
              "path):\n");
  CS.forEachNode([](const SampleContext &Ctx, const ContextTrieNode &N) {
    std::printf("  %-58s total=%-8llu add=%-6llu sub=%llu\n",
                contextToString(Ctx).c_str(),
                static_cast<unsigned long long>(N.Profile.TotalSamples),
                static_cast<unsigned long long>(N.Profile.bodyAt({2, 0})),
                static_cast<unsigned long long>(N.Profile.bodyAt({3, 0})));
  });

  // 4. Pre-inliner (Algorithm 2) with binary-measured sizes (Algorithm 3).
  FuncSizeTable Sizes = extractFuncSizes(*Bin);
  PreInlinerStats PS = runPreInliner(CS, Sizes);
  std::printf("\npre-inliner: marked %u contexts ShouldBeInlined, merged %u "
              "into base profiles (hot threshold %llu)\n",
              PS.ContextsMarkedInlined, PS.ContextsMergedToBase,
              static_cast<unsigned long long>(PS.HotThresholdUsed));
  std::printf("\nfinal profile (as shipped to the compiler):\n%s\n",
              serializeContextProfile(CS).c_str());
  std::printf("Note how scalarOp's contexts are 100%%-biased per caller:\n"
              "that is the context-sensitivity a flat profile averages\n"
              "away (Fig. 3a vs 3b).\n");
  return 0;
}

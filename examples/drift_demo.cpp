//===- examples/drift_demo.cpp - source drift resilience -----------------===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates §III-A's source-drift problem end to end: profiles are
// collected on version 1 of a service; version 2 inserts a comment block
// (lines shift, CFG identical). AutoFDO's line-offset keys silently bind
// samples to the wrong statements; CSSPGO's probes are unaffected and its
// CFG checksum certifies the profile is still valid.
//
//===----------------------------------------------------------------------===//

#include "pgo/PGODriver.h"
#include "quality/BlockOverlap.h"
#include "support/SourceText.h"
#include "workload/Workloads.h"

#include <cstdio>

using namespace csspgo;

int main(int argc, char **argv) {
  double Scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  ExperimentConfig Config;
  Config.Workload = workloadPreset("AdRanker", Scale);
  PGODriver Driver(Config);

  std::printf("source drift demo (AdRanker)\n"
              "============================\n\n");
  const VariantOutcome &Plain = Driver.baseline();

  // "Version 2": a comment block inserted mid-function everywhere.
  auto V2 = Driver.source().clone();
  applySourceDrift(*V2, 3);

  for (PGOVariant V : {PGOVariant::AutoFDO, PGOVariant::CSSPGOFull}) {
    VariantOutcome Out = Driver.run(V);
    BuildConfig BC;
    BC.Variant = V;
    if (V == PGOVariant::CSSPGOFull)
      BC.Loader.InlineHotContexts = false;
    BuildResult Drifted = buildWithPGO(*V2, BC, &Out.Profile);

    std::vector<int64_t> Mem =
        generateInput(Config.Workload, Config.EvalSeedBase, Config.EvalShift);
    RunResult R = execute(*Drifted.Bin, "main", Mem, {});

    double Before =
        100.0 * (Plain.EvalCyclesMean - Out.EvalCyclesMean) /
        Plain.EvalCyclesMean;
    double After = 100.0 *
                   (Plain.EvalCyclesMean - static_cast<double>(R.Cycles)) /
                   Plain.EvalCyclesMean;
    std::printf("%-18s gain without drift %s, with drift %s "
                "(stale-dropped: %u)\n",
                variantName(V), formatSignedPercent(Before).c_str(),
                formatSignedPercent(After).c_str(),
                Drifted.Loader.StaleDropped);
  }
  std::printf("\npaper §III-A: \"we have observed minor source drift\n"
              "causing 8%% performance loss for a server workload\";\n"
              "pseudo-probes key on CFG structure, not line offsets, and\n"
              "the persisted CFG checksum detects real CFG changes.\n");
  return 0;
}

//===- tools/FuzzHarness.h - Differential profile-pipeline fuzzing -*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded differential fuzzing of the profile pipeline (the `csspgo_exp
/// fuzz` subcommand). Each iteration derives a randomized workload module
/// and sampling configuration from the iteration seed and cross-checks
/// every redundant pair the pipeline offers:
///
///  - fast-path vs reference-mode executor: bit-identical RunResults and
///    final memory images;
///  - serial vs sharded profile generation (CS and probe-only): identical
///    serialized bytes for a random shard count;
///  - ProfileVerifier at Full level (including probe-table agreement) on
///    every freshly generated profile — CS, probe-only, AutoFDO;
///  - serialize -> parse -> serialize fixpoint for both text formats;
///  - merge algebra: merging into an empty database is an identity,
///    re-merging doubles counts without creating contexts, and the result
///    still verifies;
///  - cold-context trimming is idempotent (a second trim at the same
///    threshold merges nothing and leaves the bytes unchanged) and the
///    trimmed trie still verifies;
///  - truncated profile text either fails to parse or parses to a profile
///    that is still self-consistent;
///  - stale-profile matching after a random CFG drift lands recovered
///    counts only on anchors that exist in the fresh IR.
///
/// Iteration seeds are derived as Base + I * golden-ratio so a reported
/// failure reproduces in isolation with `csspgo_exp fuzz 1 <seed>`.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_TOOLS_FUZZHARNESS_H
#define CSSPGO_TOOLS_FUZZHARNESS_H

#include <cstdint>

namespace csspgo {

struct FuzzOptions {
  unsigned Iterations = 200;
  uint64_t BaseSeed = 0xC55;
  /// Print a progress line every 50 iterations.
  bool Verbose = true;
};

/// Runs the differential fuzz loop. Returns 0 when every iteration agreed
/// on every cross-check, 1 on the first divergence (after printing the
/// failing iteration's seed and a repro command line).
int runProfileFuzz(const FuzzOptions &Opts);

} // namespace csspgo

#endif // CSSPGO_TOOLS_FUZZHARNESS_H

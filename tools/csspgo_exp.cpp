//===- tools/csspgo_exp.cpp - experiment CLI ----------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Command-line driver over the experiment pipeline, the library's
// "binary distribution" face:
//
//   csspgo_exp run      <workload> <variant> [scale]   end-to-end PGO run
//   csspgo_exp profile  <workload> <variant> [scale]   print the profile text
//   csspgo_exp compare  <workload> [scale]             all variants side by side
//   csspgo_exp ir       <workload> [scale]             dump the generated IR
//   csspgo_exp fuzz     [iterations] [seed]            differential fuzzing
//   csspgo_exp list                                    workloads and variants
//
// Variants: none instr autofdo probeonly csspgo
// Options:  -j N | --parallelism N   shard profile generation over N
//           threads (0 = one per hardware thread; output is bit-identical
//           for any N)
//
//===----------------------------------------------------------------------===//

#include "FuzzHarness.h"
#include "ir/Printer.h"
#include "pgo/PGODriver.h"
#include "profile/ProfileIO.h"
#include "support/SourceText.h"
#include "workload/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace csspgo;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: csspgo_exp run|profile|compare|ir|fuzz|list "
               "[workload] [variant] [scale] [-j N]\n"
               "       csspgo_exp fuzz [iterations] [seed]\n");
  return 2;
}

/// Profile-generation parallelism from -j/--parallelism (default serial).
unsigned GenParallelism = 1;

/// Strips -j N / --parallelism N from (argc, argv). Returns false on a
/// malformed flag.
bool parseParallelismFlag(int &argc, char **argv) {
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "-j") == 0 ||
        std::strcmp(argv[I], "--parallelism") == 0) {
      if (I + 1 >= argc)
        return false;
      char *End = nullptr;
      unsigned long N = std::strtoul(argv[I + 1], &End, 10);
      if (End == argv[I + 1] || *End)
        return false;
      GenParallelism = static_cast<unsigned>(N);
      ++I; // Skip the value.
      continue;
    }
    argv[Out++] = argv[I];
  }
  argc = Out;
  return true;
}

bool parseVariant(const std::string &S, PGOVariant &V) {
  if (S == "none")
    V = PGOVariant::None;
  else if (S == "instr")
    V = PGOVariant::Instr;
  else if (S == "autofdo")
    V = PGOVariant::AutoFDO;
  else if (S == "probeonly")
    V = PGOVariant::CSSPGOProbeOnly;
  else if (S == "csspgo")
    V = PGOVariant::CSSPGOFull;
  else
    return false;
  return true;
}

int cmdList() {
  std::printf("workloads:");
  for (const std::string &W : serverWorkloadNames())
    std::printf(" %s", W.c_str());
  std::printf(" ClangProxy\nvariants: none instr autofdo probeonly csspgo\n");
  return 0;
}

int cmdRun(const std::string &Workload, PGOVariant V, double Scale) {
  ExperimentConfig Config;
  Config.Workload = workloadPreset(Workload, Scale);
  Config.Parallelism = GenParallelism;
  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  VariantOutcome Out = Driver.run(V);
  std::printf("workload:            %s (%u requests)\n", Workload.c_str(),
              Config.Workload.Requests);
  std::printf("variant:             %s\n", variantName(V));
  std::printf("profiling overhead:  %s\n",
              formatSignedPercent(Out.ProfilingOverheadPct).c_str());
  std::printf("eval cycles:         %.0f (plain %.0f)\n", Out.EvalCyclesMean,
              Base.EvalCyclesMean);
  std::printf("speedup vs plain:    %s\n",
              formatSignedPercent(PGODriver::improvementPct(Out, Base))
                  .c_str());
  std::printf("code size:           %s\n",
              formatBytes(Out.CodeSizeBytes).c_str());
  if (V != PGOVariant::None)
    std::printf("verifier:            %s\n",
                Out.ProfGenVerify.str().c_str());
  std::printf("loader: %u annotated, %u top-down inlines, %u ICP, "
              "%u stale drops\n",
              Out.Build->Loader.FunctionsAnnotated,
              Out.Build->Loader.InlinedCallsites,
              Out.Build->Loader.PromotedIndirectCalls,
              Out.Build->Loader.StaleDropped);
  if (Out.Build->Loader.StaleMatched)
    std::printf("stale matching:      %u recovered, %llu anchors, "
                "%llu counts\n",
                Out.Build->Loader.StaleMatched,
                static_cast<unsigned long long>(
                    Out.Build->Loader.StaleAnchorsMatched),
                static_cast<unsigned long long>(
                    Out.Build->Loader.StaleCountsRecovered));
  std::printf("exit value:          %lld (plain %lld%s)\n",
              static_cast<long long>(Out.ExitValue),
              static_cast<long long>(Base.ExitValue),
              Out.ExitValue == Base.ExitValue ? ", identical"
                                              : " — MISMATCH!");
  return Out.ExitValue == Base.ExitValue ? 0 : 1;
}

int cmdProfile(const std::string &Workload, PGOVariant V, double Scale) {
  ExperimentConfig Config;
  Config.Workload = workloadPreset(Workload, Scale);
  Config.Parallelism = GenParallelism;
  PGODriver Driver(Config);
  VariantOutcome Out = Driver.run(V);
  if (!Out.Profile.Has) {
    std::fprintf(stderr, "variant '%s' produces no profile\n",
                 variantName(V));
    return 1;
  }
  std::string Text = Out.Profile.IsCS
                         ? serializeContextProfile(Out.Profile.CS)
                         : serializeFlatProfile(Out.Profile.Flat);
  std::fputs(Text.c_str(), stdout);
  return 0;
}

int cmdCompare(const std::string &Workload, double Scale) {
  ExperimentConfig Config;
  Config.Workload = workloadPreset(Workload, Scale);
  Config.Parallelism = GenParallelism;
  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  TextTable Table({"variant", "profiling overhead", "vs plain", "size"});
  for (PGOVariant V : {PGOVariant::Instr, PGOVariant::AutoFDO,
                       PGOVariant::CSSPGOProbeOnly, PGOVariant::CSSPGOFull}) {
    VariantOutcome Out = Driver.run(V);
    Table.addRow({variantName(V),
                  formatSignedPercent(Out.ProfilingOverheadPct),
                  formatSignedPercent(PGODriver::improvementPct(Out, Base)),
                  formatBytes(Out.CodeSizeBytes)});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}

int cmdIR(const std::string &Workload, double Scale) {
  auto M = generateProgram(workloadPreset(Workload, Scale));
  std::fputs(printModule(*M).c_str(), stdout);
  return 0;
}

int cmdFuzz(int argc, char **argv) {
  FuzzOptions Opts;
  if (argc > 2) {
    char *End = nullptr;
    unsigned long N = std::strtoul(argv[2], &End, 10);
    if (End == argv[2] || *End || N == 0) {
      std::fprintf(stderr, "fuzz: bad iteration count '%s'\n", argv[2]);
      return 2;
    }
    Opts.Iterations = static_cast<unsigned>(N);
  }
  if (argc > 3) {
    char *End = nullptr;
    // Base 0: accepts the 0x-prefixed seeds the failure report prints.
    unsigned long long S = std::strtoull(argv[3], &End, 0);
    if (End == argv[3] || *End) {
      std::fprintf(stderr, "fuzz: bad seed '%s'\n", argv[3]);
      return 2;
    }
    Opts.BaseSeed = S;
  }
  return runProfileFuzz(Opts);
}

} // namespace

int main(int argc, char **argv) {
  if (!parseParallelismFlag(argc, argv))
    return usage();
  if (argc < 2)
    return usage();
  std::string Cmd = argv[1];
  if (Cmd == "list")
    return cmdList();
  if (Cmd == "fuzz")
    return cmdFuzz(argc, argv);
  if (argc < 3)
    return usage();
  std::string Workload = argv[2];

  if (Cmd == "ir")
    return cmdIR(Workload, argc > 3 ? std::atof(argv[3]) : 1.0);
  if (Cmd == "compare")
    return cmdCompare(Workload, argc > 3 ? std::atof(argv[3]) : 1.0);

  if (argc < 4)
    return usage();
  PGOVariant V;
  if (!parseVariant(argv[3], V)) {
    std::fprintf(stderr, "unknown variant '%s'\n", argv[3]);
    return 2;
  }
  double Scale = argc > 4 ? std::atof(argv[4]) : 1.0;
  if (Cmd == "run")
    return cmdRun(Workload, V, Scale);
  if (Cmd == "profile")
    return cmdProfile(Workload, V, Scale);
  return usage();
}

//===- tools/csspgo_exp.cpp - experiment CLI ----------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Command-line driver over the experiment pipeline, the library's
// "binary distribution" face. The subcommand table, shared flag parsing
// and all help text live in ExpCLI.{h,cpp} (golden-tested); this file
// maps table entries to handlers.
//
//===----------------------------------------------------------------------===//

#include "ExpCLI.h"
#include "FuzzHarness.h"
#include "ir/Printer.h"
#include "pgo/PGODriver.h"
#include "pgo/ProfilePipeline.h"
#include "profile/ProfileIO.h"
#include "service/ProfileService.h"
#include "store/ProfileStore.h"
#include "support/SourceText.h"
#include "train/ReleaseTrain.h"
#include "workload/Workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace csspgo;

namespace {

int usage();

/// Options shared by every subcommand, stripped from argv before dispatch.
cli::GlobalOptions G;

bool parseVariant(const std::string &S, PGOVariant &V) {
  if (S == "none")
    V = PGOVariant::None;
  else if (S == "instr")
    V = PGOVariant::Instr;
  else if (S == "autofdo")
    V = PGOVariant::AutoFDO;
  else if (S == "probeonly")
    V = PGOVariant::CSSPGOProbeOnly;
  else if (S == "csspgo")
    V = PGOVariant::CSSPGOFull;
  else if (S == "trace")
    V = PGOVariant::Trace;
  else
    return false;
  return true;
}

ExperimentConfig makeConfig(const std::string &Workload, double Scale) {
  ExperimentConfig Config;
  Config.Workload = workloadPreset(Workload, Scale);
  Config.Parallelism = G.Parallelism;
  Config.Transport = G.Transport;
  return Config;
}

bool readFileAll(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool writeFileAll(const std::string &Path, const std::string &Data) {
  std::ofstream OutS(Path, std::ios::binary | std::ios::trunc);
  OutS.write(Data.data(), static_cast<std::streamsize>(Data.size()));
  return static_cast<bool>(OutS);
}

bool isStoreBytes(const std::string &Data) {
  return Data.size() >= 4 && std::memcmp(Data.data(), StoreMagic, 4) == 0;
}

/// Context-profile text carries "[ctx]:T:H" records; flat text carries
/// "name:T:H" at column 0. Directive lines ("!kind: ...") and indented
/// body lines are common to both.
bool looksLikeContextText(const std::string &Text) {
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    if (End > Pos && Text[Pos] != '!' && Text[Pos] != ' ')
      return Text[Pos] == '[';
    Pos = End + 1;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Subcommand handlers. Each receives argv with option flags stripped:
// argv[1] is the subcommand name, operands start at argv[2].
//===----------------------------------------------------------------------===//

int cmdList(int, char **) {
  std::printf("workloads:");
  for (const std::string &W : serverWorkloadNames())
    std::printf(" %s", W.c_str());
  for (const std::string &W : archetypeWorkloadNames())
    std::printf(" %s", W.c_str());
  std::printf(" ClangProxy\n"
              "variants: none instr autofdo probeonly csspgo trace\n");
  return 0;
}

/// `run --json`: the run header plus the unified PipelineStats, one
/// object, stable key order — the same stats shape the fleet dashboard
/// embeds per service.
void printRunJSON(const char *Workload, PGOVariant V,
                  const ExperimentConfig &Config, const VariantOutcome &Out,
                  const VariantOutcome &Base) {
  PipelineStats PS;
  PS.ProfGen = Out.ProfGen;
  PS.Reduce = Out.ProfGenReduce;
  PS.Loader = Out.Build->Loader;
  PS.Verify = Out.ProfGenVerify;
  PS.ShardsUsed = std::max(1u, G.Parallelism);
  PS.TotalSamples = Out.ProfGen.Samples;

  std::printf("{\"workload\":\"%s\",\"requests\":%u,\"variant\":\"%s\","
              "\"transport\":\"%s\","
              "\"profiling_overhead_pct\":%.4f,"
              "\"eval_cycles\":%.0f,\"plain_cycles\":%.0f,"
              "\"speedup_pct\":%.4f,\"code_size_bytes\":%llu,"
              "\"exit_value\":%lld,\"exit_match\":%s,"
              "\"pipeline\":%s}\n",
              Workload, Config.Workload.Requests, variantName(V),
              transportName(G.Transport), Out.ProfilingOverheadPct,
              Out.EvalCyclesMean, Base.EvalCyclesMean,
              PGODriver::improvementPct(Out, Base),
              static_cast<unsigned long long>(Out.CodeSizeBytes),
              static_cast<long long>(Out.ExitValue),
              Out.ExitValue == Base.ExitValue ? "true" : "false",
              PS.toJSON().c_str());
}

int cmdRun(int argc, char **argv) {
  bool PostLink = cli::takeBoolFlag(argc, argv, "--postlink");
  std::string Mode, Err;
  if (!cli::takeValueFlag(argc, argv, "--mode", Mode, Err)) {
    std::fprintf(stderr, "run: %s\n", Err.c_str());
    return 2;
  }
  if (const char *Flag = cli::firstFlag(argc, argv)) {
    std::fprintf(stderr, "run: unknown option '%s'\n", Flag);
    return 2;
  }
  if (argc < 4)
    return usage();
  PGOVariant V;
  if (!parseVariant(argv[3], V)) {
    std::fprintf(stderr, "unknown variant '%s'\n", argv[3]);
    return 2;
  }
  if (!Mode.empty()) {
    // --mode selects the collection mechanism behind the csspgo profile:
    // sampling (the default), the core-instruction trace, or counters.
    if (V != PGOVariant::CSSPGOFull && V != PGOVariant::Trace) {
      std::fprintf(stderr, "run: --mode applies to the csspgo variant\n");
      return 2;
    }
    if (Mode == "sample")
      V = PGOVariant::CSSPGOFull;
    else if (Mode == "trace")
      V = PGOVariant::Trace;
    else if (Mode == "instr")
      V = PGOVariant::Instr;
    else {
      std::fprintf(stderr, "run: unknown --mode '%s' (sample|trace|instr)\n",
                   Mode.c_str());
      return 2;
    }
  }
  ExperimentConfig Config =
      makeConfig(argv[2], argc > 4 ? std::atof(argv[4]) : 1.0);
  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  VariantOutcome Out;
  PostLinkOutcome PL;
  if (PostLink) {
    PL = Driver.runPostLink(V);
    Out = std::move(PL.Base);
  } else {
    Out = Driver.run(V);
  }
  bool ExitOk = Out.ExitValue == Base.ExitValue &&
                (!PostLink || PL.ExitValue == Out.ExitValue);
  if (G.JSON) {
    printRunJSON(argv[2], V, Config, Out, Base);
    if (V == PGOVariant::Trace)
      std::printf("{\"trace\":{\"bytes\":%llu,\"packets\":%llu,"
                  "\"branch_events\":%llu,\"truncated\":%s,"
                  "\"timestamps\":%llu,\"timestamp_mismatches\":%llu}}\n",
                  static_cast<unsigned long long>(Out.TraceBytes),
                  static_cast<unsigned long long>(Out.TracePackets),
                  static_cast<unsigned long long>(Out.TraceBranchEvents),
                  Out.TraceTruncated ? "true" : "false",
                  static_cast<unsigned long long>(Out.TraceTimestamps),
                  static_cast<unsigned long long>(
                      Out.TraceTimestampMismatches));
    if (PostLink)
      std::printf("{\"postlink\":{\"eval_cycles\":%.0f,"
                  "\"mapped_sample_rate\":%.4f,\"funcs_folded\":%u,"
                  "\"funcs_reordered\":%u,\"funcs_split\":%u,"
                  "\"transforms_gated\":%s,\"exit_match\":%s}}\n",
                  PL.EvalCyclesMean, PL.Stats.Map.MappedSampleRate,
                  PL.Stats.FuncsFolded, PL.Stats.FuncsReordered,
                  PL.Stats.FuncsSplit,
                  PL.Stats.TransformsGated ? "true" : "false",
                  PL.ExitValue == Out.ExitValue ? "true" : "false");
    return ExitOk ? 0 : 1;
  }
  std::printf("workload:            %s (%u requests)\n", argv[2],
              Config.Workload.Requests);
  std::printf("variant:             %s\n", variantName(V));
  std::printf("profiling overhead:  %s\n",
              formatSignedPercent(Out.ProfilingOverheadPct).c_str());
  if (V == PGOVariant::Trace)
    std::printf("trace:               %s%s, %llu packets, %llu TSC "
                "(%llu mismatches)\n",
                formatBytes(Out.TraceBytes).c_str(),
                Out.TraceTruncated ? " (truncated)" : "",
                static_cast<unsigned long long>(Out.TracePackets),
                static_cast<unsigned long long>(Out.TraceTimestamps),
                static_cast<unsigned long long>(
                    Out.TraceTimestampMismatches));
  std::printf("eval cycles:         %.0f (plain %.0f)\n", Out.EvalCyclesMean,
              Base.EvalCyclesMean);
  std::printf("speedup vs plain:    %s\n",
              formatSignedPercent(PGODriver::improvementPct(Out, Base))
                  .c_str());
  std::printf("code size:           %s\n",
              formatBytes(Out.CodeSizeBytes).c_str());
  if (V != PGOVariant::None)
    std::printf("verifier:            %s\n",
                Out.ProfGenVerify.str().c_str());
  std::printf("loader: %u annotated, %u top-down inlines, %u ICP, "
              "%u stale drops\n",
              Out.Build->Loader.FunctionsAnnotated,
              Out.Build->Loader.InlinedCallsites,
              Out.Build->Loader.PromotedIndirectCalls,
              Out.Build->Loader.StaleDropped);
  if (Out.Build->Loader.StaleMatched)
    std::printf("stale matching:      %u recovered, %llu anchors, "
                "%llu counts\n",
                Out.Build->Loader.StaleMatched,
                static_cast<unsigned long long>(
                    Out.Build->Loader.StaleAnchorsMatched),
                static_cast<unsigned long long>(
                    Out.Build->Loader.StaleCountsRecovered));
  if (G.Transport != ProfileTransport::InMemory) {
    std::printf("profile transport:   %s", transportName(G.Transport));
    if (Out.Build->Loader.StoreFunctionsMaterialized ||
        Out.Build->Loader.StoreFunctionsSkipped)
      std::printf(" (%u store functions materialized, %u skipped)",
                  Out.Build->Loader.StoreFunctionsMaterialized,
                  Out.Build->Loader.StoreFunctionsSkipped);
    std::printf("\n");
  }
  if (PostLink) {
    double VsBase = Out.EvalCyclesMean > 0
                        ? (Out.EvalCyclesMean - PL.EvalCyclesMean) /
                              Out.EvalCyclesMean * 100.0
                        : 0.0;
    std::printf("post-link cycles:    %.0f (%s vs the PGO'd binary)\n",
                PL.EvalCyclesMean, formatSignedPercent(VsBase).c_str());
    std::printf("post-link:           mapped %.1f%%, %u folded, "
                "%u reordered, %u split%s\n",
                PL.Stats.Map.MappedSampleRate * 100.0, PL.Stats.FuncsFolded,
                PL.Stats.FuncsReordered, PL.Stats.FuncsSplit,
                PL.Stats.TransformsGated
                    ? " (layout transforms gated: low mapped rate)"
                    : "");
  }
  std::printf("exit value:          %lld (plain %lld%s)\n",
              static_cast<long long>(Out.ExitValue),
              static_cast<long long>(Base.ExitValue),
              ExitOk ? ", identical" : " — MISMATCH!");
  return ExitOk ? 0 : 1;
}

/// `trace <workload> [scale]`: one traced training run cross-checked
/// against the PMU-sampling path. The exit status pins the headline
/// property (trace-derived profile bit-identical to the sampling path's),
/// so the CI smoke can gate on it.
int cmdTrace(int argc, char **argv) {
  unsigned long long Every = 32, MaxKB = 64 * 1024;
  bool NoCompress = cli::takeBoolFlag(argc, argv, "--no-compress");
  std::string Err;
  if (!cli::takeUnsignedFlag(argc, argv, "--every", Every, Err) ||
      !cli::takeUnsignedFlag(argc, argv, "--max-kb", MaxKB, Err)) {
    std::fprintf(stderr, "trace: %s\n", Err.c_str());
    return 2;
  }
  if (const char *Flag = cli::firstFlag(argc, argv)) {
    std::fprintf(stderr, "trace: unknown option '%s'\n", Flag);
    return 2;
  }
  if (argc < 3)
    return usage();

  ExperimentConfig Config =
      makeConfig(argv[2], argc > 3 ? std::atof(argv[3]) : 1.0);
  Config.Trace.TimestampEvery = static_cast<uint32_t>(Every);
  Config.Trace.MaxBytes = MaxKB * 1024;
  Config.Trace.CompressTimestamps = !NoCompress;

  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  VariantOutcome T = Driver.run(PGOVariant::Trace);
  VariantOutcome S = Driver.run(PGOVariant::CSSPGOFull);

  // The decoder replays the trace against the exact sampler configuration
  // the sampling path ran under, so the two context profiles must be
  // byte-identical whenever frequencies suffice.
  bool Identical = serializeContextProfile(T.Profile.CS) ==
                   serializeContextProfile(S.Profile.CS);
  bool ExitOk = T.ExitValue == Base.ExitValue;
  double BytesPerEvent =
      T.TraceBranchEvents
          ? static_cast<double>(T.TraceBytes) / T.TraceBranchEvents
          : 0.0;

  uint64_t TimedBlocks = 0, TimedCycles = 0, TimedMispredicts = 0;
  if (T.Profile.Timing) {
    TimedBlocks = T.Profile.Timing->Blocks.size();
    for (const auto &[Key, St] : T.Profile.Timing->Blocks) {
      TimedCycles += St.Cycles;
      TimedMispredicts += St.Mispredicts;
    }
  }

  if (G.JSON) {
    std::printf(
        "{\"workload\":\"%s\",\"trace_bytes\":%llu,\"packets\":%llu,"
        "\"branch_events\":%llu,\"bytes_per_branch\":%.4f,"
        "\"truncated\":%s,\"timestamps\":%llu,"
        "\"timestamp_mismatches\":%llu,"
        "\"trace_overhead_pct\":%.4f,\"sampling_overhead_pct\":%.4f,"
        "\"profile_match\":%s,\"timing_blocks\":%llu,"
        "\"timing_cycles\":%llu,\"timing_mispredicts\":%llu,"
        "\"exit_match\":%s}\n",
        argv[2], static_cast<unsigned long long>(T.TraceBytes),
        static_cast<unsigned long long>(T.TracePackets),
        static_cast<unsigned long long>(T.TraceBranchEvents), BytesPerEvent,
        T.TraceTruncated ? "true" : "false",
        static_cast<unsigned long long>(T.TraceTimestamps),
        static_cast<unsigned long long>(T.TraceTimestampMismatches),
        T.ProfilingOverheadPct, S.ProfilingOverheadPct,
        Identical ? "true" : "false",
        static_cast<unsigned long long>(TimedBlocks),
        static_cast<unsigned long long>(TimedCycles),
        static_cast<unsigned long long>(TimedMispredicts),
        ExitOk ? "true" : "false");
    return Identical && ExitOk ? 0 : 1;
  }
  std::printf("workload:            %s (%u requests)\n", argv[2],
              Config.Workload.Requests);
  std::printf("trace:               %s%s, %llu packets, %llu branch "
              "events\n",
              formatBytes(T.TraceBytes).c_str(),
              T.TraceTruncated ? " (truncated)" : "",
              static_cast<unsigned long long>(T.TracePackets),
              static_cast<unsigned long long>(T.TraceBranchEvents));
  std::printf("compression:         %.2f bytes/branch event (timestamp "
              "every %llu%s)\n",
              BytesPerEvent, Every, NoCompress ? ", raw" : "");
  std::printf("timestamp check:     %llu TSC packets, %llu mismatches\n",
              static_cast<unsigned long long>(T.TraceTimestamps),
              static_cast<unsigned long long>(T.TraceTimestampMismatches));
  std::printf("profiling overhead:  %s (sampling %s)\n",
              formatSignedPercent(T.ProfilingOverheadPct).c_str(),
              formatSignedPercent(S.ProfilingOverheadPct).c_str());
  std::printf("profile match:       %s\n",
              Identical ? "bit-identical to the sampling path"
                        : "MISMATCH vs the sampling path!");
  std::printf("timing profile:      %llu blocks, %llu cycles attributed, "
              "%llu mispredicts\n",
              static_cast<unsigned long long>(TimedBlocks),
              static_cast<unsigned long long>(TimedCycles),
              static_cast<unsigned long long>(TimedMispredicts));
  std::printf("exit value:          %lld (plain %lld%s)\n",
              static_cast<long long>(T.ExitValue),
              static_cast<long long>(Base.ExitValue),
              ExitOk ? ", identical" : " — MISMATCH!");
  return Identical && ExitOk ? 0 : 1;
}

int cmdBolt(int argc, char **argv) {
  postlink::PostLinkOptions Opts;
  if (cli::takeBoolFlag(argc, argv, "--no-fold"))
    Opts.Fold = false;
  if (cli::takeBoolFlag(argc, argv, "--no-reorder"))
    Opts.Reorder = false;
  if (cli::takeBoolFlag(argc, argv, "--no-split"))
    Opts.Split = false;
  unsigned long long MinMapped = 500;
  std::string Err;
  if (!cli::takeUnsignedFlag(argc, argv, "--min-mapped", MinMapped, Err) ||
      MinMapped > 1000) {
    std::fprintf(stderr, "bolt: %s\n",
                 Err.empty() ? "--min-mapped takes a permille (0..1000)"
                             : Err.c_str());
    return 2;
  }
  Opts.MinMappedRate = static_cast<double>(MinMapped) / 1000.0;
  if (const char *Flag = cli::firstFlag(argc, argv)) {
    std::fprintf(stderr, "bolt: unknown option '%s'\n", Flag);
    return 2;
  }
  if (argc < 4)
    return usage();
  PGOVariant V;
  if (!parseVariant(argv[3], V)) {
    std::fprintf(stderr, "unknown variant '%s'\n", argv[3]);
    return 2;
  }
  ExperimentConfig Config =
      makeConfig(argv[2], argc > 4 ? std::atof(argv[4]) : 1.0);
  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  PostLinkOutcome PL = Driver.runPostLink(V, Opts);
  const postlink::PostLinkStats &S = PL.Stats;
  double VsVariant = PL.Base.EvalCyclesMean > 0
                         ? (PL.Base.EvalCyclesMean - PL.EvalCyclesMean) /
                               PL.Base.EvalCyclesMean * 100.0
                         : 0.0;
  double VsPlain = Base.EvalCyclesMean > 0
                       ? (Base.EvalCyclesMean - PL.EvalCyclesMean) /
                             Base.EvalCyclesMean * 100.0
                       : 0.0;
  bool ExitOk =
      PL.ExitValue == PL.Base.ExitValue && PL.ExitValue == Base.ExitValue;
  if (G.JSON) {
    std::printf(
        "{\"workload\":\"%s\",\"variant\":\"%s\","
        "\"eval_cycles_variant\":%.0f,\"eval_cycles_bolt\":%.0f,"
        "\"plain_cycles\":%.0f,"
        "\"speedup_vs_variant_pct\":%.4f,\"speedup_vs_plain_pct\":%.4f,"
        "\"mapped_sample_rate\":%.4f,"
        "\"funcs_folded\":%u,\"funcs_reordered\":%u,\"funcs_split\":%u,"
        "\"blocks_split\":%u,\"transforms_gated\":%s,"
        "\"text_bytes_before\":%llu,\"text_bytes_after\":%llu,"
        "\"rewrite_kept\":%s,\"exit_match\":%s}\n",
        argv[2], variantName(V), PL.Base.EvalCyclesMean, PL.EvalCyclesMean,
        Base.EvalCyclesMean, VsVariant, VsPlain, S.Map.MappedSampleRate,
        S.FuncsFolded, S.FuncsReordered, S.FuncsSplit, S.BlocksSplit,
        S.TransformsGated ? "true" : "false",
        static_cast<unsigned long long>(S.TextBytesBefore),
        static_cast<unsigned long long>(S.TextBytesAfter),
        PL.RewriteKept ? "true" : "false", ExitOk ? "true" : "false");
    return ExitOk ? 0 : 1;
  }
  std::printf("workload:            %s (%u requests)\n", argv[2],
              Config.Workload.Requests);
  std::printf("variant:             %s + post-link\n", variantName(V));
  std::printf("eval cycles:         %.0f (variant %.0f, plain %.0f)\n",
              PL.EvalCyclesMean, PL.Base.EvalCyclesMean,
              Base.EvalCyclesMean);
  std::printf("speedup vs variant:  %s\n",
              formatSignedPercent(VsVariant).c_str());
  std::printf("speedup vs plain:    %s\n",
              formatSignedPercent(VsPlain).c_str());
  std::printf("mapped sample rate:  %.1f%% (%llu of %llu LBR endpoints)\n",
              S.Map.MappedSampleRate * 100.0,
              static_cast<unsigned long long>(S.Map.LBRResolved),
              static_cast<unsigned long long>(S.Map.LBREndpoints));
  std::printf("transforms:          %u folded, %u reordered, %u split "
              "(%u blocks)%s\n",
              S.FuncsFolded, S.FuncsReordered, S.FuncsSplit, S.BlocksSplit,
              S.TransformsGated
                  ? " — layout transforms gated: low mapped rate"
                  : "");
  if (S.Map.StaleProfiles)
    std::printf("stale profiles:      %u routed through the matcher "
                "(%u recovered, %u dropped)\n",
                S.Map.StaleProfiles, S.Map.StaleRecovered,
                S.Map.StaleDropped);
  std::printf("text bytes:          %llu -> %llu\n",
              static_cast<unsigned long long>(S.TextBytesBefore),
              static_cast<unsigned long long>(S.TextBytesAfter));
  std::printf("train guard:         %s (train cycles %llu -> %llu)\n",
              PL.RewriteKept ? "rewrite shipped"
                             : "rewrite rejected, variant binary shipped",
              static_cast<unsigned long long>(PL.TrainCyclesVariant),
              static_cast<unsigned long long>(PL.TrainCyclesRewrite));
  std::printf("exit value:          %lld (variant %lld, plain %lld%s)\n",
              static_cast<long long>(PL.ExitValue),
              static_cast<long long>(PL.Base.ExitValue),
              static_cast<long long>(Base.ExitValue),
              ExitOk ? ", identical" : " — MISMATCH!");
  return ExitOk ? 0 : 1;
}

int cmdProfile(int argc, char **argv) {
  PGOVariant V;
  if (!parseVariant(argv[3], V)) {
    std::fprintf(stderr, "unknown variant '%s'\n", argv[3]);
    return 2;
  }
  ExperimentConfig Config =
      makeConfig(argv[2], argc > 4 ? std::atof(argv[4]) : 1.0);
  PGODriver Driver(Config);
  VariantOutcome Out = Driver.run(V);
  if (!Out.Profile.Has) {
    std::fprintf(stderr, "variant '%s' produces no profile\n",
                 variantName(V));
    return 1;
  }
  std::string Text = Out.Profile.IsCS
                         ? serializeContextProfile(Out.Profile.CS)
                         : serializeFlatProfile(Out.Profile.Flat);
  std::fputs(Text.c_str(), stdout);
  return 0;
}

int cmdCompare(int argc, char **argv) {
  ExperimentConfig Config =
      makeConfig(argv[2], argc > 3 ? std::atof(argv[3]) : 1.0);
  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  TextTable Table({"variant", "profiling overhead", "vs plain", "size"});
  for (PGOVariant V : {PGOVariant::Instr, PGOVariant::AutoFDO,
                       PGOVariant::CSSPGOProbeOnly, PGOVariant::CSSPGOFull,
                       PGOVariant::Trace}) {
    VariantOutcome Out = Driver.run(V);
    Table.addRow({variantName(V),
                  formatSignedPercent(Out.ProfilingOverheadPct),
                  formatSignedPercent(PGODriver::improvementPct(Out, Base)),
                  formatBytes(Out.CodeSizeBytes)});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}

int cmdIR(int argc, char **argv) {
  auto M = generateProgram(
      workloadPreset(argv[2], argc > 3 ? std::atof(argv[3]) : 1.0));
  std::fputs(printModule(*M).c_str(), stdout);
  return 0;
}

int cmdFuzz(int argc, char **argv) {
  FuzzOptions Opts;
  if (argc > 2) {
    unsigned long long N = 0;
    if (!cli::parseUnsigned(argv[2], N) || N == 0) {
      std::fprintf(stderr, "fuzz: bad iteration count '%s'\n", argv[2]);
      return 2;
    }
    Opts.Iterations = static_cast<unsigned>(N);
  }
  if (argc > 3) {
    unsigned long long S = 0;
    // Base 0: accepts the 0x-prefixed seeds the failure report prints.
    if (!cli::parseUnsigned(argv[3], S, 0)) {
      std::fprintf(stderr, "fuzz: bad seed '%s'\n", argv[3]);
      return 2;
    }
    Opts.BaseSeed = S;
  }
  return runProfileFuzz(Opts);
}

int cmdConvert(int, char **argv) {
  std::string In;
  if (!readFileAll(argv[2], In)) {
    std::fprintf(stderr, "convert: cannot read '%s'\n", argv[2]);
    return 1;
  }
  std::string Out;
  if (isStoreBytes(In)) {
    // Binary -> text.
    Expected<ProfileStore> S = ProfileStore::open(std::move(In));
    if (!S) {
      std::fprintf(stderr, "convert: %s: %s\n", argv[2],
                   S.status().message().c_str());
      return 1;
    }
    if (S->isCS()) {
      Expected<ContextProfile> CS = S->loadContext();
      if (!CS) {
        std::fprintf(stderr, "convert: %s: %s\n", argv[2],
                     CS.status().message().c_str());
        return 1;
      }
      Out = serializeContextProfile(*CS);
    } else {
      Expected<FlatProfile> Flat = S->loadFlat();
      if (!Flat) {
        std::fprintf(stderr, "convert: %s: %s\n", argv[2],
                     Flat.status().message().c_str());
        return 1;
      }
      Out = serializeFlatProfile(*Flat);
    }
  } else {
    // Text -> binary.
    StoreWriteOptions WO;
    WO.CompactNames = G.CompactNames;
    if (looksLikeContextText(In)) {
      ContextProfile CS;
      if (!parseContextProfile(In, CS)) {
        std::fprintf(stderr, "convert: '%s' is not a valid context profile\n",
                     argv[2]);
        return 1;
      }
      Out = writeStore(CS, {}, WO);
    } else {
      FlatProfile Flat;
      if (!parseFlatProfile(In, Flat)) {
        std::fprintf(stderr, "convert: '%s' is not a valid profile\n",
                     argv[2]);
        return 1;
      }
      Out = writeStore(Flat, {}, WO);
    }
  }
  if (!writeFileAll(argv[3], Out)) {
    std::fprintf(stderr, "convert: cannot write '%s'\n", argv[3]);
    return 1;
  }
  return 0;
}

int storeInspect(const char *Path, bool Layout) {
  std::string Data;
  if (!readFileAll(Path, Data)) {
    std::fprintf(stderr, "store: cannot read '%s'\n", Path);
    return 1;
  }
  Expected<ProfileStore> S = ProfileStore::open(std::move(Data));
  if (!S) {
    std::fprintf(stderr, "store: %s: %s\n", Path,
                 S.status().message().c_str());
    return 1;
  }
  std::printf("shape:        %s\n", S->isCS() ? "context-sensitive" : "flat");
  std::printf("kind:         %s%s\n",
              S->kind() == ProfileKind::ProbeBased ? "probe" : "line",
              S->isInstr() ? " (exact counts)" : "");
  std::printf("names:        %s\n", S->compactNames() ? "compact (guid)"
                                                      : "full");
  std::printf("size:         %s\n", formatBytes(S->sizeBytes()).c_str());
  std::printf("functions:    %zu\n", S->numFunctions());
  std::printf("total samples: %llu\n",
              static_cast<unsigned long long>(S->totalSamples()));
  std::printf("sections:\n");
  for (const auto &[Name, Size] : S->sectionSizes())
    std::printf("  %-12s %s\n", Name.c_str(), formatBytes(Size).c_str());
  std::printf("epochs:       %zu\n", S->epochs().size());
  for (size_t I = 0; I != S->epochs().size(); ++I) {
    const EpochInfo &E = S->epochs()[I];
    std::printf("  #%zu time %llu, %llu samples, decay %u/1000\n", I,
                static_cast<unsigned long long>(E.Timestamp),
                static_cast<unsigned long long>(E.TotalSamples),
                E.DecayPermille);
  }
  if (Layout) {
    // Physical file layout: where every section sits, then the payload
    // tiles — the directly-addressable slices the zero-copy readers
    // cursor over without touching the rest of the container.
    std::printf("layout:\n");
    std::printf("  %-12s %10s %10s\n", "section", "offset", "size");
    for (const auto &[Name, Off, Size] : S->sectionLayout())
      std::printf("  %-12s %10llu %10llu\n", Name.c_str(),
                  static_cast<unsigned long long>(Off),
                  static_cast<unsigned long long>(Size));
    std::printf("tiles:\n");
    for (size_t I = 0; I != S->numFunctions(); ++I) {
      auto [Off, Size] = S->functionTile(I);
      std::printf("  %10llu %10llu  %s\n",
                  static_cast<unsigned long long>(Off),
                  static_cast<unsigned long long>(Size),
                  std::string(S->functionName(I)).c_str());
    }
  }
  return 0;
}

int storeIngest(int argc, char **argv) {
  // store ingest <file> <workload> <variant> [scale]
  if (argc < 6)
    return usage();
  PGOVariant V;
  if (!parseVariant(argv[5], V) || V == PGOVariant::None) {
    std::fprintf(stderr, "store: variant '%s' produces no profile\n",
                 argv[5]);
    return 2;
  }
  std::string Bytes; // Missing file = create a fresh store.
  readFileAll(argv[3], Bytes);

  ExperimentConfig Config =
      makeConfig(argv[4], argc > 6 ? std::atof(argv[6]) : 1.0);
  PGODriver Driver(Config);
  VariantOutcome Out = Driver.run(V);
  if (!Out.Profile.Has) {
    std::fprintf(stderr, "store: no profile generated\n");
    return 1;
  }

  ProfilePipeline Pipeline(PipelineOptions()
                               .decay(G.DecayPermille)
                               .compactNames(G.CompactNames));
  if (Status St = Pipeline.ingest(Bytes, Out.Profile, G.EpochTimestamp);
      !St) {
    std::fprintf(stderr, "store: %s\n", St.message().c_str());
    return 1;
  }
  if (!writeFileAll(argv[3], Bytes)) {
    std::fprintf(stderr, "store: cannot write '%s'\n", argv[3]);
    return 1;
  }
  const PipelineStats &PS = Pipeline.stats();
  size_t EpochsNow = 0;
  if (Expected<ProfileStore> Now = ProfileStore::open(std::string(Bytes)))
    EpochsNow = Now->epochs().size();
  std::printf("ingested %s/%s epoch into %s (decay %u/1000)\n", argv[4],
              variantName(V), argv[3], G.DecayPermille);
  std::printf("merge:   %llu contexts added, %llu merged, %llu saturated\n",
              static_cast<unsigned long long>(PS.Ingest.ContextsAdded),
              static_cast<unsigned long long>(PS.Ingest.ContextsMerged),
              static_cast<unsigned long long>(PS.Ingest.SaturatedCounts));
  std::printf("verify:  %s\n", PS.Verify.str().c_str());
  std::printf("epochs:  %zu\n", EpochsNow);
  return 0;
}

int cmdStore(int argc, char **argv) {
  bool Layout = cli::takeBoolFlag(argc, argv, "--layout");
  if (const char *Flag = cli::firstFlag(argc, argv)) {
    std::fprintf(stderr, "unknown option '%s'\n", Flag);
    return usage();
  }
  if (std::strcmp(argv[2], "inspect") == 0 && argc > 3)
    return storeInspect(argv[3], Layout);
  if (Layout) {
    std::fprintf(stderr, "--layout only applies to store inspect\n");
    return usage();
  }
  if (std::strcmp(argv[2], "ingest") == 0)
    return storeIngest(argc, argv);
  return usage();
}

/// serve/fleet: drive the continuous-profiling service. One "pass"
/// streams --epochs epochs end to end and prints the dashboard; serve
/// repeats passes forever unless --exit-after-drain, fleet is a single
/// pass by construction.
int runService(int argc, char **argv, bool ExitAfterDrain) {
  unsigned long long Hosts = 32, NumServices = 3, Epochs = 8, Seed = 1,
                     ScalePermille = 50, QueueBound = 16, DriftEvery = 0;
  std::string Err;
  if (!cli::takeUnsignedFlag(argc, argv, "--hosts", Hosts, Err) ||
      !cli::takeUnsignedFlag(argc, argv, "--services", NumServices, Err) ||
      !cli::takeUnsignedFlag(argc, argv, "--epochs", Epochs, Err) ||
      !cli::takeUnsignedFlag(argc, argv, "--seed", Seed, Err) ||
      !cli::takeUnsignedFlag(argc, argv, "--scale", ScalePermille, Err) ||
      !cli::takeUnsignedFlag(argc, argv, "--queue-bound", QueueBound, Err) ||
      !cli::takeUnsignedFlag(argc, argv, "--drift-every", DriftEvery, Err)) {
    std::fprintf(stderr, "serve: %s\n", Err.c_str());
    return 2;
  }
  ExitAfterDrain |= cli::takeBoolFlag(argc, argv, "--exit-after-drain");
  if (const char *Flag = cli::firstFlag(argc, argv)) {
    std::fprintf(stderr, "serve: unknown option '%s'\n", Flag);
    return 2;
  }
  if (Epochs == 0 || Hosts == 0 || NumServices == 0 || ScalePermille == 0) {
    std::fprintf(stderr, "serve: --hosts, --services, --epochs and --scale "
                         "must be nonzero\n");
    return 2;
  }

  ServiceConfig SC;
  SC.Fleet.Hosts = static_cast<unsigned>(Hosts);
  SC.Fleet.Services = static_cast<unsigned>(NumServices);
  SC.Fleet.Epochs = static_cast<unsigned>(Epochs);
  SC.Fleet.Seed = Seed;
  SC.Fleet.RequestScale = static_cast<double>(ScalePermille) / 1000.0;
  SC.Shards = G.Parallelism;
  SC.QueueBound = static_cast<size_t>(QueueBound);
  SC.DecayPermille = G.DecayPermille;
  SC.CompactNames = G.CompactNames;
  SC.DriftEveryEpochs = static_cast<unsigned>(DriftEvery);

  ProfileService Svc(SC);
  for (;;) {
    if (Status St = Svc.run(static_cast<unsigned>(Epochs)); !St) {
      std::fprintf(stderr, "serve: %s\n", St.message().c_str());
      return 1;
    }
    FleetSnapshot Snap = Svc.snapshot();
    std::fputs((G.JSON ? Snap.toJSON() : Snap.toText()).c_str(), stdout);
    std::fflush(stdout);
    if (ExitAfterDrain)
      return 0;
  }
}

int cmdServe(int argc, char **argv) { return runService(argc, argv, false); }
int cmdFleet(int argc, char **argv) { return runService(argc, argv, true); }

/// `train [scale]`: the longitudinal release-train simulator
/// (train/ReleaseTrain.h). The exit status pins the train's invariants —
/// every release Full-verified and semantics-preserving — so the CI
/// smoke can gate on it.
int cmdTrain(int argc, char **argv) {
  bool PostLink = cli::takeBoolFlag(argc, argv, "--postlink");
  std::string Workload = "AdRanker", Policy = "all", Variant = "csspgo", Err;
  unsigned long long Releases = 4, Seed = 1;
  if (!cli::takeValueFlag(argc, argv, "--archetype", Workload, Err) ||
      !cli::takeValueFlag(argc, argv, "--policy", Policy, Err) ||
      !cli::takeValueFlag(argc, argv, "--variant", Variant, Err) ||
      !cli::takeUnsignedFlag(argc, argv, "--releases", Releases, Err) ||
      !cli::takeUnsignedFlag(argc, argv, "--seed", Seed, Err)) {
    std::fprintf(stderr, "train: %s\n", Err.c_str());
    return 2;
  }
  if (const char *Flag = cli::firstFlag(argc, argv)) {
    std::fprintf(stderr, "train: unknown option '%s'\n", Flag);
    return 2;
  }
  train::TrainConfig TC;
  if (!parseVariant(Variant, TC.Variant) ||
      TC.Variant == PGOVariant::None) {
    std::fprintf(stderr, "train: variant '%s' produces no profile\n",
                 Variant.c_str());
    return 2;
  }
  if (Releases == 0) {
    std::fprintf(stderr, "train: --releases must be nonzero\n");
    return 2;
  }
  if (Policy != "all") {
    train::StalePolicy P;
    if (!train::parsePolicy(Policy, P)) {
      std::fprintf(stderr,
                   "train: unknown --policy '%s' (drop|match|ingest|all)\n",
                   Policy.c_str());
      return 2;
    }
    TC.Policies = {P};
  }
  TC.Exp = makeConfig(Workload, argc > 2 ? std::atof(argv[2]) : 1.0);
  TC.Releases = static_cast<unsigned>(Releases);
  TC.DriftSeed = Seed;
  TC.PostLink = PostLink;
  TC.Jobs = std::max(1u, G.Parallelism);
  // The global --decay default (1000, plain merge) is an ingest-command
  // default; the train's store folds default to the library's 500.
  if (G.DecayPermille != 1000)
    TC.DecayPermille = G.DecayPermille;

  train::TrainResult R = runTrain(TC);
  if (G.JSON) {
    std::fputs(R.toJSON().c_str(), stdout);
    return R.allClean() ? 0 : 1;
  }
  std::printf("workload:  %s (%u requests/release)\n", Workload.c_str(),
              TC.Exp.Workload.Requests);
  std::printf("variant:   %s, %u releases, drift seed %llu\n",
              variantName(TC.Variant), TC.Releases,
              static_cast<unsigned long long>(TC.DriftSeed));
  TextTable Table({"rel", "drift", "edits", "oracle", "policy", "vs plain",
                   "vs oracle", "overlap", "stale d/m", "store"});
  for (const train::ReleaseRow &Row : R.Rows) {
    bool First = true;
    for (const train::PolicyCell &C : Row.Cells) {
      char Overlap[32];
      std::snprintf(Overlap, sizeof(Overlap), "%.3f", C.Overlap);
      Table.addRow({First ? std::to_string(Row.Release) : "",
                    First ? Row.DriftName : "",
                    First ? std::to_string(Row.DriftEdits) : "",
                    First ? formatSignedPercent(Row.OracleVsPlainPct) : "",
                    train::policyName(C.Policy),
                    formatSignedPercent(C.VsPlainPct),
                    formatSignedPercent(C.VsOraclePct), Overlap,
                    std::to_string(C.StaleDropped) + "/" +
                        std::to_string(C.StaleMatched),
                    First ? std::to_string(Row.StoreEpochs) + "@" +
                                std::to_string(Row.StoreTimestamp)
                          : ""});
      First = false;
    }
    if (Row.HasPostLink)
      Table.addRow({"", "", "", "", "bolt",
                    Row.RewriteKept ? "kept" : "plain",
                    formatSignedPercent(Row.PostLinkVsOraclePct), "-", "-",
                    ""});
  }
  std::printf("%s", Table.render().c_str());
  for (const train::StalePolicy P : TC.Policies)
    std::printf("aggregate %-6s %s\n", train::policyName(P),
                formatSignedPercent(R.aggregate(P)).c_str());
  std::printf("invariants: %s\n",
              R.allClean() ? "every release Full-verified, semantics "
                             "preserved"
                           : "VIOLATED — see trajectory");
  return R.allClean() ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// Dispatch: the shared table (ExpCLI) names the surface; this maps each
// entry to its handler.
//===----------------------------------------------------------------------===//

struct HandlerEntry {
  const char *Name;
  int (*Handler)(int argc, char **argv);
};

const HandlerEntry Handlers[] = {
    {"run", cmdRun},       {"trace", cmdTrace},     {"bolt", cmdBolt},
    {"profile", cmdProfile}, {"compare", cmdCompare}, {"ir", cmdIR},
    {"convert", cmdConvert}, {"store", cmdStore},   {"fuzz", cmdFuzz},
    {"serve", cmdServe},   {"fleet", cmdFleet},     {"train", cmdTrain},
    {"list", cmdList},
};

int usage() {
  std::fputs(cli::usageText().c_str(), stderr);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string Err;
  if (!cli::parseGlobalFlags(argc, argv, G, Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return usage();
  }
  if (argc < 2)
    return usage();

  const cli::SubcommandInfo *Info = cli::findSubcommand(argv[1]);
  if (!Info) {
    std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
    return usage();
  }
  if (cli::takeBoolFlag(argc, argv, "--help")) {
    std::fputs(cli::helpText(*Info).c_str(), stdout);
    return 0;
  }
  if (!Info->LocalFlags) {
    if (const char *Flag = cli::firstFlag(argc, argv)) {
      std::fprintf(stderr, "unknown option '%s'\n", Flag);
      return usage();
    }
  }
  if (argc - 2 < Info->MinOperands)
    return usage();
  for (const HandlerEntry &H : Handlers)
    if (std::strcmp(argv[1], H.Name) == 0)
      return H.Handler(argc, argv);
  return usage(); // Table entry without a handler: unreachable.
}

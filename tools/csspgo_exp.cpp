//===- tools/csspgo_exp.cpp - experiment CLI ----------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Command-line driver over the experiment pipeline, the library's
// "binary distribution" face. The subcommand list lives in one table
// (`Subcommands`) that drives both the dispatcher and the usage text, so
// the two can never drift apart.
//
//===----------------------------------------------------------------------===//

#include "FuzzHarness.h"
#include "ir/Printer.h"
#include "pgo/PGODriver.h"
#include "profile/ProfileIO.h"
#include "store/ProfileStore.h"
#include "support/SourceText.h"
#include "workload/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace csspgo;

namespace {

int usage();

//===----------------------------------------------------------------------===//
// Global option flags, stripped from argv before dispatch.
//===----------------------------------------------------------------------===//

/// Profile-generation parallelism from -j/--parallelism (default serial).
unsigned GenParallelism = 1;
/// Profile transport for the optimized builds (--format).
ProfileTransport Transport = ProfileTransport::InMemory;
/// Compact (GUID) name table for written stores (--compact).
bool CompactNames = false;
/// Ingest decay in permille (--decay, 1000 = plain merge, 0 = replace).
unsigned DecayPermille = 1000;
/// Ingest epoch timestamp (--timestamp).
uint64_t EpochTimestamp = 0;

bool parseUnsigned(const char *S, unsigned long long &Out, int Base = 10) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, Base);
  return End != S && !*End;
}

bool parseTransport(const char *S, ProfileTransport &Out) {
  if (std::strcmp(S, "memory") == 0)
    Out = ProfileTransport::InMemory;
  else if (std::strcmp(S, "text") == 0)
    Out = ProfileTransport::Text;
  else if (std::strcmp(S, "binary") == 0)
    Out = ProfileTransport::BinaryEager;
  else if (std::strcmp(S, "binary-lazy") == 0)
    Out = ProfileTransport::BinaryLazy;
  else
    return false;
  return true;
}

/// Strips option flags from (argc, argv), leaving only positional
/// operands. Returns false on a malformed flag.
bool parseOptionFlags(int &argc, char **argv) {
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    auto takesValue = [&](const char *Flag) {
      return std::strcmp(argv[I], Flag) == 0 && I + 1 < argc;
    };
    unsigned long long N = 0;
    if (takesValue("-j") || takesValue("--parallelism")) {
      if (!parseUnsigned(argv[++I], N))
        return false;
      GenParallelism = static_cast<unsigned>(N);
    } else if (takesValue("--format")) {
      if (!parseTransport(argv[++I], Transport))
        return false;
    } else if (takesValue("--decay")) {
      if (!parseUnsigned(argv[++I], N) || N > 1000)
        return false;
      DecayPermille = static_cast<unsigned>(N);
    } else if (takesValue("--timestamp")) {
      if (!parseUnsigned(argv[++I], N))
        return false;
      EpochTimestamp = N;
    } else if (std::strcmp(argv[I], "--compact") == 0) {
      CompactNames = true;
    } else if (argv[I][0] == '-' && argv[I][1] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[I]);
      return false;
    } else {
      argv[Out++] = argv[I];
    }
  }
  argc = Out;
  return true;
}

bool parseVariant(const std::string &S, PGOVariant &V) {
  if (S == "none")
    V = PGOVariant::None;
  else if (S == "instr")
    V = PGOVariant::Instr;
  else if (S == "autofdo")
    V = PGOVariant::AutoFDO;
  else if (S == "probeonly")
    V = PGOVariant::CSSPGOProbeOnly;
  else if (S == "csspgo")
    V = PGOVariant::CSSPGOFull;
  else
    return false;
  return true;
}

ExperimentConfig makeConfig(const std::string &Workload, double Scale) {
  ExperimentConfig Config;
  Config.Workload = workloadPreset(Workload, Scale);
  Config.Parallelism = GenParallelism;
  Config.Transport = Transport;
  return Config;
}

bool readFileAll(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool writeFileAll(const std::string &Path, const std::string &Data) {
  std::ofstream OutS(Path, std::ios::binary | std::ios::trunc);
  OutS.write(Data.data(), static_cast<std::streamsize>(Data.size()));
  return static_cast<bool>(OutS);
}

bool isStoreBytes(const std::string &Data) {
  return Data.size() >= 4 && std::memcmp(Data.data(), StoreMagic, 4) == 0;
}

/// Context-profile text carries "[ctx]:T:H" records; flat text carries
/// "name:T:H" at column 0. Directive lines ("!kind: ...") and indented
/// body lines are common to both.
bool looksLikeContextText(const std::string &Text) {
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    if (End > Pos && Text[Pos] != '!' && Text[Pos] != ' ')
      return Text[Pos] == '[';
    Pos = End + 1;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Subcommand handlers. Each receives argv with option flags stripped:
// argv[1] is the subcommand name, operands start at argv[2].
//===----------------------------------------------------------------------===//

int cmdList(int, char **) {
  std::printf("workloads:");
  for (const std::string &W : serverWorkloadNames())
    std::printf(" %s", W.c_str());
  std::printf(" ClangProxy\nvariants: none instr autofdo probeonly csspgo\n");
  return 0;
}

int cmdRun(int argc, char **argv) {
  PGOVariant V;
  if (!parseVariant(argv[3], V)) {
    std::fprintf(stderr, "unknown variant '%s'\n", argv[3]);
    return 2;
  }
  ExperimentConfig Config =
      makeConfig(argv[2], argc > 4 ? std::atof(argv[4]) : 1.0);
  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  VariantOutcome Out = Driver.run(V);
  std::printf("workload:            %s (%u requests)\n", argv[2],
              Config.Workload.Requests);
  std::printf("variant:             %s\n", variantName(V));
  std::printf("profiling overhead:  %s\n",
              formatSignedPercent(Out.ProfilingOverheadPct).c_str());
  std::printf("eval cycles:         %.0f (plain %.0f)\n", Out.EvalCyclesMean,
              Base.EvalCyclesMean);
  std::printf("speedup vs plain:    %s\n",
              formatSignedPercent(PGODriver::improvementPct(Out, Base))
                  .c_str());
  std::printf("code size:           %s\n",
              formatBytes(Out.CodeSizeBytes).c_str());
  if (V != PGOVariant::None)
    std::printf("verifier:            %s\n",
                Out.ProfGenVerify.str().c_str());
  std::printf("loader: %u annotated, %u top-down inlines, %u ICP, "
              "%u stale drops\n",
              Out.Build->Loader.FunctionsAnnotated,
              Out.Build->Loader.InlinedCallsites,
              Out.Build->Loader.PromotedIndirectCalls,
              Out.Build->Loader.StaleDropped);
  if (Out.Build->Loader.StaleMatched)
    std::printf("stale matching:      %u recovered, %llu anchors, "
                "%llu counts\n",
                Out.Build->Loader.StaleMatched,
                static_cast<unsigned long long>(
                    Out.Build->Loader.StaleAnchorsMatched),
                static_cast<unsigned long long>(
                    Out.Build->Loader.StaleCountsRecovered));
  if (Transport != ProfileTransport::InMemory) {
    std::printf("profile transport:   %s", transportName(Transport));
    if (Out.Build->Loader.StoreFunctionsMaterialized ||
        Out.Build->Loader.StoreFunctionsSkipped)
      std::printf(" (%u store functions materialized, %u skipped)",
                  Out.Build->Loader.StoreFunctionsMaterialized,
                  Out.Build->Loader.StoreFunctionsSkipped);
    std::printf("\n");
  }
  std::printf("exit value:          %lld (plain %lld%s)\n",
              static_cast<long long>(Out.ExitValue),
              static_cast<long long>(Base.ExitValue),
              Out.ExitValue == Base.ExitValue ? ", identical"
                                              : " — MISMATCH!");
  return Out.ExitValue == Base.ExitValue ? 0 : 1;
}

int cmdProfile(int argc, char **argv) {
  PGOVariant V;
  if (!parseVariant(argv[3], V)) {
    std::fprintf(stderr, "unknown variant '%s'\n", argv[3]);
    return 2;
  }
  ExperimentConfig Config =
      makeConfig(argv[2], argc > 4 ? std::atof(argv[4]) : 1.0);
  PGODriver Driver(Config);
  VariantOutcome Out = Driver.run(V);
  if (!Out.Profile.Has) {
    std::fprintf(stderr, "variant '%s' produces no profile\n",
                 variantName(V));
    return 1;
  }
  std::string Text = Out.Profile.IsCS
                         ? serializeContextProfile(Out.Profile.CS)
                         : serializeFlatProfile(Out.Profile.Flat);
  std::fputs(Text.c_str(), stdout);
  return 0;
}

int cmdCompare(int argc, char **argv) {
  ExperimentConfig Config =
      makeConfig(argv[2], argc > 3 ? std::atof(argv[3]) : 1.0);
  PGODriver Driver(Config);
  const VariantOutcome &Base = Driver.baseline();
  TextTable Table({"variant", "profiling overhead", "vs plain", "size"});
  for (PGOVariant V : {PGOVariant::Instr, PGOVariant::AutoFDO,
                       PGOVariant::CSSPGOProbeOnly, PGOVariant::CSSPGOFull}) {
    VariantOutcome Out = Driver.run(V);
    Table.addRow({variantName(V),
                  formatSignedPercent(Out.ProfilingOverheadPct),
                  formatSignedPercent(PGODriver::improvementPct(Out, Base)),
                  formatBytes(Out.CodeSizeBytes)});
  }
  std::printf("%s", Table.render().c_str());
  return 0;
}

int cmdIR(int argc, char **argv) {
  auto M = generateProgram(
      workloadPreset(argv[2], argc > 3 ? std::atof(argv[3]) : 1.0));
  std::fputs(printModule(*M).c_str(), stdout);
  return 0;
}

int cmdFuzz(int argc, char **argv) {
  FuzzOptions Opts;
  if (argc > 2) {
    unsigned long long N = 0;
    if (!parseUnsigned(argv[2], N) || N == 0) {
      std::fprintf(stderr, "fuzz: bad iteration count '%s'\n", argv[2]);
      return 2;
    }
    Opts.Iterations = static_cast<unsigned>(N);
  }
  if (argc > 3) {
    unsigned long long S = 0;
    // Base 0: accepts the 0x-prefixed seeds the failure report prints.
    if (!parseUnsigned(argv[3], S, 0)) {
      std::fprintf(stderr, "fuzz: bad seed '%s'\n", argv[3]);
      return 2;
    }
    Opts.BaseSeed = S;
  }
  return runProfileFuzz(Opts);
}

int cmdConvert(int, char **argv) {
  std::string In;
  if (!readFileAll(argv[2], In)) {
    std::fprintf(stderr, "convert: cannot read '%s'\n", argv[2]);
    return 1;
  }
  std::string Out;
  if (isStoreBytes(In)) {
    // Binary -> text.
    ProfileStore S;
    std::string Err;
    if (!ProfileStore::open(std::move(In), S, Err)) {
      std::fprintf(stderr, "convert: %s: %s\n", argv[2], Err.c_str());
      return 1;
    }
    if (S.isCS()) {
      ContextProfile CS;
      if (!S.loadContext(CS, Err)) {
        std::fprintf(stderr, "convert: %s: %s\n", argv[2], Err.c_str());
        return 1;
      }
      Out = serializeContextProfile(CS);
    } else {
      FlatProfile Flat;
      if (!S.loadFlat(Flat, Err)) {
        std::fprintf(stderr, "convert: %s: %s\n", argv[2], Err.c_str());
        return 1;
      }
      Out = serializeFlatProfile(Flat);
    }
  } else {
    // Text -> binary.
    StoreWriteOptions WO;
    WO.CompactNames = CompactNames;
    if (looksLikeContextText(In)) {
      ContextProfile CS;
      if (!parseContextProfile(In, CS)) {
        std::fprintf(stderr, "convert: '%s' is not a valid context profile\n",
                     argv[2]);
        return 1;
      }
      Out = writeStore(CS, {}, WO);
    } else {
      FlatProfile Flat;
      if (!parseFlatProfile(In, Flat)) {
        std::fprintf(stderr, "convert: '%s' is not a valid profile\n",
                     argv[2]);
        return 1;
      }
      Out = writeStore(Flat, {}, WO);
    }
  }
  if (!writeFileAll(argv[3], Out)) {
    std::fprintf(stderr, "convert: cannot write '%s'\n", argv[3]);
    return 1;
  }
  return 0;
}

int storeInspect(const char *Path) {
  std::string Data;
  if (!readFileAll(Path, Data)) {
    std::fprintf(stderr, "store: cannot read '%s'\n", Path);
    return 1;
  }
  ProfileStore S;
  std::string Err;
  if (!ProfileStore::open(std::move(Data), S, Err)) {
    std::fprintf(stderr, "store: %s: %s\n", Path, Err.c_str());
    return 1;
  }
  std::printf("shape:        %s\n", S.isCS() ? "context-sensitive" : "flat");
  std::printf("kind:         %s%s\n",
              S.kind() == ProfileKind::ProbeBased ? "probe" : "line",
              S.isInstr() ? " (exact counts)" : "");
  std::printf("names:        %s\n", S.compactNames() ? "compact (guid)"
                                                     : "full");
  std::printf("size:         %s\n", formatBytes(S.sizeBytes()).c_str());
  std::printf("functions:    %zu\n", S.numFunctions());
  std::printf("total samples: %llu\n",
              static_cast<unsigned long long>(S.totalSamples()));
  std::printf("sections:\n");
  for (const auto &[Name, Size] : S.sectionSizes())
    std::printf("  %-12s %s\n", Name.c_str(), formatBytes(Size).c_str());
  std::printf("epochs:       %zu\n", S.epochs().size());
  for (size_t I = 0; I != S.epochs().size(); ++I) {
    const EpochInfo &E = S.epochs()[I];
    std::printf("  #%zu time %llu, %llu samples, decay %u/1000\n", I,
                static_cast<unsigned long long>(E.Timestamp),
                static_cast<unsigned long long>(E.TotalSamples),
                E.DecayPermille);
  }
  return 0;
}

int storeIngest(int argc, char **argv) {
  // store ingest <file> <workload> <variant> [scale]
  if (argc < 6)
    return usage();
  PGOVariant V;
  if (!parseVariant(argv[5], V) || V == PGOVariant::None) {
    std::fprintf(stderr, "store: variant '%s' produces no profile\n",
                 argv[5]);
    return 2;
  }
  std::string Bytes; // Missing file = create a fresh store.
  readFileAll(argv[3], Bytes);

  ExperimentConfig Config =
      makeConfig(argv[4], argc > 6 ? std::atof(argv[6]) : 1.0);
  PGODriver Driver(Config);
  VariantOutcome Out = Driver.run(V);
  if (!Out.Profile.Has) {
    std::fprintf(stderr, "store: no profile generated\n");
    return 1;
  }

  IngestOptions IO;
  IO.DecayPermille = DecayPermille;
  IO.Timestamp = EpochTimestamp;
  IO.ExactCounts = V == PGOVariant::Instr;
  IO.Write.CompactNames = CompactNames;
  IngestResult R = Out.Profile.IsCS
                       ? ingestEpoch(Bytes, Out.Profile.CS, IO)
                       : ingestEpoch(Bytes, Out.Profile.Flat, IO);
  if (!R.Ok) {
    std::fprintf(stderr, "store: ingest failed: %s\n", R.Error.c_str());
    return 1;
  }
  if (!writeFileAll(argv[3], Bytes)) {
    std::fprintf(stderr, "store: cannot write '%s'\n", argv[3]);
    return 1;
  }
  std::printf("ingested %s/%s epoch into %s (decay %u/1000)\n", argv[4],
              variantName(V), argv[3], DecayPermille);
  std::printf("merge:   %llu contexts added, %llu merged, %llu saturated\n",
              static_cast<unsigned long long>(R.Merge.ContextsAdded),
              static_cast<unsigned long long>(R.Merge.ContextsMerged),
              static_cast<unsigned long long>(R.Merge.SaturatedCounts));
  std::printf("verify:  %s\n", R.Verify.str().c_str());
  std::printf("epochs:  %zu\n", R.EpochsNow);
  return 0;
}

int cmdStore(int argc, char **argv) {
  if (std::strcmp(argv[2], "inspect") == 0 && argc > 3)
    return storeInspect(argv[3]);
  if (std::strcmp(argv[2], "ingest") == 0)
    return storeIngest(argc, argv);
  return usage();
}

//===----------------------------------------------------------------------===//
// The subcommand table: single source of truth for dispatch AND usage.
//===----------------------------------------------------------------------===//

struct Subcommand {
  const char *Name;
  const char *Operands; ///< Usage fragment after the name.
  const char *Help;
  int MinOperands; ///< Required positional operands after the name.
  int (*Handler)(int argc, char **argv);
};

const Subcommand Subcommands[] = {
    {"run", "<workload> <variant> [scale]", "end-to-end PGO run", 2, cmdRun},
    {"profile", "<workload> <variant> [scale]", "print the profile text", 2,
     cmdProfile},
    {"compare", "<workload> [scale]", "all variants side by side", 1,
     cmdCompare},
    {"ir", "<workload> [scale]", "dump the generated IR", 1, cmdIR},
    {"convert", "<in> <out> [--compact]",
     "convert a profile between text and binary store", 2, cmdConvert},
    {"store", "inspect <file> | ingest <file> <workload> <variant> [scale]",
     "inspect a store / fold in a fresh epoch", 2, cmdStore},
    {"fuzz", "[iterations] [seed]", "differential fuzzing", 0, cmdFuzz},
    {"list", "", "workloads and variants", 0, cmdList},
};

int usage() {
  std::fprintf(stderr, "usage:\n");
  for (const Subcommand &S : Subcommands)
    std::fprintf(stderr, "  csspgo_exp %-8s %s\n      %s\n", S.Name,
                 S.Operands, S.Help);
  std::fprintf(stderr,
               "\nvariants: none instr autofdo probeonly csspgo\n"
               "options:  -j N | --parallelism N   shard profile generation "
               "over N threads\n"
               "          --format memory|text|binary|binary-lazy   profile "
               "transport for builds\n"
               "          --decay P     ingest decay permille (default "
               "1000 = plain merge)\n"
               "          --timestamp T ingest epoch timestamp\n"
               "          --compact     guid name table for written "
               "stores\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  if (!parseOptionFlags(argc, argv))
    return usage();
  if (argc < 2)
    return usage();
  for (const Subcommand &S : Subcommands) {
    if (std::strcmp(argv[1], S.Name) != 0)
      continue;
    if (argc - 2 < S.MinOperands)
      return usage();
    return S.Handler(argc, argv);
  }
  std::fprintf(stderr, "unknown subcommand '%s'\n", argv[1]);
  return usage();
}

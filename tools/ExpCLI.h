//===- tools/ExpCLI.h - csspgo_exp CLI surface ------------------*- C++ -*-===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The csspgo_exp command-line surface as a library: the subcommand
/// table, the shared option-flag parser and the usage/help text
/// generators. Keeping it out of main() serves two purposes: every
/// subcommand parses the same flags the same way (they historically each
/// grew their own subset), and the help text is golden-testable
/// (tests/CLITest.cpp) so the documented surface cannot drift from the
/// dispatcher, which is driven by the same table.
///
//===----------------------------------------------------------------------===//

#ifndef CSSPGO_TOOLS_EXPCLI_H
#define CSSPGO_TOOLS_EXPCLI_H

#include "pgo/BuildPipeline.h"

#include <cstddef>
#include <string>

namespace csspgo {
namespace cli {

/// Options shared by every subcommand, stripped from argv before
/// dispatch. A flag a subcommand has no use for is simply unused — the
/// set parses uniformly everywhere.
struct GlobalOptions {
  /// -j/--parallelism: profile-generation shards, or ingestion shards for
  /// serve/fleet.
  unsigned Parallelism = 1;
  /// --format: profile transport for optimized builds.
  ProfileTransport Transport = ProfileTransport::InMemory;
  /// --compact: GUID name tables for written stores.
  bool CompactNames = false;
  /// --decay: ingest decay permille (1000 = plain merge).
  unsigned DecayPermille = 1000;
  /// --timestamp: ingest epoch timestamp.
  unsigned long long EpochTimestamp = 0;
  /// --json: machine-readable stats/dashboard output.
  bool JSON = false;
};

struct SubcommandInfo {
  const char *Name;
  const char *Operands; ///< Usage fragment after the name.
  const char *Help;     ///< One-liner for the usage table.
  int MinOperands;      ///< Required positionals after the name.
  /// Extra --help paragraph (subcommand-specific flags and semantics);
  /// null when the one-liner says it all.
  const char *Details;
  /// Subcommand parses its own --flags (dispatcher must not reject
  /// leftovers).
  bool LocalFlags;
};

/// The table, in display order. \p Count receives the entry count.
const SubcommandInfo *subcommands(size_t &Count);
/// Entry for \p Name, or null.
const SubcommandInfo *findSubcommand(const char *Name);

bool parseUnsigned(const char *S, unsigned long long &Out, int Base = 10);
bool parseTransport(const char *S, ProfileTransport &Out);

/// Strips the global flags from (argc, argv) into \p G, leaving
/// positionals and unrecognized --flags in place (subcommands with
/// LocalFlags consume those; the dispatcher rejects them otherwise).
/// Returns false with \p Err set on a malformed value.
bool parseGlobalFlags(int &argc, char **argv, GlobalOptions &G,
                      std::string &Err);

/// Consumes `--name <value>` from argv if present; false + Err on a bad
/// value. Absent flag leaves \p Out untouched and returns true.
bool takeUnsignedFlag(int &argc, char **argv, const char *Name,
                      unsigned long long &Out, std::string &Err);
/// Consumes `--name <value>` verbatim into \p Out; false + Err when the
/// flag is present without a value. Absent flag leaves \p Out untouched.
bool takeValueFlag(int &argc, char **argv, const char *Name,
                   std::string &Out, std::string &Err);
/// Consumes bare `--name` from argv; returns whether it was present.
bool takeBoolFlag(int &argc, char **argv, const char *Name);
/// First remaining `--flag` in argv, or null (leftover detection).
const char *firstFlag(int argc, char **argv);

/// Whole-tool usage text (the table plus the global options).
std::string usageText();
/// Per-subcommand `--help` text.
std::string helpText(const SubcommandInfo &S);
/// The global-options block shared by both of the above.
std::string globalOptionsText();

} // namespace cli
} // namespace csspgo

#endif // CSSPGO_TOOLS_EXPCLI_H

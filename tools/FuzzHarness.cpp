//===- tools/FuzzHarness.cpp - Differential profile-pipeline fuzzing ------===//

#include "FuzzHarness.h"

#include "matcher/StaleMatcher.h"
#include "pgo/BuildPipeline.h"
#include "postlink/BinaryCFG.h"
#include "profgen/ProfileGenerator.h"
#include "profile/ProfileIO.h"
#include "profile/ProfileMerge.h"
#include "profile/ProfileSummary.h"
#include "profile/Trimmer.h"
#include "sim/Executor.h"
#include "store/ProfileStore.h"
#include "support/Random.h"
#include "trace/TraceDecoder.h"
#include "verify/ProfileVerifier.h"
#include "workload/Workloads.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>

namespace csspgo {

namespace {

/// Golden-ratio stride: consecutive iteration seeds are decorrelated, and
/// iteration 0 of `fuzz 1 <seed>` replays exactly the reported seed.
constexpr uint64_t SeedStride = 0x9E3779B97F4A7C15ull;

WorkloadConfig randomWorkload(Rng &R) {
  WorkloadConfig W;
  W.Name = "fuzz";
  W.Seed = R.next();
  W.NumServices = 2 + static_cast<unsigned>(R.nextBelow(3));
  W.NumMids = 4 + static_cast<unsigned>(R.nextBelow(7));
  W.NumUtils = 3 + static_cast<unsigned>(R.nextBelow(4));
  W.NumColdHandlers = 2 + static_cast<unsigned>(R.nextBelow(3));
  W.Requests = 200 + static_cast<unsigned>(R.nextBelow(600));
  W.FeatureLoop = 2 + static_cast<unsigned>(R.nextBelow(5));
  W.UtilCallsPerMid = 1 + static_cast<unsigned>(R.nextBelow(3));
  W.MidsPerService = 3 + static_cast<unsigned>(R.nextBelow(6));
  W.TailCallProb = R.nextDouble() * 0.6;
  W.DupTailProb = R.nextDouble();
  W.UnbiasedBranchProb = R.nextDouble() * 0.5;
  W.ColdPathPerMille = static_cast<unsigned>(R.nextBelow(20));
  W.ServiceSkew = 0.8 + R.nextDouble() * 1.4;
  W.IndirectDispatchProb = R.nextDouble() * 0.8;
  W.RecordWords = 4 + static_cast<unsigned>(R.nextBelow(5));
  W.ArithDensity = 1 + static_cast<unsigned>(R.nextBelow(4));
  return W;
}

#define CHECK_EQ_FIELD(Name)                                                   \
  do {                                                                         \
    if (Ref.Name != Fast.Name) {                                               \
      std::ostringstream OS;                                                   \
      OS << "executor divergence: " #Name " ref=" << Ref.Name                  \
         << " fast=" << Fast.Name;                                             \
      Err = OS.str();                                                          \
      return false;                                                            \
    }                                                                          \
  } while (0)

bool compareRuns(const RunResult &Ref, const RunResult &Fast,
                 std::string &Err) {
  CHECK_EQ_FIELD(Completed);
  CHECK_EQ_FIELD(Error);
  CHECK_EQ_FIELD(ExitValue);
  CHECK_EQ_FIELD(Cycles);
  CHECK_EQ_FIELD(Instructions);
  CHECK_EQ_FIELD(TakenBranches);
  CHECK_EQ_FIELD(CondBranches);
  CHECK_EQ_FIELD(CondTaken);
  CHECK_EQ_FIELD(UncondJumps);
  CHECK_EQ_FIELD(Mispredicts);
  CHECK_EQ_FIELD(ICacheMisses);
  CHECK_EQ_FIELD(Calls);
  CHECK_EQ_FIELD(IndirectCalls);
  CHECK_EQ_FIELD(IndirectMispredicts);
  if (Ref.Counters != Fast.Counters) {
    Err = "executor divergence: instrumentation counters differ";
    return false;
  }
  if (Ref.Samples.size() != Fast.Samples.size()) {
    std::ostringstream OS;
    OS << "executor divergence: sample count ref=" << Ref.Samples.size()
       << " fast=" << Fast.Samples.size();
    Err = OS.str();
    return false;
  }
  for (size_t I = 0; I != Ref.Samples.size(); ++I) {
    const PerfSample &A = Ref.Samples[I];
    const PerfSample &B = Fast.Samples[I];
    bool Same = A.Stack == B.Stack && A.LBR.size() == B.LBR.size();
    for (size_t J = 0; Same && J != A.LBR.size(); ++J)
      Same = A.LBR[J].Src == B.LBR[J].Src && A.LBR[J].Dst == B.LBR[J].Dst;
    if (!Same) {
      std::ostringstream OS;
      OS << "executor divergence: sample " << I << " differs";
      Err = OS.str();
      return false;
    }
  }
  return true;
}

#undef CHECK_EQ_FIELD

/// Probe-id anchors present in the fresh IR of \p F: probe and call-site
/// instructions. Matcher-recovered counts may land only on these.
std::set<uint32_t> anchorIdsOf(const Function &F) {
  std::set<uint32_t> Ids;
  for (const auto &BB : F.Blocks)
    for (const Instruction &I : BB->Insts)
      if (I.isProbe() || I.isCall())
        Ids.insert(I.ProbeId);
  return Ids;
}

bool keysWithinAnchors(const FunctionProfile &P,
                       const std::set<uint32_t> &Ids, std::string &Err) {
  for (const auto &[K, N] : P.Body)
    if (!Ids.count(K.Index)) {
      Err = "matcher placed body samples on probe id " +
            std::to_string(K.Index) + " absent from the fresh IR of " +
            P.Name;
      return false;
    }
  for (const auto &[K, T] : P.Calls)
    if (!Ids.count(K.Index)) {
      Err = "matcher placed call counts on probe id " +
            std::to_string(K.Index) + " absent from the fresh IR of " +
            P.Name;
      return false;
    }
  return true;
}

/// Cuts \p Text at a pseudo-random line boundary strictly inside it
/// (never the full text). Returns the truncated prefix.
std::string truncateAtLine(const std::string &Text, Rng &R) {
  if (Text.size() < 2)
    return std::string();
  size_t Cut = 1 + R.nextBelow(Text.size() - 1);
  size_t NL = Text.rfind('\n', Cut - 1);
  if (NL == std::string::npos)
    return std::string();
  return Text.substr(0, NL + 1);
}

bool fuzzOne(uint64_t Seed, std::string &Err) {
  Rng R(Seed);
  WorkloadConfig WC = randomWorkload(R);
  auto Source = generateProgram(WC);

  // Probed profiling build (the CSSPGOFull profiling binary covers every
  // sampled generator: it carries probes AND line debug info).
  BuildConfig BC;
  BC.Variant = PGOVariant::CSSPGOFull;
  BuildResult Build = buildWithPGO(*Source, BC, nullptr);

  // --- 1. Fast path vs reference interpreter ---------------------------
  ExecConfig Exec;
  Exec.Sampler.Enabled = true;
  const uint64_t Periods[] = {401, 997, 1999, 4001};
  Exec.Sampler.PeriodCycles = Periods[R.nextBelow(4)];
  Exec.Sampler.Precise = R.nextBool(0.7);
  const uint32_t Depths[] = {8, 16, 32};
  Exec.Sampler.LBRDepth = Depths[R.nextBelow(3)];
  Exec.Sampler.Seed = R.next();

  std::vector<int64_t> MemFast = generateInput(WC, Seed);
  std::vector<int64_t> MemRef = MemFast;
  RunResult Fast = execute(*Build.Bin, "main", MemFast, Exec);
  ExecConfig RefExec = Exec;
  RefExec.ReferenceMode = true;
  RunResult Ref = execute(*Build.Bin, "main", MemRef, RefExec);
  if (!compareRuns(Ref, Fast, Err))
    return false;
  if (MemRef != MemFast) {
    Err = "executor divergence: final memory images differ";
    return false;
  }

  // --- 2. Serial vs sharded generation + Full verification -------------
  ProfGenOptions GenOpts;
  GenOpts.Verify = VerifyLevel::Full;
  const unsigned ShardCounts[] = {2, 3, 4, 7};
  unsigned J = ShardCounts[R.nextBelow(4)];

  GenOpts.Kind = ProfGenKind::CS;
  ProfileGenerator CSGen(*Build.Bin, &Build.ProbeDescs, GenOpts);
  ProfGenResult CSRes = CSGen.generate(Fast.Samples);
  if (!CSRes.Verify.ok()) {
    Err = "CS profile failed verification: " + CSRes.Verify.str();
    return false;
  }
  std::string CSText = serializeContextProfile(CSRes.CS);
  {
    ProfGenOptions JOpts = GenOpts;
    JOpts.Parallelism = J;
    ProfileGenerator G(*Build.Bin, &Build.ProbeDescs, JOpts);
    if (serializeContextProfile(G.generate(Fast.Samples).CS) != CSText) {
      Err = "CS generation with -j " + std::to_string(J) +
            " diverges from serial";
      return false;
    }
  }

  GenOpts.Kind = ProfGenKind::ProbeOnly;
  ProfileGenerator POGen(*Build.Bin, &Build.ProbeDescs, GenOpts);
  ProfGenResult PORes = POGen.generate(Fast.Samples);
  if (!PORes.Verify.ok()) {
    Err = "probe-only profile failed verification: " + PORes.Verify.str();
    return false;
  }
  std::string POText = serializeFlatProfile(PORes.Flat);
  {
    ProfGenOptions JOpts = GenOpts;
    JOpts.Parallelism = J;
    ProfileGenerator G(*Build.Bin, &Build.ProbeDescs, JOpts);
    if (serializeFlatProfile(G.generate(Fast.Samples).Flat) != POText) {
      Err = "probe-only generation with -j " + std::to_string(J) +
            " diverges from serial";
      return false;
    }
  }

  GenOpts.Kind = ProfGenKind::AutoFDO;
  ProfileGenerator AFGen(*Build.Bin, nullptr, GenOpts);
  ProfGenResult AFRes = AFGen.generate(Fast.Samples);
  if (!AFRes.Verify.ok()) {
    Err = "AutoFDO profile failed verification: " + AFRes.Verify.str();
    return false;
  }
  std::string AFText = serializeFlatProfile(AFRes.Flat);

  // --- 3. serialize -> parse -> serialize fixpoint ----------------------
  {
    ContextProfile Back;
    if (!parseContextProfile(CSText, Back)) {
      Err = "serialized CS profile does not re-parse";
      return false;
    }
    if (serializeContextProfile(Back) != CSText) {
      Err = "CS serialize/parse/serialize is not a fixpoint";
      return false;
    }
  }
  for (const auto &[What, Text] :
       {std::pair<const char *, const std::string &>{"probe-only", POText},
        {"autofdo", AFText}}) {
    FlatProfile Back;
    if (!parseFlatProfile(Text, Back)) {
      Err = std::string("serialized ") + What + " profile does not re-parse";
      return false;
    }
    if (serializeFlatProfile(Back) != Text) {
      Err = std::string(What) + " serialize/parse/serialize is not a fixpoint";
      return false;
    }
  }

  // --- 4. Merge algebra -------------------------------------------------
  {
    FlatProfile Acc;
    MergeStats M1 = mergeFlatProfiles(Acc, PORes.Flat);
    if (M1.ContextsMerged != 0 || serializeFlatProfile(Acc) != POText) {
      Err = "flat merge into an empty database is not an identity";
      return false;
    }
    MergeStats M2 = mergeFlatProfiles(Acc, PORes.Flat);
    if (M2.ContextsAdded != 0) {
      Err = "flat re-merge created contexts instead of summing";
      return false;
    }
    uint64_t Before = PORes.Flat.totalSamples();
    uint64_t After = Acc.totalSamples();
    if (After != saturatingAdd(Before, Before)) {
      Err = "flat re-merge did not double total samples";
      return false;
    }
    VerifierOptions VO;
    VO.Probes = &Build.ProbeDescs;
    VerifyReport VR = verifyFlatProfile(Acc, VO);
    if (!VR.ok()) {
      Err = "doubled flat profile failed verification: " + VR.str();
      return false;
    }
  }
  {
    ContextProfile Acc;
    MergeStats M1 = mergeContextProfiles(Acc, CSRes.CS);
    if (M1.ContextsMerged != 0 || serializeContextProfile(Acc) != CSText) {
      Err = "context merge into an empty database is not an identity";
      return false;
    }
    MergeStats M2 = mergeContextProfiles(Acc, CSRes.CS);
    if (M2.ContextsAdded != 0) {
      Err = "context re-merge created contexts instead of summing";
      return false;
    }
  }

  // --- 5. Trim idempotence ---------------------------------------------
  {
    ContextProfile Trimmed;
    mergeContextProfiles(Trimmed, CSRes.CS); // Deep copy via identity merge.
    uint64_t Threshold =
        std::max<uint64_t>(Trimmed.totalSamples() / 5000, 2);
    trimColdContexts(Trimmed, Threshold);
    VerifierOptions VO;
    VO.Probes = &Build.ProbeDescs;
    VerifyReport VR = verifyContextProfile(Trimmed, VO);
    if (!VR.ok()) {
      Err = "trimmed CS profile failed verification: " + VR.str();
      return false;
    }
    std::string Once = serializeContextProfile(Trimmed);
    TrimStats Again = trimColdContexts(Trimmed, Threshold);
    if (Again.ContextsMerged != 0 ||
        serializeContextProfile(Trimmed) != Once) {
      Err = "cold-context trimming is not idempotent";
      return false;
    }
  }

  // --- 6. Truncated input: reject or stay self-consistent --------------
  {
    std::string Trunc = truncateAtLine(CSText, R);
    ContextProfile Partial;
    if (!Trunc.empty() && parseContextProfile(Trunc, Partial)) {
      // A prefix that still parses lost whole trailing records; counts
      // within each surviving record must still be conserved (edge
      // conservation legitimately breaks — callees got cut off).
      VerifierOptions VO;
      VO.CheckHeadEdges = false;
      VerifyReport VR = verifyContextProfile(Partial, VO);
      if (!VR.ok()) {
        Err = "truncated CS text parsed into an inconsistent profile: " +
              VR.str();
        return false;
      }
    }
    std::string TruncFlat = truncateAtLine(AFText, R);
    FlatProfile PartialFlat;
    if (!TruncFlat.empty() && parseFlatProfile(TruncFlat, PartialFlat)) {
      VerifierOptions VO;
      VO.CheckHeadEdges = false;
      VerifyReport VR = verifyFlatProfile(PartialFlat, VO);
      if (!VR.ok()) {
        Err = "truncated flat text parsed into an inconsistent profile: " +
              VR.str();
        return false;
      }
    }
  }

  // --- 7. Stale matching after CFG drift lands only on fresh anchors ---
  {
    auto Drifted = generateProgram(WC); // Deterministic regeneration.
    const CFGDriftKind Kinds[] = {CFGDriftKind::GuardInsert,
                                  CFGDriftKind::GuardDelete,
                                  CFGDriftKind::BlockSplit,
                                  CFGDriftKind::CalleeRename};
    applyCFGDrift(*Drifted, Kinds[R.nextBelow(4)],
                  static_cast<uint32_t>(R.next()));
    BuildResult FreshBuild = buildWithPGO(*Drifted, BC, nullptr);
    for (const auto &[Name, P] : PORes.Flat.Functions) {
      const Function *F = FreshBuild.IR->getFunction(Name);
      if (!F || !F->HasProbes || !P.Checksum ||
          P.Checksum == F->ProbeCFGChecksum)
        continue;
      MatchResult MR =
          matchStaleProfile(P, *F, *FreshBuild.IR, ProfileKind::ProbeBased);
      if (!MR.Stats.Accepted)
        continue;
      if (!keysWithinAnchors(MR.Recovered, anchorIdsOf(*F), Err))
        return false;
    }
  }

  // --- 8. Binary store round trip --------------------------------------
  // text -> binary -> text is the identity; lazy per-function reads union
  // to the eager load; the persisted summary reproduces hot thresholds;
  // and truncations / bit flips are rejected at open(), never a crash.
  std::string CSBytes = writeStore(CSRes.CS, {});
  {
    Expected<ProfileStore> CSStore = ProfileStore::open(CSBytes);
    if (!CSStore) {
      Err = "freshly written CS store does not open: " +
            CSStore.status().message();
      return false;
    }
    Expected<ContextProfile> CSBack = CSStore->loadContext();
    if (!CSBack || serializeContextProfile(*CSBack) != CSText) {
      Err = "CS store round trip is not lossless";
      return false;
    }
    if (CSStore->hotThreshold(0.9) != hotThreshold(CSRes.CS, 0.9)) {
      Err = "CS store summary threshold diverges from the profile's";
      return false;
    }

    for (const auto &[What, Flat] :
         {std::pair<const char *, const FlatProfile &>{"probe-only",
                                                       PORes.Flat},
          {"autofdo", AFRes.Flat}}) {
      std::string Bytes = writeStore(Flat, {});
      Expected<ProfileStore> S = ProfileStore::open(Bytes);
      if (!S) {
        Err = std::string("freshly written ") + What +
              " store does not open: " + S.status().message();
        return false;
      }
      Expected<FlatProfile> Eager = S->loadFlat();
      if (!Eager ||
          serializeFlatProfile(*Eager) != serializeFlatProfile(Flat)) {
        Err = std::string(What) + " store round trip is not lossless";
        return false;
      }
      FlatProfile Lazy;
      for (size_t I = 0; I != S->numFunctions(); ++I) {
        Status St = S->loadFunction(I, Lazy);
        if (!St.ok()) {
          Err = std::string(What) +
                " store lazy load failed: " + St.message();
          return false;
        }
      }
      if (serializeFlatProfile(Lazy) != serializeFlatProfile(*Eager)) {
        Err = std::string(What) +
              " store lazy loads do not union to the eager load";
        return false;
      }
      if (S->hotThreshold(0.9) != hotThreshold(Flat, 0.9)) {
        Err = std::string(What) +
              " store summary threshold diverges from the profile's";
        return false;
      }
    }

    // Corrupted containers must be rejected with a diagnostic.
    for (int I = 0; I != 4; ++I) {
      size_t Cut = R.nextBelow(CSBytes.size());
      Expected<ProfileStore> S = ProfileStore::open(CSBytes.substr(0, Cut));
      if (S) {
        Err = "store accepted a truncation to " + std::to_string(Cut) +
              " bytes";
        return false;
      }
      if (S.status().message().empty()) {
        Err = "store rejected a truncation without a diagnostic";
        return false;
      }
    }
    {
      std::string Bad = CSBytes;
      size_t Pos = R.nextBelow(Bad.size());
      Bad[Pos] = static_cast<char>(Bad[Pos] ^ (1u << R.nextBelow(8)));
      if (ProfileStore::open(Bad)) {
        Err = "store accepted a bit flip at byte " + std::to_string(Pos);
        return false;
      }
    }
  }

  // --- 9. Zero-copy reader vs map plane --------------------------------
  // The borrowed-buffer open plus the arena view loaders are a second,
  // independent decoder over the same validated bytes. They must produce
  // the same profiles as the map plane, their slice merge must match the
  // sequential map merge count-for-count and stat-for-stat, and borrowed
  // opens must reject corruption with the exact same diagnostics.
  {
    Expected<ProfileStore> BS = ProfileStore::openBorrowed(CSBytes);
    if (!BS) {
      Err = "borrowed CS open rejects bytes the owning open accepted: " +
            BS.status().message();
      return false;
    }
    Expected<ContextProfileView> CV = BS->loadContextView();
    if (!CV || serializeContextProfile(contextProfileOf(*CV)) != CSText) {
      Err = "zero-copy CS view diverges from the map-plane load";
      return false;
    }
    ContextViewLoader Unit(*BS);
    for (size_t I = 0; I != BS->numFunctions(); ++I) {
      Status St = Unit.load(I);
      if (!St.ok()) {
        Err = "zero-copy CS lazy load failed: " + St.message();
        return false;
      }
    }
    if (serializeContextProfile(contextProfileOf(Unit.view())) != CSText) {
      Err = "zero-copy CS lazy loads do not union to the eager load";
      return false;
    }

    std::string FlatBytes = writeStore(PORes.Flat, {});
    Expected<ProfileStore> FS = ProfileStore::openBorrowed(FlatBytes);
    if (!FS) {
      Err = "borrowed flat open rejects bytes the owning open accepted: " +
            FS.status().message();
      return false;
    }
    Expected<FlatProfileView> FV = FS->loadFlatView();
    if (!FV || serializeFlatProfile(flatProfileOf(*FV)) != POText) {
      Err = "zero-copy flat view diverges from the map-plane load";
      return false;
    }

    // Slice merge differential: the k-way view merge must be bit- and
    // stat-identical to the sequential map merge of the same parts.
    FlatProfile MapAcc;
    MergeStats MapStats = mergeFlatProfiles(MapAcc, PORes.Flat);
    MapStats += mergeFlatProfiles(MapAcc, PORes.Flat);
    FlatProfileView Part = flatViewOf(PORes.Flat);
    MergeStats ViewStats;
    FlatProfile ViewAcc = flatProfileOf(
        mergeFlatViews({&Part, &Part}, ViewStats, /*IntoEmptyDst=*/true));
    if (serializeFlatProfile(ViewAcc) != serializeFlatProfile(MapAcc)) {
      Err = "flat view merge diverges from the map merge";
      return false;
    }
    if (ViewStats.ContextsAdded != MapStats.ContextsAdded ||
        ViewStats.ContextsMerged != MapStats.ContextsMerged ||
        ViewStats.CountsSummed != MapStats.CountsSummed ||
        ViewStats.SaturatedCounts != MapStats.SaturatedCounts) {
      Err = "flat view merge stats diverge from the map merge stats";
      return false;
    }

    // Borrowed and owning opens agree on rejections, diagnostics included.
    std::string Prefix = CSBytes.substr(0, R.nextBelow(CSBytes.size()));
    Expected<ProfileStore> OwnedOpen = ProfileStore::open(Prefix);
    Expected<ProfileStore> BorrowedOpen = ProfileStore::openBorrowed(Prefix);
    if (OwnedOpen || BorrowedOpen) {
      Err = "a truncated store was accepted by one of the open paths";
      return false;
    }
    if (OwnedOpen.status().message() != BorrowedOpen.status().message()) {
      Err = "owning and borrowed opens reject a truncation with "
            "different diagnostics";
      return false;
    }
    std::string Bad = CSBytes;
    size_t Pos = R.nextBelow(Bad.size());
    Bad[Pos] = static_cast<char>(Bad[Pos] ^ (1u << R.nextBelow(8)));
    if (ProfileStore::openBorrowed(Bad)) {
      Err = "borrowed open accepted a bit flip at byte " +
            std::to_string(Pos);
      return false;
    }
  }

  // --- 10. Post-link round trip: identity or clean rejection -----------
  // The binary rewriter's whole-binary validation is the crash barrier the
  // post-link optimizer stands on: a linker-produced binary must
  // reconstruct and reassemble to field-for-field identity, and a
  // structurally mutated binary must either be rejected with a diagnostic
  // or — when the mutation happens to leave it well-formed — still round
  // trip losslessly. Nothing in between, and never a crash.
  {
    Expected<postlink::BinaryCFG> CFG =
        postlink::reconstructBinaryCFG(*Build.Bin);
    if (!CFG) {
      Err = "post-link reconstruction rejected a linker-produced binary: " +
            CFG.status().message();
      return false;
    }
    std::unique_ptr<Binary> Again =
        postlink::reassemble(*CFG, postlink::identityLayout(*CFG));
    std::string Why;
    if (!postlink::binariesIdentical(*Build.Bin, *Again, &Why)) {
      Err = "post-link identity round trip is lossy: " + Why;
      return false;
    }

    for (int M = 0; M != 6; ++M) {
      Binary Mut = *Build.Bin;
      size_t I = R.nextBelow(Mut.Code.size());
      switch (R.nextBelow(8)) {
      case 0: // Branch-target corruption / target planted on a non-branch.
        Mut.Code[I].Target =
            static_cast<int64_t>(R.nextBelow(Mut.Code.size() + 7)) - 3;
        break;
      case 1: // Encoded size disagreeing with the opcode.
        Mut.Code[I].Size = static_cast<uint8_t>(1 + R.nextBelow(9));
        break;
      case 2: // Address-table corruption.
        Mut.Code[I].Addr ^= uint64_t(1) << R.nextBelow(12);
        break;
      case 3: // Opcode corruption (any byte; scoped enums hold them all).
        Mut.Code[I].Op = static_cast<Opcode>(R.nextBelow(64));
        break;
      case 4: { // Section-bound / entry corruption.
        MachineFunction &MF = Mut.Funcs[R.nextBelow(Mut.Funcs.size())];
        if (R.nextBool(0.5))
          MF.HotEnd += 1 + R.nextBelow(3);
        else
          MF.EntryIdx += 1;
        break;
      }
      case 5: // Probe record detached from its function.
        if (!Mut.Probes.empty())
          Mut.Probes[R.nextBelow(Mut.Probes.size())].InstIdx =
              Mut.Code.size() + R.nextBelow(16);
        break;
      case 6: // Call redirected past the end of the function array.
        Mut.Code[I].CalleeIdx =
            static_cast<uint32_t>(Mut.Funcs.size() + R.nextBelow(4));
        break;
      case 7: // Indirect-dispatch table slot out of range.
        if (!Mut.FuncTable.empty())
          Mut.FuncTable[R.nextBelow(Mut.FuncTable.size())] =
              static_cast<uint32_t>(Mut.Funcs.size() + R.nextBelow(8));
        break;
      }

      Expected<postlink::BinaryCFG> MC = postlink::reconstructBinaryCFG(Mut);
      if (!MC) {
        if (MC.status().message().empty()) {
          Err = "post-link reconstruction rejected a mutated binary "
                "without a diagnostic";
          return false;
        }
        continue; // Clean rejection — the contract held.
      }
      std::unique_ptr<Binary> MutAgain =
          postlink::reassemble(*MC, postlink::identityLayout(*MC));
      std::string MutWhy;
      if (!postlink::binariesIdentical(Mut, *MutAgain, &MutWhy)) {
        Err = "post-link accepted a mutated binary that does not round "
              "trip: " + MutWhy;
        return false;
      }
    }
  }

  // --- 11. Trace decoder: replay differential + corruption barrier -----
  // A core-instruction trace of the same run, replayed under the sampling
  // run's configuration, must reproduce that run's sample stream bit for
  // bit (the trace-mode headline property, here under randomized
  // workloads, sampler configs and timestamp cadences). Mutated traces
  // must either be rejected with a diagnostic or decode cleanly; honestly
  // truncated ones must decode to their prefix. Never a crash.
  {
    ExecConfig TraceExec;
    TraceExec.Trace.Enabled = true;
    const uint32_t Cadences[] = {0, 7, 32, 131};
    TraceExec.Trace.TimestampEvery = Cadences[R.nextBelow(4)];
    TraceExec.Trace.CompressTimestamps = R.nextBool(0.8);
    std::vector<int64_t> MemTrace = generateInput(WC, Seed);
    RunResult Traced = execute(*Build.Bin, "main", MemTrace, TraceExec);
    if (MemTrace != MemFast) {
      Err = "trace divergence: traced run's final memory differs";
      return false;
    }
    TraceReplayOptions RO;
    RO.Sampler = Exec.Sampler;
    RO.Format = TraceExec.Trace;
    Expected<TraceReplayResult> Replay =
        replayTrace(*Build.Bin, "main", Traced.Trace, RO);
    if (!Replay) {
      Err = "trace replay rejected a freshly recorded trace: " +
            Replay.status().message();
      return false;
    }
    if (!Replay->Completed || Replay->TimestampMismatches) {
      Err = "trace replay of a clean trace did not complete cleanly";
      return false;
    }
    if (Replay->Cycles != Fast.Cycles ||
        Replay->Samples.size() != Fast.Samples.size()) {
      std::ostringstream OS;
      OS << "trace replay diverges from the sampling run: cycles "
         << Replay->Cycles << " vs " << Fast.Cycles << ", samples "
         << Replay->Samples.size() << " vs " << Fast.Samples.size();
      Err = OS.str();
      return false;
    }
    for (size_t I = 0; I != Replay->Samples.size(); ++I) {
      const PerfSample &A = Replay->Samples[I];
      const PerfSample &B = Fast.Samples[I];
      bool Same = A.Stack == B.Stack && A.LBR.size() == B.LBR.size();
      for (size_t J = 0; Same && J != A.LBR.size(); ++J)
        Same = A.LBR[J].Src == B.LBR[J].Src && A.LBR[J].Dst == B.LBR[J].Dst;
      if (!Same) {
        Err = "trace replay sample " + std::to_string(I) +
              " differs from the sampling run's";
        return false;
      }
    }

    for (int M = 0; M != 8 && !Traced.Trace.Bytes.empty(); ++M) {
      TraceData Bad = Traced.Trace;
      switch (R.nextBelow(3)) {
      case 0: // Bit flip.
        Bad.Bytes[R.nextBelow(Bad.Bytes.size())] ^=
            static_cast<uint8_t>(1u << R.nextBelow(8));
        break;
      case 1: // Cut without the truncation flag.
        Bad.Bytes.resize(R.nextBelow(Bad.Bytes.size()));
        break;
      case 2: // Garbage byte inserted.
        Bad.Bytes.insert(Bad.Bytes.begin() +
                             R.nextBelow(Bad.Bytes.size() + 1),
                         static_cast<uint8_t>(R.next()));
        break;
      }
      Expected<TraceReplayResult> RB =
          replayTrace(*Build.Bin, "main", Bad, RO);
      if (!RB && RB.status().message().empty()) {
        Err = "trace decoder rejected a mutated trace without a "
              "diagnostic";
        return false;
      }
    }

    // Honest truncation: re-record under a tight buffer bound. The
    // recorder drops whole packets, so the bounded prefix must replay
    // cleanly (an arbitrary byte cut is corruption, covered above).
    if (Traced.Trace.Bytes.size() > 8) {
      ExecConfig Bounded = TraceExec;
      Bounded.Trace.MaxBytes =
          8 + R.nextBelow(Traced.Trace.Bytes.size() - 8);
      std::vector<int64_t> MemBounded = generateInput(WC, Seed);
      RunResult Short = execute(*Build.Bin, "main", MemBounded, Bounded);
      if (Short.Trace.Truncated) {
        Expected<TraceReplayResult> RC =
            replayTrace(*Build.Bin, "main", Short.Trace, RO);
        if (!RC) {
          Err = "trace decoder rejected an honestly truncated trace: " +
                RC.status().message();
          return false;
        }
      }
    }
  }

  return true;
}

} // namespace

int runProfileFuzz(const FuzzOptions &Opts) {
  for (unsigned I = 0; I != Opts.Iterations; ++I) {
    uint64_t Seed = Opts.BaseSeed + I * SeedStride;
    std::string Err;
    if (!fuzzOne(Seed, Err)) {
      std::fprintf(stderr,
                   "fuzz: iteration %u (seed 0x%" PRIx64 ") FAILED: %s\n"
                   "fuzz: reproduce with: csspgo_exp fuzz 1 0x%" PRIx64 "\n",
                   I, Seed, Err.c_str(), Seed);
      return 1;
    }
    if (Opts.Verbose && (I + 1) % 50 == 0)
      std::printf("fuzz: %u/%u iterations ok\n", I + 1, Opts.Iterations);
  }
  std::printf("fuzz: %u iterations, no divergence (base seed 0x%" PRIx64
              ")\n",
              Opts.Iterations, Opts.BaseSeed);
  return 0;
}

} // namespace csspgo

//===- tools/ExpCLI.cpp - csspgo_exp CLI surface --------------------------===//
//
// Part of the CSSPGO reproduction project.
//
//===----------------------------------------------------------------------===//

#include "ExpCLI.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace csspgo {
namespace cli {

//===----------------------------------------------------------------------===//
// The subcommand table: single source of truth for dispatch, usage and
// per-subcommand help. tests/CLITest.cpp golden-tests the rendered text.
//===----------------------------------------------------------------------===//

namespace {

const SubcommandInfo Table[] = {
    {"run", "<workload> <variant> [scale]", "end-to-end PGO run", 2,
     "with --postlink, additionally stacks the post-link optimizer on\n"
     "the optimized binary (the `bolt` pipeline with default knobs) and\n"
     "reports both measurements.\n"
     "\n"
     "with --mode, selects how the csspgo variant's training profile is\n"
     "collected: sample (PMU sampling, the default), trace (core-\n"
     "instruction trace replay, plus measured per-block timing for the\n"
     "transform gates) or instr (counters).\n"
     "\n"
     "with --json, prints one machine-readable object instead: the run\n"
     "header plus the unified pipeline stats (profgen, reduce, loader,\n"
     "verify) in stable key order.",
     true},
    {"trace", "<workload> [scale]",
     "trace-mode diagnostics and sampling-path cross-check", 1,
     "collects a core-instruction trace of the training run (TNT/TIP\n"
     "packets, delta-compressed timestamps), replays it into a context\n"
     "profile and cross-checks it against the PMU-sampling path: the two\n"
     "profiles must be bit-identical whenever frequencies suffice.\n"
     "Prints trace size and compression, the replay's timestamp\n"
     "validation, per-mode profiling overhead and the measured per-block\n"
     "timing summary; exits nonzero on a profile mismatch.\n"
     "\n"
     "flags:\n"
     "  --every N       timestamp every N branch events (default 32)\n"
     "  --max-kb N      trace buffer bound in KiB (default 65536)\n"
     "  --no-compress   raw 8-byte timestamps instead of deltas",
     true},
    {"bolt", "<workload> <variant> [scale]",
     "post-link optimize the variant's binary, then re-evaluate", 2,
     "rewrites the already-linked binary BOLT-style: reconstructs the\n"
     "binary CFG (gated on a byte-identical disassemble->reassemble\n"
     "round trip), maps training-run LBR samples onto it, folds\n"
     "identical bodies, reorders blocks along Ext-TSP and splits\n"
     "never-executed code into the cold region. `bolt <workload> none`\n"
     "is the BOLT-only ablation cell; a PGO variant gives the stacked\n"
     "PGO+BOLT cell.\n"
     "\n"
     "flags:\n"
     "  --no-fold       keep duplicate function bodies\n"
     "  --no-reorder    keep the compiler's block layout\n"
     "  --no-split      keep never-executed code in the hot section\n"
     "  --min-mapped P  permille of LBR endpoints that must resolve\n"
     "                  before the layout transforms run (default 500)",
     true},
    {"profile", "<workload> <variant> [scale]", "print the profile text", 2,
     nullptr, false},
    {"compare", "<workload> [scale]", "all variants side by side", 1, nullptr,
     false},
    {"ir", "<workload> [scale]", "dump the generated IR", 1, nullptr, false},
    {"convert", "<in> <out>",
     "convert a profile between text and binary store", 2,
     "direction is inferred from the input bytes; --compact selects guid\n"
     "name tables for written stores.",
     false},
    {"store", "inspect [--layout] <file> | ingest <file> <workload> "
     "<variant> [scale]",
     "inspect a store / fold in a fresh epoch", 2,
     "inspect --layout additionally prints the physical file layout:\n"
     "every section's absolute offset and size plus the per-function\n"
     "payload tiles the zero-copy readers address directly.\n"
     "\n"
     "ingest honors --decay, --timestamp and --compact; the fold is\n"
     "verifier-gated and the file is untouched when the gate rejects it.",
     true},
    {"fuzz", "[iterations] [seed]", "differential fuzzing", 0, nullptr,
     false},
    {"serve", "[flags]", "run the continuous-profiling fleet service", 0,
     "streams a simulated fleet end to end: each epoch every host's\n"
     "samples are profiled on one of K ingestion shards (-j), reduced in\n"
     "host order and folded into its service's binary store\n"
     "(verifier-gated, --decay weighted). Prints the fleet dashboard\n"
     "(text, or JSON with --json) after every pass and serves forever\n"
     "unless told otherwise.\n"
     "\n"
     "flags:\n"
     "  --hosts N           fleet size (default 32)\n"
     "  --services N        distinct services (default 3)\n"
     "  --epochs N          epochs per pass (default 8)\n"
     "  --seed N            fleet seed (default 1)\n"
     "  --scale S           workload scale, permille (default 50)\n"
     "  --queue-bound N     ingestion queue capacity (default 16)\n"
     "  --drift-every N     deploy a drifted release every N epochs\n"
     "  --exit-after-drain  exit after one drained pass",
     true},
    {"fleet", "[flags]", "one drained pass, dashboard only",
     0,
     "equivalent to `serve --exit-after-drain`; accepts the same flags.",
     true},
    {"train", "[scale]", "longitudinal release-train staleness simulation",
     0,
     "simulates a release train: the workload source evolves through\n"
     "--releases seeded drift plans, and each release is built with the\n"
     "previous release's profile under the selected stale-profile\n"
     "policies (drop / match / ingest), scored against a per-release\n"
     "plain build and a fresh-profile oracle. Prints the per-release\n"
     "trajectory and its aggregates (one stable JSON object with\n"
     "--json); exits nonzero when any release fails Full profile\n"
     "verification or changes program semantics.\n"
     "\n"
     "-j shards the train's builds; any job count is bit-identical.\n"
     "--decay weights the ingest policy's store folds.\n"
     "\n"
     "flags:\n"
     "  --archetype W   workload preset, e.g. one of the archetypes\n"
     "                  RpcFanout|InterpLoop|ColdBoot (default AdRanker)\n"
     "  --releases N    train length (default 4)\n"
     "  --policy P      drop|match|ingest|all (default all)\n"
     "  --variant V     PGO variant under test (default csspgo)\n"
     "  --postlink      add the PGO+BOLT column: each oracle binary\n"
     "                  rewritten from one-release-stale samples\n"
     "  --seed N        drift-plan seed (default 1)",
     true},
    {"list", "", "workloads and variants", 0, nullptr, false},
};

} // namespace

const SubcommandInfo *subcommands(size_t &Count) {
  Count = sizeof(Table) / sizeof(Table[0]);
  return Table;
}

const SubcommandInfo *findSubcommand(const char *Name) {
  for (const SubcommandInfo &S : Table)
    if (std::strcmp(Name, S.Name) == 0)
      return &S;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Flag parsing.
//===----------------------------------------------------------------------===//

bool parseUnsigned(const char *S, unsigned long long &Out, int Base) {
  // strtoull itself skips leading whitespace and accepts a '-' sign,
  // wrapping negatives into huge magnitudes ("-3" -> 2^64 - 3); these are
  // never valid flag values, so reject them up front.
  if (!S || std::isspace(static_cast<unsigned char>(*S)) || *S == '-')
    return false;
  char *End = nullptr;
  Out = std::strtoull(S, &End, Base);
  return End != S && !*End;
}

bool parseTransport(const char *S, ProfileTransport &Out) {
  if (std::strcmp(S, "memory") == 0)
    Out = ProfileTransport::InMemory;
  else if (std::strcmp(S, "text") == 0)
    Out = ProfileTransport::Text;
  else if (std::strcmp(S, "binary") == 0)
    Out = ProfileTransport::BinaryEager;
  else if (std::strcmp(S, "binary-lazy") == 0)
    Out = ProfileTransport::BinaryLazy;
  else
    return false;
  return true;
}

bool parseGlobalFlags(int &argc, char **argv, GlobalOptions &G,
                      std::string &Err) {
  int Out = 1;
  for (int I = 1; I < argc; ++I) {
    auto takesValue = [&](const char *Flag) {
      return std::strcmp(argv[I], Flag) == 0 && I + 1 < argc;
    };
    auto badValue = [&](const char *Flag) {
      Err = std::string("bad value for ") + Flag + ": '" + argv[I] + "'";
      return false;
    };
    unsigned long long N = 0;
    if (takesValue("-j") || takesValue("--parallelism")) {
      if (!parseUnsigned(argv[++I], N))
        return badValue("--parallelism");
      G.Parallelism = static_cast<unsigned>(N);
    } else if (takesValue("--format")) {
      if (!parseTransport(argv[++I], G.Transport))
        return badValue("--format");
    } else if (takesValue("--decay")) {
      if (!parseUnsigned(argv[++I], N) || N > 1000)
        return badValue("--decay");
      G.DecayPermille = static_cast<unsigned>(N);
    } else if (takesValue("--timestamp")) {
      if (!parseUnsigned(argv[++I], N))
        return badValue("--timestamp");
      G.EpochTimestamp = N;
    } else if (std::strcmp(argv[I], "--compact") == 0) {
      G.CompactNames = true;
    } else if (std::strcmp(argv[I], "--json") == 0) {
      G.JSON = true;
    } else {
      // Positional, --help, or a subcommand-local flag: leave in place.
      argv[Out++] = argv[I];
    }
  }
  argc = Out;
  return true;
}

bool takeUnsignedFlag(int &argc, char **argv, const char *Name,
                      unsigned long long &Out, std::string &Err) {
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], Name) != 0)
      continue;
    if (I + 1 >= argc || !parseUnsigned(argv[I + 1], Out)) {
      Err = std::string("bad value for ") + Name;
      return false;
    }
    for (int J = I; J + 2 < argc; ++J)
      argv[J] = argv[J + 2];
    argc -= 2;
    return true;
  }
  return true;
}

bool takeValueFlag(int &argc, char **argv, const char *Name,
                   std::string &Out, std::string &Err) {
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], Name) != 0)
      continue;
    if (I + 1 >= argc) {
      Err = std::string("missing value for ") + Name;
      return false;
    }
    Out = argv[I + 1];
    for (int J = I; J + 2 < argc; ++J)
      argv[J] = argv[J + 2];
    argc -= 2;
    return true;
  }
  return true;
}

bool takeBoolFlag(int &argc, char **argv, const char *Name) {
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], Name) != 0)
      continue;
    for (int J = I; J + 1 < argc; ++J)
      argv[J] = argv[J + 1];
    --argc;
    return true;
  }
  return false;
}

const char *firstFlag(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (argv[I][0] == '-' && argv[I][1] == '-')
      return argv[I];
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Text rendering.
//===----------------------------------------------------------------------===//

std::string globalOptionsText() {
  return "global options (every subcommand):\n"
         "  -j, --parallelism N   profile-generation / ingestion shards\n"
         "  --format F            profile transport: "
         "memory|text|binary|binary-lazy\n"
         "  --decay P             ingest decay permille (1000 = plain "
         "merge)\n"
         "  --timestamp T         ingest epoch timestamp\n"
         "  --compact             guid name table for written stores\n"
         "  --json                machine-readable output where supported\n";
}

std::string usageText() {
  std::string S = "usage:\n";
  for (const SubcommandInfo &Sub : Table) {
    S += "  csspgo_exp ";
    S += Sub.Name;
    if (*Sub.Operands) {
      S += ' ';
      S += Sub.Operands;
    }
    S += "\n      ";
    S += Sub.Help;
    S += '\n';
  }
  S += "\nvariants: none instr autofdo probeonly csspgo trace\n";
  S += "`csspgo_exp <subcommand> --help` shows subcommand details.\n\n";
  S += globalOptionsText();
  return S;
}

std::string helpText(const SubcommandInfo &Sub) {
  std::string S = "usage: csspgo_exp ";
  S += Sub.Name;
  if (*Sub.Operands) {
    S += ' ';
    S += Sub.Operands;
  }
  S += "\n  ";
  S += Sub.Help;
  S += '\n';
  if (Sub.Details) {
    S += '\n';
    S += Sub.Details;
    S += '\n';
  }
  S += '\n';
  S += globalOptionsText();
  return S;
}

} // namespace cli
} // namespace csspgo
